//! `gnb-overlap-cli` — end-to-end many-to-many long-read overlap detection
//! on real FASTA input, using the shared-memory (rayon) backend.
//!
//! ```text
//! USAGE:
//!   gnb-overlap-cli <reads.fasta> [--coverage X] [--error-rate E] [--k K]
//!                   [--min-score S] [--min-overlap L] [--out overlaps.paf]
//!   gnb-overlap-cli --demo          # run on a generated demo dataset
//! ```
//!
//! Output is PAF-like TSV: qname qlen qstart qend strand tname tlen tstart
//! tend score class.

use gnb::core::pipeline::{run_pipeline, PipelineParams};
use gnb::genome::fasta::read_fasta_file;
use gnb::genome::presets;
use gnb::genome::ReadSet;
use std::io::Write;

struct Opts {
    input: Option<String>,
    demo: bool,
    coverage: f64,
    error_rate: f64,
    k: usize,
    min_score: i32,
    min_overlap: usize,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        input: None,
        demo: false,
        coverage: 30.0,
        error_rate: 0.15,
        k: 17,
        min_score: 200,
        min_overlap: 500,
        out: None,
    };
    // gnb-lint: allow(ambient-env, reason = "CLI argument parsing is this binary's input")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |j: usize| -> String {
            args.get(j + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[j]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--demo" => {
                o.demo = true;
                i += 1;
            }
            "--coverage" => {
                o.coverage = take(i).parse().expect("coverage");
                i += 2;
            }
            "--error-rate" => {
                o.error_rate = take(i).parse().expect("error-rate");
                i += 2;
            }
            "--k" => {
                o.k = take(i).parse().expect("k");
                i += 2;
            }
            "--min-score" => {
                o.min_score = take(i).parse().expect("min-score");
                i += 2;
            }
            "--min-overlap" => {
                o.min_overlap = take(i).parse().expect("min-overlap");
                i += 2;
            }
            "--out" => {
                o.out = Some(take(i));
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "gnb-overlap-cli <reads.fasta> [--coverage X] [--error-rate E] [--k K]\n\
                     \x20                [--min-score S] [--min-overlap L] [--out file]\n\
                     gnb-overlap-cli --demo"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                o.input = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn main() {
    let opts = parse_opts();
    let reads: ReadSet = if opts.demo {
        eprintln!("[demo] generating a scaled E. coli 30x dataset");
        presets::ecoli_30x().scaled(256).generate(42)
    } else {
        let path = opts.input.clone().unwrap_or_else(|| {
            eprintln!("no input file (try --demo or --help)");
            std::process::exit(2);
        });
        read_fasta_file(&path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        })
    };
    eprintln!(
        "[input] {} reads, {:.2} Mbp",
        reads.len(),
        reads.total_bases() as f64 / 1e6
    );

    let mut params = PipelineParams::new(opts.coverage, opts.error_rate);
    params.k = opts.k;
    params.align.k = opts.k;
    params.align.criteria.min_score = opts.min_score;
    params.align.criteria.min_overlap = opts.min_overlap;
    let res = run_pipeline(&reads, &params);
    eprintln!(
        "[kmers] {} distinct, {} retained {:?}",
        res.distinct_kmers, res.retained_kmers, res.reliable_interval
    );
    eprintln!(
        "[tasks] {} candidates, {} accepted ({:.1}M cells, align {:?})",
        res.tasks.len(),
        res.accepted(),
        res.outcome.total_cells as f64 / 1e6,
        res.timings.align
    );

    let mut out: Box<dyn Write> = match &opts.out {
        Some(p) => Box::new(std::fs::File::create(p).expect("create output")),
        None => Box::new(std::io::stdout().lock()),
    };
    for rec in res.outcome.accepted() {
        let line = writeln!(
            out,
            "read{}\t{}\t{}\t{}\t{}\tread{}\t{}\t{}\t{}\t{}\t{:?}",
            rec.a,
            reads.read_len(rec.a as usize),
            rec.a_begin,
            rec.a_end,
            if rec.same_strand { '+' } else { '-' },
            rec.b,
            reads.read_len(rec.b as usize),
            rec.b_begin,
            rec.b_end,
            rec.score,
            rec.class
        );
        match line {
            Ok(()) => {}
            // Downstream consumer (e.g. `| head`) closed the pipe: normal.
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return,
            Err(e) => {
                eprintln!("write failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
