//! # gnb — Scaling Generalized N-Body Problems (genomics case study)
//!
//! A Rust reproduction of *“Scaling Generalized N-Body Problems, A Case
//! Study from Genomics”* (Ellis, Buluç, Yelick — ICPP 2021): many-to-many
//! long-read alignment coordinated two ways — bulk-synchronous with
//! aggregated irregular all-to-alls, and asynchronous with one RPC per
//! remote read hidden under compute — studied on a simulated Cray-class
//! machine, plus a real rayon-parallel pipeline for actually aligning
//! reads on a multicore host.
//!
//! This crate is a facade: it re-exports the workspace crates.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`genome`] | synthetic genomes, long-read sampling, error models, FASTA, presets |
//! | [`kmer`] | k-mer extraction/counting, BELLA reliable-k-mer filter, seed index |
//! | [`align`] | X-drop seed-and-extend kernel, Smith-Waterman/Needleman-Wunsch baselines |
//! | [`overlap`] | candidate generation, blind partition, task redistribution, task stores |
//! | [`sim`] | discrete-event SPMD machine: network, collectives, barriers, memory |
//! | [`core`] | the paper's BSP and async coordination codes + experiment drivers |
//! | [`trace`] | observability-trace analysis: summarize, Perfetto export, critical path |
//!
//! ## Quickstart
//!
//! ```
//! use gnb::genome::presets;
//! use gnb::core::pipeline::{run_pipeline, PipelineParams};
//!
//! // Generate a tiny E. coli-like workload and find overlaps for real.
//! let preset = presets::ecoli_30x().scaled(4096);
//! let reads = preset.generate(1);
//! let params = PipelineParams::new(preset.coverage, preset.errors.total_rate());
//! let result = run_pipeline(&reads, &params);
//! println!("{} candidate pairs, {} accepted overlaps",
//!          result.tasks.len(), result.accepted());
//! ```

#![warn(missing_docs)]

pub use gnb_align as align;
pub use gnb_core as core;
pub use gnb_genome as genome;
pub use gnb_kmer as kmer;
pub use gnb_overlap as overlap;
pub use gnb_sim as sim;
pub use gnb_trace as trace;
