//! Property-based validation of the alignment kernels against each other.

use gnb_align::banded::banded_global;
use gnb_align::nw::global_score;
use gnb_align::sw::local_align;
use gnb_align::xdrop::xdrop_extend;
use gnb_align::ScoringScheme;
use proptest::prelude::*;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        0..max_len,
    )
}

fn dna_with_n(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        0..max_len,
    )
}

fn scheme() -> impl Strategy<Value = ScoringScheme> {
    (1..4i32, -4..-1i32, -4..-1i32).prop_map(|(m, x, g)| ScoringScheme::new(m, x, g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Smith-Waterman is an upper bound for every anchored X-drop extension.
    #[test]
    fn xdrop_never_beats_sw(a in dna(80), b in dna(80), x in 0..64i32, sc in scheme()) {
        let xd = xdrop_extend(&a, &b, &sc, x);
        let sw = local_align(&a, &b, &sc);
        prop_assert!(xd.score <= sw.score, "xdrop {} > sw {}", xd.score, sw.score);
    }

    /// Local score is symmetric in its arguments.
    #[test]
    fn sw_symmetric(a in dna(60), b in dna(60), sc in scheme()) {
        prop_assert_eq!(local_align(&a, &b, &sc).score, local_align(&b, &a, &sc).score);
    }

    /// Global score is symmetric in its arguments.
    #[test]
    fn nw_symmetric(a in dna(60), b in dna(60), sc in scheme()) {
        prop_assert_eq!(global_score(&a, &b, &sc).score, global_score(&b, &a, &sc).score);
    }

    /// Local ≥ max(global, 0).
    #[test]
    fn sw_dominates_nw(a in dna(60), b in dna(60), sc in scheme()) {
        let l = local_align(&a, &b, &sc).score;
        let g = global_score(&a, &b, &sc).score;
        prop_assert!(l >= g.max(0));
    }

    /// Aligning a sequence with itself: global = local = xdrop(large X) =
    /// match * len, unless it contains N (which never matches).
    #[test]
    fn self_alignment_is_perfect(a in dna(100), sc in scheme()) {
        let expect = sc.match_score * a.len() as i32;
        prop_assert_eq!(global_score(&a, &a, &sc).score, expect);
        prop_assert_eq!(local_align(&a, &a, &sc).score, expect);
        let xd = xdrop_extend(&a, &a, &sc, 1);
        prop_assert_eq!(xd.score, expect);
        prop_assert_eq!((xd.a_ext, xd.b_ext), (a.len(), a.len()));
    }

    /// X-drop score is monotone non-decreasing in X.
    #[test]
    fn xdrop_monotone_in_x(a in dna(60), b in dna(60), sc in scheme()) {
        let mut last = -1;
        for x in [0, 2, 8, 32, 128] {
            let s = xdrop_extend(&a, &b, &sc, x).score;
            prop_assert!(s >= last);
            last = s;
        }
    }

    /// With X beyond any achievable drop, X-drop equals the best
    /// prefix-anchored alignment, which is bounded by SW and bounded below
    /// by the global score.
    #[test]
    fn xdrop_generous_bounds(a in dna(50), b in dna(50), sc in scheme()) {
        let big_x = 4 * 50 * sc.match_score.max(-sc.gap).max(-sc.mismatch);
        let xd = xdrop_extend(&a, &b, &sc, big_x);
        let sw = local_align(&a, &b, &sc);
        let nw = global_score(&a, &b, &sc);
        prop_assert!(xd.score <= sw.score);
        // Anchored-at-(0,0) best-prefix score is at least the full global
        // score (the global alignment is one admissible prefix pair).
        prop_assert!(xd.score >= nw.score);
        prop_assert!(xd.score >= 0);
    }

    /// Scores never reward N: replacing every base by N yields score 0
    /// locally (nothing positive can align).
    #[test]
    fn all_n_scores_zero(len_a in 0usize..40, len_b in 0usize..40, sc in scheme()) {
        let a = vec![b'N'; len_a];
        let b = vec![b'N'; len_b];
        prop_assert_eq!(local_align(&a, &b, &sc).score, 0);
        prop_assert_eq!(xdrop_extend(&a, &b, &sc, 100).score, 0);
    }

    /// Kernels are total over the 5-letter alphabet (never panic, sane
    /// extents).
    #[test]
    fn kernels_total_over_n(a in dna_with_n(60), b in dna_with_n(60), x in 0..32i32, sc in scheme()) {
        let xd = xdrop_extend(&a, &b, &sc, x);
        prop_assert!(xd.a_ext <= a.len());
        prop_assert!(xd.b_ext <= b.len());
        prop_assert!(xd.score >= 0);
        let sw = local_align(&a, &b, &sc);
        prop_assert!(sw.a_end <= a.len() && sw.b_end <= b.len());
    }

    /// A full-width band reproduces the exact global score; any band is a
    /// lower bound and widening is monotone.
    #[test]
    fn banded_bounds_global(a in dna(50), b in dna(50), sc in scheme()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let exact = global_score(&a, &b, &sc).score;
        let full = banded_global(&a, &b, &sc, a.len().max(b.len()));
        prop_assert_eq!(full.score, exact);
        let mut last = i32::MIN / 4;
        for band in [1usize, 3, 10, 60] {
            let r = banded_global(&a, &b, &sc, band);
            prop_assert!(r.score <= exact);
            prop_assert!(r.score >= last);
            last = r.score;
        }
    }

    /// SW traceback recomputes its own score and consumes exact spans.
    #[test]
    fn traceback_consistent(a in dna(40), b in dna(40), sc in scheme()) {
        use gnb_align::sw::{local_align_traced, CigarOp};
        let t = local_align_traced(&a, &b, &sc);
        let (mut score, mut ai, mut bj) = (0i32, t.a_begin, t.b_begin);
        for op in &t.cigar {
            match *op {
                CigarOp::Match(n) => { score += sc.match_score * n as i32; ai += n as usize; bj += n as usize; }
                CigarOp::Mismatch(n) => { score += sc.mismatch * n as i32; ai += n as usize; bj += n as usize; }
                CigarOp::Ins(n) => { score += sc.gap * n as i32; ai += n as usize; }
                CigarOp::Del(n) => { score += sc.gap * n as i32; bj += n as usize; }
            }
        }
        prop_assert_eq!(score, t.aln.score);
        prop_assert_eq!(ai, t.aln.a_end);
        prop_assert_eq!(bj, t.aln.b_end);
        prop_assert_eq!(t.aln.score, local_align(&a, &b, &sc).score);
    }

    /// Appending characters to both strings never decreases the SW score.
    #[test]
    fn sw_monotone_under_extension(a in dna(40), b in dna(40), ext in dna(20)) {
        let sc = ScoringScheme::DEFAULT;
        let base = local_align(&a, &b, &sc).score;
        let mut a2 = a.clone();
        a2.extend_from_slice(&ext);
        let mut b2 = b.clone();
        b2.extend_from_slice(&ext);
        prop_assert!(local_align(&a2, &b2, &sc).score >= base);
    }
}
