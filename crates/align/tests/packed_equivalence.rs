//! Property-based proof obligations for the packed kernel's bit-identity
//! contract: on any DNA-with-N input, [`PackedXDropAligner`] must return
//! exactly the same [`Extension`] — score, both extents, *and* the cell
//! count — as the scalar reference kernel, and the full candidate
//! workflow must produce identical [`AlignmentRecord`]s on both strands.
//!
//! These properties are what makes `KernelImpl` a pure performance choice:
//! every downstream result (batch records, simulator task costs, TSVs) is
//! provably independent of which kernel ran.

use gnb_align::seed_extend::{
    align_candidate_packed_with, align_candidate_with, AcceptCriteria, Candidate, SeedExtendScratch,
};
use gnb_align::xdrop::xdrop_extend;
use gnb_align::{PackedView, PackedXDropAligner, ScoringScheme};
use gnb_genome::PackedSeq;
use proptest::prelude::*;

fn dna_with_n(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        min_len..max_len,
    )
}

fn scheme() -> impl Strategy<Value = ScoringScheme> {
    (1..4i32, -4..-1i32, -4..-1i32).prop_map(|(m, x, g)| ScoringScheme::new(m, x, g))
}

const K: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Raw kernel equivalence: identical `Extension` (score, extents,
    /// cells) on arbitrary DNA-with-N pairs across X thresholds and
    /// scoring schemes.
    #[test]
    fn packed_extension_matches_scalar(
        a in dna_with_n(0, 300),
        b in dna_with_n(0, 300),
        x in 0..100i32,
        sc in scheme(),
    ) {
        let reference = xdrop_extend(&a, &b, &sc, x);
        let (pa, pb) = (PackedSeq::from_bytes(&a), PackedSeq::from_bytes(&b));
        let mut al = PackedXDropAligner::new();
        let packed = al.extend(
            PackedView::full(pa.as_slice()),
            PackedView::full(pb.as_slice()),
            &sc,
            x,
        );
        prop_assert_eq!(packed, reference);
    }

    /// An aligner reused across many extensions (the production pattern:
    /// one scratch per worker) must behave exactly like a fresh one —
    /// no state leaks between calls.
    #[test]
    fn packed_aligner_reuse_is_stateless(
        pairs in proptest::collection::vec(
            (dna_with_n(0, 120), dna_with_n(0, 120), 0..60i32), 1..8),
    ) {
        let sc = ScoringScheme::DEFAULT;
        let mut shared = PackedXDropAligner::new();
        for (a, b, x) in &pairs {
            let (pa, pb) = (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b));
            let (va, vb) = (PackedView::full(pa.as_slice()), PackedView::full(pb.as_slice()));
            let got = shared.extend(va, vb, &sc, *x);
            let fresh = PackedXDropAligner::new().extend(va, vb, &sc, *x);
            prop_assert_eq!(got, fresh);
            prop_assert_eq!(got, xdrop_extend(a, b, &sc, *x));
        }
    }

    /// Full candidate workflow equivalence on both strands: the packed
    /// path (which exercises the suffix / reverse / reverse-complement
    /// view algebra internally) must reproduce the scalar path's
    /// `AlignmentRecord` field for field.
    #[test]
    fn packed_candidate_matches_scalar_both_strands(
        a in dna_with_n(K, 300),
        b in dna_with_n(K, 300),
        apos_raw in 0usize..1000,
        bpos_raw in 0usize..1000,
        same_strand in any::<bool>(),
        x in 0..60i32,
        sc in scheme(),
    ) {
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: (apos_raw % (a.len() - K + 1)) as u32,
            b_pos: (bpos_raw % (b.len() - K + 1)) as u32,
            same_strand,
        };
        let criteria = AcceptCriteria::default();
        let mut scratch = SeedExtendScratch::new();
        let reference = align_candidate_with(
            &mut scratch, &a, &b, &cand, K, &sc, x, &criteria);
        let (pa, pb) = (PackedSeq::from_bytes(&a), PackedSeq::from_bytes(&b));
        let packed = align_candidate_packed_with(
            &mut scratch, pa.as_slice(), pb.as_slice(), &cand, K, &sc, x, &criteria);
        prop_assert_eq!(packed, reference);
    }
}
