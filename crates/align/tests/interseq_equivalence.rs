//! Property-based proof obligations for the inter-sequence batched kernel's
//! bit-identity contract: on any DNA-with-N batch, [`BatchedXDropAligner`]
//! must return exactly the same [`Extension`] per pair — score, both
//! extents, *and* the cell count — as the scalar reference kernel, on every
//! ISA path this host can run, including the `i16` → `i32` overflow-retry
//! route for pairs that fail the exactness precheck.
//!
//! Together with `packed_equivalence.rs` these properties make
//! `KernelImpl` a pure performance choice: batch records, simulator task
//! costs, and TSVs are provably independent of which kernel ran.

use gnb_align::interseq::{align_candidates_batched, eligible_i16};
use gnb_align::seed_extend::{align_candidate_with, AcceptCriteria, Candidate, SeedExtendScratch};
use gnb_align::xdrop::xdrop_extend;
use gnb_align::{batch::AlignParams, BatchedXDropAligner, IsaPath, PackedView, ScoringScheme};
use gnb_genome::reads::{ReadOrigin, Strand};
use gnb_genome::{PackedSeq, ReadSet};
use proptest::prelude::*;

fn dna_with_n(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        min_len..max_len,
    )
}

fn scheme() -> impl Strategy<Value = ScoringScheme> {
    (1..4i32, -4..-1i32, -4..-1i32).prop_map(|(m, x, g)| ScoringScheme::new(m, x, g))
}

/// ASCII bases of a view, for feeding the byte-level scalar reference.
fn view_bytes(v: &PackedView<'_>) -> Vec<u8> {
    (0..v.len())
        .map(|i| {
            if v.is_n(i) {
                b'N'
            } else {
                b"ACGT"[v.code(i) as usize]
            }
        })
        .collect()
}

/// Every ISA path this host can actually execute.
fn available_paths() -> Vec<IsaPath> {
    [IsaPath::Portable, IsaPath::Avx2, IsaPath::Avx512]
        .into_iter()
        .filter(|p| p.is_available())
        .collect()
}

const K: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw batch equivalence on every available ISA path: ragged lengths
    /// (including empty sequences), arbitrary pair counts spanning several
    /// lane widths, N bases, varied schemes and thresholds. Pair counts
    /// above the lane width exercise mid-bucket lane refill; short decoy
    /// pairs die early and force refill while long pairs still run.
    #[test]
    fn batched_extension_matches_scalar(
        seqs in proptest::collection::vec(
            (dna_with_n(0, 200), dna_with_n(0, 200)), 1..40),
        x in 0..80i32,
        sc in scheme(),
    ) {
        let packed: Vec<(PackedSeq, PackedSeq)> = seqs
            .iter()
            .map(|(a, b)| (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b)))
            .collect();
        let pairs: Vec<(PackedView<'_>, PackedView<'_>)> = packed
            .iter()
            .map(|(pa, pb)| (PackedView::full(pa.as_slice()), PackedView::full(pb.as_slice())))
            .collect();
        let reference: Vec<_> = seqs
            .iter()
            .map(|(a, b)| xdrop_extend(a, b, &sc, x))
            .collect();
        for path in available_paths() {
            let mut eng = BatchedXDropAligner::with_path(path);
            let got = eng.extend_batch(&pairs, &sc, x);
            prop_assert_eq!(&got, &reference, "path {:?}", path);
        }
    }

    /// Reverse and reverse-complement views (the exact slices the candidate
    /// workflow feeds the engine) must round-trip bit-identically too: the
    /// striped gather reads augmented codes through the same view algebra
    /// the packed kernel uses.
    #[test]
    fn batched_matches_scalar_on_rev_comp_views(
        seqs in proptest::collection::vec(
            (dna_with_n(1, 150), dna_with_n(1, 150)), 1..18),
        cut_raw in 0usize..1000,
        x in 0..60i32,
    ) {
        let sc = ScoringScheme::DEFAULT;
        let packed: Vec<(PackedSeq, PackedSeq)> = seqs
            .iter()
            .map(|(a, b)| (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b)))
            .collect();
        // Left-extension geometry: reversed prefix of `a` against the
        // reverse-complemented (strand-normalised) prefix of `b`.
        let mut pairs = Vec::new();
        let mut bytes = Vec::new();
        for ((pa, pb), (a, b)) in packed.iter().zip(&seqs) {
            let cut_a = cut_raw % (a.len() + 1);
            let cut_b = cut_raw % (b.len() + 1);
            let va = PackedView::full(pa.as_slice()).rev_prefix(cut_a);
            let vb = PackedView::full(pb.as_slice()).revcomp().suffix(b.len() - cut_b);
            pairs.push((va, vb));
            bytes.push((view_bytes(&va), view_bytes(&vb)));
        }
        let reference: Vec<_> = bytes
            .iter()
            .map(|(a, b)| xdrop_extend(a, b, &sc, x))
            .collect();
        for path in available_paths() {
            let mut eng = BatchedXDropAligner::with_path(path);
            let got = eng.extend_batch(&pairs, &sc, x);
            prop_assert_eq!(&got, &reference, "path {:?}", path);
        }
    }

    /// An engine reused across batches (the production pattern) behaves
    /// exactly like a fresh one: no scratch-state leaks between calls.
    #[test]
    fn batched_engine_reuse_is_stateless(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (dna_with_n(0, 100), dna_with_n(0, 100)), 1..12),
            1..4),
        x in 0..50i32,
    ) {
        let sc = ScoringScheme::DEFAULT;
        let mut shared = BatchedXDropAligner::new();
        for batch in &batches {
            let packed: Vec<(PackedSeq, PackedSeq)> = batch
                .iter()
                .map(|(a, b)| (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b)))
                .collect();
            let pairs: Vec<(PackedView<'_>, PackedView<'_>)> = packed
                .iter()
                .map(|(pa, pb)| {
                    (PackedView::full(pa.as_slice()), PackedView::full(pb.as_slice()))
                })
                .collect();
            let got = shared.extend_batch(&pairs, &sc, x);
            let fresh = BatchedXDropAligner::new().extend_batch(&pairs, &sc, x);
            prop_assert_eq!(&got, &fresh);
            for (ext, (a, b)) in got.iter().zip(batch) {
                prop_assert_eq!(ext, &xdrop_extend(a, b, &sc, x));
            }
        }
    }

    /// Full candidate workflow equivalence through `align_batch`: batched
    /// records must equal the scalar per-candidate reference field for
    /// field on both strands, including the bucketed longest-first
    /// schedule's scatter back to input order.
    #[test]
    fn batched_candidates_match_scalar_both_strands(
        seqs in proptest::collection::vec(
            (dna_with_n(K, 250), dna_with_n(K, 250)), 1..10),
        apos_raw in 0usize..1000,
        bpos_raw in 0usize..1000,
        same_strand in any::<bool>(),
        x in 0..60i32,
        sc in scheme(),
    ) {
        let o = ReadOrigin { start: 0, ref_len: 0, strand: Strand::Forward };
        let mut reads = ReadSet::new();
        let mut cands = Vec::new();
        for (i, (a, b)) in seqs.iter().enumerate() {
            reads.push(a, o);
            reads.push(b, o);
            cands.push(Candidate {
                a: 2 * i as u32,
                b: 2 * i as u32 + 1,
                a_pos: (apos_raw % (a.len() - K + 1)) as u32,
                b_pos: (bpos_raw % (b.len() - K + 1)) as u32,
                same_strand,
            });
        }
        let params = AlignParams {
            k: K,
            scoring: sc,
            x,
            criteria: AcceptCriteria::default(),
            kernel: gnb_align::KernelImpl::Batched,
        };
        let mut scratch = SeedExtendScratch::new();
        let reference: Vec<_> = cands
            .iter()
            .map(|c| {
                align_candidate_with(
                    &mut scratch,
                    reads.read(c.a as usize),
                    reads.read(c.b as usize),
                    c,
                    K,
                    &sc,
                    x,
                    &params.criteria,
                )
            })
            .collect();
        let (records, stats) = align_candidates_batched(&reads, &cands, &params);
        prop_assert_eq!(&records, &reference);
        prop_assert_eq!(stats.tasks, 2 * cands.len() as u64);
    }
}

/// The `i16` → `i32` overflow-retry route: a scheme that fails the
/// exactness precheck (match score too large) must route every pair to the
/// fallback kernel and still return bit-identical extensions.
#[test]
fn ineligible_scheme_takes_retry_path_bit_identically() {
    let sc = ScoringScheme::new(2000, -2000, -2000);
    let x = 40;
    let bases = b"ACGT";
    let mk = |seed: usize, n: usize| -> Vec<u8> {
        (0..n)
            .map(|i| bases[(i * 7 + seed * 13 + i / 3) % 4])
            .collect()
    };
    let seqs: Vec<(Vec<u8>, Vec<u8>)> = (0..12)
        .map(|s| {
            let a = mk(s, 120 + 10 * s);
            let mut b = a.clone();
            if s % 3 == 0 {
                for i in (0..b.len()).step_by(17) {
                    b[i] = bases[(b[i] as usize + 1) % 4];
                }
            }
            (a, b)
        })
        .collect();
    assert!(seqs
        .iter()
        .all(|(a, b)| !eligible_i16(a.len(), b.len(), &sc, x)));
    let packed: Vec<(PackedSeq, PackedSeq)> = seqs
        .iter()
        .map(|(a, b)| (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b)))
        .collect();
    let pairs: Vec<(PackedView<'_>, PackedView<'_>)> = packed
        .iter()
        .map(|(pa, pb)| {
            (
                PackedView::full(pa.as_slice()),
                PackedView::full(pb.as_slice()),
            )
        })
        .collect();
    let mut eng = BatchedXDropAligner::new();
    let got = eng.extend_batch(&pairs, &sc, x);
    for (ext, (a, b)) in got.iter().zip(&seqs) {
        assert_eq!(ext, &xdrop_extend(a, b, &sc, x));
    }
    assert_eq!(eng.stats().fallback_tasks, pairs.len() as u64);
}

/// A mixed batch — long near-identical overlaps seated beside short decoys
/// that die within a few diagonals — forces lane refill mid-bucket on every
/// path, and must stay bit-identical while reporting high occupancy.
#[test]
fn lane_refill_mid_bucket_stays_bit_identical() {
    let sc = ScoringScheme::DEFAULT;
    let x = 30;
    let bases = b"ACGT";
    let mk = |seed: usize, n: usize| -> Vec<u8> {
        (0..n)
            .map(|i| bases[(i * 11 + seed * 17 + i / 7) % 4])
            .collect()
    };
    let mut seqs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for s in 0..80 {
        if s % 2 == 0 {
            // True overlap: ~5% substitutions, runs for thousands of cells.
            let a = mk(s, 1400 + 20 * (s % 7));
            let mut b = a.clone();
            for i in (0..b.len()).step_by(21) {
                b[i] = bases[(b[i] as usize + 1) % 4];
            }
            seqs.push((a, b));
        } else {
            // Decoy: unrelated short pair, dies almost immediately.
            seqs.push((mk(s, 90), mk(s + 1000, 90)));
        }
    }
    let packed: Vec<(PackedSeq, PackedSeq)> = seqs
        .iter()
        .map(|(a, b)| (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b)))
        .collect();
    let pairs: Vec<(PackedView<'_>, PackedView<'_>)> = packed
        .iter()
        .map(|(pa, pb)| {
            (
                PackedView::full(pa.as_slice()),
                PackedView::full(pb.as_slice()),
            )
        })
        .collect();
    let reference: Vec<_> = seqs
        .iter()
        .map(|(a, b)| xdrop_extend(a, b, &sc, x))
        .collect();
    for path in available_paths() {
        let mut eng = BatchedXDropAligner::with_path(path);
        let got = eng.extend_batch(&pairs, &sc, x);
        assert_eq!(got, reference, "path {path:?}");
        let stats = eng.stats();
        assert_eq!(stats.tasks, pairs.len() as u64);
        assert_eq!(stats.fallback_tasks, 0);
        assert!(
            stats.lane_fill() > 0.5,
            "refill should keep occupancy high on {path:?}: {}",
            stats.lane_fill()
        );
    }
}
