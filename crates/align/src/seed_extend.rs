//! Seed-and-extend alignment of a candidate read pair (paper Fig. 1–2).
//!
//! A candidate arrives as two reads plus the position of a shared k-mer in
//! each and a relative-orientation flag. Alignment proceeds by:
//!
//! 1. strand normalisation — opposite-orientation candidates reverse-
//!    complement read `b` and mirror its seed position;
//! 2. scoring the fixed seed;
//! 3. X-drop extension rightward from the seed end and leftward from the
//!    seed start (on reversed prefixes);
//! 4. classifying the resulting overlap geometry (containment / dovetail /
//!    internal — the three ways a pair can overlap, Fig. 2);
//! 5. applying acceptance criteria (the paper saves only alignments that
//!    "meet or exceed the user or default scoring criteria").

use crate::packed::{PackedView, PackedXDropAligner};
use crate::scoring::ScoringScheme;
use crate::xdrop::{Extension, XDropAligner};
use gnb_genome::PackedSlice;
use serde::{Deserialize, Serialize};

/// A candidate pair discovered through a shared (filtered) k-mer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// First read id.
    pub a: u32,
    /// Second read id.
    pub b: u32,
    /// Seed start position within read `a`.
    pub a_pos: u32,
    /// Seed start position within read `b` (in `b`'s as-read orientation).
    pub b_pos: u32,
    /// `true` if the shared k-mer occurs in the same orientation in both
    /// reads; `false` means `b` must be reverse-complemented.
    pub same_strand: bool,
}

/// Overlap geometry classes (paper Fig. 2), with a slop tolerance for the
/// ragged ends that sequencing errors leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapClass {
    /// `b`'s aligned region spans essentially all of `b`: `a` contains `b`.
    ContainsB,
    /// `a` is contained in `b`.
    ContainedInB,
    /// Suffix of `a` overlaps prefix of `b` (after strand normalisation).
    DovetailAB,
    /// Suffix of `b` overlaps prefix of `a`.
    DovetailBA,
    /// The alignment ends internally in both reads — typical of
    /// false-positive seeds or fragmentary similarity.
    Internal,
}

/// Acceptance criteria for computed alignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptCriteria {
    /// Minimum alignment score.
    pub min_score: i32,
    /// Minimum overlap length (max of the two aligned spans).
    pub min_overlap: usize,
}

impl Default for AcceptCriteria {
    fn default() -> Self {
        // BELLA-style default for ~1 kbp+ overlaps at +1/-1 scoring.
        AcceptCriteria {
            min_score: 200,
            min_overlap: 500,
        }
    }
}

/// A computed pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignmentRecord {
    /// Read ids (as in the candidate).
    pub a: u32,
    /// Second read id.
    pub b: u32,
    /// Total score: seed + leftward extension + rightward extension.
    pub score: i32,
    /// Aligned span in `a`: `[a_begin, a_end)`.
    pub a_begin: u32,
    /// End of the aligned span in `a` (exclusive).
    pub a_end: u32,
    /// Aligned span in `b` *after strand normalisation*.
    pub b_begin: u32,
    /// End of the aligned span in `b` (exclusive).
    pub b_end: u32,
    /// Relative orientation of the pair.
    pub same_strand: bool,
    /// Overlap geometry.
    pub class: OverlapClass,
    /// DP cells evaluated by both extensions (the task's compute cost).
    pub cells: u64,
    /// Whether the record met the acceptance criteria.
    pub accepted: bool,
}

/// Reusable scratch for candidate alignment (X-drop arrays + strand/reversal
/// buffers). One per worker thread.
#[derive(Debug, Default)]
pub struct SeedExtendScratch {
    aligner: XDropAligner,
    packed: PackedXDropAligner,
    b_rc: Vec<u8>,
    a_rev: Vec<u8>,
    b_rev: Vec<u8>,
}

impl SeedExtendScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Aligns one candidate. `k` is the seed length the candidate was
/// discovered with; `x` the X-drop threshold.
///
/// # Panics
/// Panics if the seed windows fall outside the reads (a corrupt candidate).
#[allow(clippy::too_many_arguments)]
pub fn align_candidate_with(
    scratch: &mut SeedExtendScratch,
    seq_a: &[u8],
    seq_b: &[u8],
    cand: &Candidate,
    k: usize,
    sc: &ScoringScheme,
    x: i32,
    criteria: &AcceptCriteria,
) -> AlignmentRecord {
    let a_pos = cand.a_pos as usize;
    assert!(a_pos + k <= seq_a.len(), "seed outside read a");
    assert!(
        (cand.b_pos as usize) + k <= seq_b.len(),
        "seed outside read b"
    );

    // Strand normalisation: work with b in the orientation that makes the
    // seed a forward match.
    let (b_norm, b_pos): (&[u8], usize) = if cand.same_strand {
        (seq_b, cand.b_pos as usize)
    } else {
        scratch.b_rc.clear();
        scratch
            .b_rc
            .extend(seq_b.iter().rev().map(|&c| gnb_genome::complement(c)));
        (&scratch.b_rc, seq_b.len() - k - cand.b_pos as usize)
    };

    // Seed score: count actual matches in the window (erroneous candidates
    // could in principle carry a slightly degenerate seed; score honestly).
    let mut seed_score = 0;
    for (ca, cb) in seq_a[a_pos..a_pos + k]
        .iter()
        .zip(&b_norm[b_pos..b_pos + k])
    {
        seed_score += sc.substitution(*ca, *cb);
    }

    // Rightward extension from the seed end.
    let right = scratch
        .aligner
        .extend(&seq_a[a_pos + k..], &b_norm[b_pos + k..], sc, x);

    // Leftward extension: extend the reversed prefixes.
    scratch.a_rev.clear();
    scratch.a_rev.extend(seq_a[..a_pos].iter().rev());
    scratch.b_rev.clear();
    scratch.b_rev.extend(b_norm[..b_pos].iter().rev());
    let left = scratch
        .aligner
        .extend(&scratch.a_rev, &scratch.b_rev, sc, x);

    assemble_record(
        cand,
        seed_score,
        &left,
        &right,
        a_pos,
        b_pos,
        k,
        seq_a.len(),
        b_norm.len(),
        criteria,
    )
}

/// Builds the final record from the seed score and the two extensions —
/// shared by the scalar, packed, and batched paths so their outputs stay
/// structurally identical by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_record(
    cand: &Candidate,
    seed_score: i32,
    left: &Extension,
    right: &Extension,
    a_pos: usize,
    b_pos: usize,
    k: usize,
    a_len: usize,
    b_len: usize,
    criteria: &AcceptCriteria,
) -> AlignmentRecord {
    let a_begin = a_pos - left.a_ext;
    let a_end = a_pos + k + right.a_ext;
    let b_begin = b_pos - left.b_ext;
    let b_end = b_pos + k + right.b_ext;
    let score = seed_score + left.score + right.score;

    let class = classify(a_begin, a_end, a_len, b_begin, b_end, b_len);
    let overlap = (a_end - a_begin).max(b_end - b_begin);
    let accepted = score >= criteria.min_score && overlap >= criteria.min_overlap;

    AlignmentRecord {
        a: cand.a,
        b: cand.b,
        score,
        a_begin: a_begin as u32,
        a_end: a_end as u32,
        b_begin: b_begin as u32,
        b_end: b_end as u32,
        same_strand: cand.same_strand,
        class,
        cells: left.cells + right.cells,
        accepted,
    }
}

/// Strand-normalised packed geometry of a candidate: the views and seed
/// score every packed-input path (per-candidate and batched) starts from.
/// Factored out so the batched driver slices its extension tasks exactly
/// as the per-candidate packed path does.
pub(crate) struct CandidateGeometry<'a> {
    /// Forward view of read `a`.
    pub a: PackedView<'a>,
    /// Strand-normalised view of read `b` (reverse-complemented for
    /// opposite-orientation candidates).
    pub b_norm: PackedView<'a>,
    /// Seed start in `a`.
    pub a_pos: usize,
    /// Seed start in `b_norm` (mirrored for opposite-orientation).
    pub b_pos: usize,
    /// Score of the fixed seed window.
    pub seed_score: i32,
}

/// Computes the strand-normalised geometry and seed score of a candidate
/// over packed reads.
///
/// # Panics
/// Panics if the seed windows fall outside the reads (a corrupt candidate).
pub(crate) fn packed_candidate_geometry<'a>(
    seq_a: PackedSlice<'a>,
    seq_b: PackedSlice<'a>,
    cand: &Candidate,
    k: usize,
    sc: &ScoringScheme,
) -> CandidateGeometry<'a> {
    let a_pos = cand.a_pos as usize;
    assert!(a_pos + k <= seq_a.len, "seed outside read a");
    assert!(
        (cand.b_pos as usize) + k <= seq_b.len,
        "seed outside read b"
    );

    let a = PackedView::full(seq_a);
    let (b_norm, b_pos) = if cand.same_strand {
        (PackedView::full(seq_b), cand.b_pos as usize)
    } else {
        (
            PackedView::full(seq_b).revcomp(),
            seq_b.len - k - cand.b_pos as usize,
        )
    };

    // Seed score from the packed codes: match iff equal codes and neither
    // base is N — exactly the byte-path `ScoringScheme::substitution`
    // semantics on valid DNA.
    let mut seed_score = 0;
    for t in 0..k {
        let same = a.code(a_pos + t) == b_norm.code(b_pos + t)
            && !a.is_n(a_pos + t)
            && !b_norm.is_n(b_pos + t);
        seed_score += if same { sc.match_score } else { sc.mismatch };
    }

    CandidateGeometry {
        a,
        b_norm,
        a_pos,
        b_pos,
        seed_score,
    }
}

/// Packed-kernel variant of [`align_candidate_with`]: same candidate
/// workflow over packed reads, returning a bit-identical record. Strand
/// normalisation and the left extension's reversal are O(1) view
/// constructions (no reverse-complement buffer is materialised), and the
/// seed is scored directly from the 2-bit codes.
///
/// # Panics
/// Panics if the seed windows fall outside the reads (a corrupt candidate).
#[allow(clippy::too_many_arguments)]
pub fn align_candidate_packed_with(
    scratch: &mut SeedExtendScratch,
    seq_a: PackedSlice<'_>,
    seq_b: PackedSlice<'_>,
    cand: &Candidate,
    k: usize,
    sc: &ScoringScheme,
    x: i32,
    criteria: &AcceptCriteria,
) -> AlignmentRecord {
    let g = packed_candidate_geometry(seq_a, seq_b, cand, k, sc);

    let right = scratch
        .packed
        .extend(g.a.suffix(g.a_pos + k), g.b_norm.suffix(g.b_pos + k), sc, x);
    let left = scratch
        .packed
        .extend(g.a.rev_prefix(g.a_pos), g.b_norm.rev_prefix(g.b_pos), sc, x);

    assemble_record(
        cand,
        g.seed_score,
        &left,
        &right,
        g.a_pos,
        g.b_pos,
        k,
        seq_a.len,
        g.b_norm.len(),
        criteria,
    )
}

/// One-shot packed-kernel wrapper over byte sequences: packs both inputs,
/// then runs [`align_candidate_packed_with`]. Intended for tests and
/// one-off calls — batch paths should reuse the load-time packing in
/// [`gnb_genome::ReadSet::packed_read`] instead.
#[allow(clippy::too_many_arguments)]
pub fn align_candidate_packed(
    seq_a: &[u8],
    seq_b: &[u8],
    cand: &Candidate,
    k: usize,
    sc: &ScoringScheme,
    x: i32,
    criteria: &AcceptCriteria,
) -> AlignmentRecord {
    let pa = gnb_genome::PackedSeq::from_bytes(seq_a);
    let pb = gnb_genome::PackedSeq::from_bytes(seq_b);
    align_candidate_packed_with(
        &mut SeedExtendScratch::new(),
        pa.as_slice(),
        pb.as_slice(),
        cand,
        k,
        sc,
        x,
        criteria,
    )
}

/// One-shot wrapper over [`align_candidate_with`] with fresh scratch.
#[allow(clippy::too_many_arguments)]
pub fn align_candidate(
    seq_a: &[u8],
    seq_b: &[u8],
    cand: &Candidate,
    k: usize,
    sc: &ScoringScheme,
    x: i32,
    criteria: &AcceptCriteria,
) -> AlignmentRecord {
    align_candidate_with(
        &mut SeedExtendScratch::new(),
        seq_a,
        seq_b,
        cand,
        k,
        sc,
        x,
        criteria,
    )
}

/// Fraction of a read end that may remain unaligned while still counting as
/// "reaching" the end (ragged ends from sequencing errors).
const END_SLOP: usize = 75;

fn classify(
    a_begin: usize,
    a_end: usize,
    a_len: usize,
    b_begin: usize,
    b_end: usize,
    b_len: usize,
) -> OverlapClass {
    let a_hits_start = a_begin <= END_SLOP;
    let a_hits_end = a_end + END_SLOP >= a_len;
    let b_hits_start = b_begin <= END_SLOP;
    let b_hits_end = b_end + END_SLOP >= b_len;
    match (a_hits_start, a_hits_end, b_hits_start, b_hits_end) {
        (_, _, true, true) => OverlapClass::ContainsB,
        (true, true, _, _) => OverlapClass::ContainedInB,
        // Suffix of a ↔ prefix of b.
        (false, true, true, false) => OverlapClass::DovetailAB,
        // Suffix of b ↔ prefix of a.
        (true, false, false, true) => OverlapClass::DovetailBA,
        _ => OverlapClass::Internal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::revcomp;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;
    const X: i32 = 25;

    fn crit(min_score: i32, min_overlap: usize) -> AcceptCriteria {
        AcceptCriteria {
            min_score,
            min_overlap,
        }
    }

    /// Deterministic aperiodic pseudo-random sequence (splitmix64-mixed).
    /// Periodic test sequences would spuriously match at half the diagonal
    /// shifts, which keeps X-drop bands alive forever.
    fn rand_seq(salt: u64, n: usize) -> Vec<u8> {
        (0..n as u64)
            .map(|i| {
                let mut z = (i ^ (salt << 32)).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                b"ACGT"[((z ^ (z >> 31)) & 3) as usize]
            })
            .collect()
    }

    /// Builds a dovetail pair: a = left + core, b = core + right.
    fn dovetail_pair(left: usize, core: usize, right: usize) -> (Vec<u8>, Vec<u8>, usize) {
        let l = rand_seq(1, left);
        let c = rand_seq(2, core);
        let r = rand_seq(3, right);
        let a: Vec<u8> = l.iter().chain(&c).copied().collect();
        let b: Vec<u8> = c.iter().chain(&r).copied().collect();
        (a, b, left)
    }

    #[test]
    fn perfect_dovetail_found_and_classified() {
        let (a, b, core_start) = dovetail_pair(300, 400, 300);
        let k = 17;
        // Seed somewhere inside the shared core.
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 100) as u32,
            b_pos: 100,
            same_strand: true,
        };
        let rec = align_candidate(&a, &b, &cand, k, &SC, X, &crit(100, 100));
        assert!(rec.accepted);
        assert_eq!(rec.score, 400);
        assert_eq!(rec.a_begin, 300);
        assert_eq!(rec.a_end, 700);
        assert_eq!(rec.b_begin, 0);
        assert_eq!(rec.b_end, 400);
        assert_eq!(rec.class, OverlapClass::DovetailAB);
    }

    #[test]
    fn reverse_strand_candidate() {
        let (a, b, core_start) = dovetail_pair(200, 300, 200);
        let b_rc = revcomp(&b);
        let k = 17;
        // In b_rc, the seed window [100, 100+k) of b sits at b.len()-k-100.
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 100) as u32,
            b_pos: (b.len() - k - 100) as u32,
            same_strand: false,
        };
        let rec = align_candidate(&a, &b_rc, &cand, k, &SC, X, &crit(100, 100));
        assert!(rec.accepted, "rev-strand overlap must align: {rec:?}");
        assert_eq!(rec.score, 300);
        assert_eq!(rec.class, OverlapClass::DovetailAB);
    }

    #[test]
    fn containment_classified() {
        // b is an interior slice of a.
        let (a, _, _) = dovetail_pair(0, 1000, 0);
        let b = a[200..600].to_vec();
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: 300,
            b_pos: 100,
            same_strand: true,
        };
        let rec = align_candidate(&a, &b, &cand, 17, &SC, X, &crit(100, 100));
        assert_eq!(rec.class, OverlapClass::ContainsB);
        assert_eq!(rec.score, 400);
    }

    #[test]
    fn false_positive_is_internal_and_cheap() {
        // Two unrelated reads sharing only a short planted seed.
        let mut a = rand_seq(10, 2000);
        let mut b = rand_seq(11, 2000);
        let seed = b"ACGTACGTACGTACGTA"; // k=17
        a[1000..1017].copy_from_slice(seed);
        b[500..517].copy_from_slice(seed);
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: 1000,
            b_pos: 500,
            same_strand: true,
        };
        let rec = align_candidate(&a, &b, &cand, 17, &SC, X, &AcceptCriteria::default());
        assert!(!rec.accepted);
        assert_eq!(rec.class, OverlapClass::Internal);
        // Early termination: far fewer cells than a true 2000-bp overlap.
        assert!(rec.cells < 20_000, "cells {}", rec.cells);
    }

    #[test]
    fn true_overlap_costs_more_than_false_positive() {
        let (a, b, core_start) = dovetail_pair(500, 3000, 500);
        let true_cand = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 1500) as u32,
            b_pos: 1500,
            same_strand: true,
        };
        let rec_true = align_candidate(&a, &b, &true_cand, 17, &SC, X, &crit(100, 100));
        let mut c = rand_seq(12, 3500);
        c[1500..1517].copy_from_slice(&a[core_start + 1500..core_start + 1517]);
        let fp_cand = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 1500) as u32,
            b_pos: 1500,
            same_strand: true,
        };
        let rec_fp = align_candidate(&a, &c, &fp_cand, 17, &SC, X, &crit(100, 100));
        assert!(
            rec_true.cells > rec_fp.cells * 5,
            "true {} vs fp {}",
            rec_true.cells,
            rec_fp.cells
        );
    }

    #[test]
    fn seed_at_read_boundaries() {
        // Seed flush at the start and end of reads must not panic.
        let (a, b, _) = dovetail_pair(0, 200, 0);
        let k = 17;
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        };
        let rec = align_candidate(&a, &b, &cand, k, &SC, X, &crit(10, 10));
        assert_eq!(rec.score, 200);
        let cand_end = Candidate {
            a: 0,
            b: 1,
            a_pos: (a.len() - k) as u32,
            b_pos: (b.len() - k) as u32,
            same_strand: true,
        };
        let rec = align_candidate(&a, &b, &cand_end, k, &SC, X, &crit(10, 10));
        assert_eq!(rec.score, 200);
    }

    #[test]
    #[should_panic(expected = "seed outside")]
    fn corrupt_candidate_panics() {
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: 100,
            b_pos: 0,
            same_strand: true,
        };
        let _ = align_candidate(
            b"ACGT",
            b"ACGTACGTACGTACGTACGT",
            &cand,
            17,
            &SC,
            X,
            &crit(0, 0),
        );
    }

    #[test]
    fn packed_path_matches_scalar_both_strands() {
        let (a, b, core_start) = dovetail_pair(300, 400, 300);
        let k = 17;
        let fwd = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 100) as u32,
            b_pos: 100,
            same_strand: true,
        };
        let crit = AcceptCriteria::default();
        let scalar = align_candidate(&a, &b, &fwd, k, &SC, X, &crit);
        let packed = align_candidate_packed(&a, &b, &fwd, k, &SC, X, &crit);
        assert_eq!(scalar, packed);

        let b_rc = revcomp(&b);
        let rev = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 100) as u32,
            b_pos: (b.len() - k - 100) as u32,
            same_strand: false,
        };
        let scalar = align_candidate(&a, &b_rc, &rev, k, &SC, X, &crit);
        let packed = align_candidate_packed(&a, &b_rc, &rev, k, &SC, X, &crit);
        assert_eq!(scalar, packed);
    }

    #[test]
    fn acceptance_criteria_enforced() {
        let (a, b, core_start) = dovetail_pair(100, 300, 100);
        let cand = Candidate {
            a: 0,
            b: 1,
            a_pos: (core_start + 50) as u32,
            b_pos: 50,
            same_strand: true,
        };
        let loose = align_candidate(&a, &b, &cand, 17, &SC, X, &crit(100, 100));
        assert!(loose.accepted);
        let strict = align_candidate(&a, &b, &cand, 17, &SC, X, &crit(1000, 100));
        assert!(!strict.accepted);
        let long = align_candidate(&a, &b, &cand, 17, &SC, X, &crit(100, 5000));
        assert!(!long.accepted);
    }
}
