//! X-drop alignment extension (Zhang, Schwartz, Wagner & Miller, 2000).
//!
//! The production kernel of the study. Starting from an anchor at `(0, 0)`
//! — in practice, the end of a seed — the extension explores the DP matrix
//! antidiagonal by antidiagonal, keeping only the *live band*: cells whose
//! score is within `X` of the best score seen so far. On a true overlap the
//! band stays narrow and tracks the main diagonal, giving average-case
//! O(n·band) work; on a false-positive seed the whole band dies within a
//! few antidiagonals and the extension terminates early. That asymmetry is
//! exactly the variable task cost the paper's load-imbalance analysis
//! (§4.2) is about.
//!
//! The implementation processes three rolling antidiagonal arrays with
//! sentinel guard slots, so each extension allocates nothing when reusing a
//! [`XDropAligner`] scratch.

use crate::scoring::ScoringScheme;

/// "Minus infinity" for dead cells, low enough that adding a gap penalty
/// cannot wrap. Shared with the packed kernel, which must agree bit-for-bit.
pub(crate) const NEG: i32 = i32::MIN / 4;

/// Result of an X-drop extension anchored at `(0, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extension {
    /// Best extension score found (≥ 0; the empty extension scores 0).
    pub score: i32,
    /// Bases of `a` consumed by the best extension.
    pub a_ext: usize,
    /// Bases of `b` consumed by the best extension.
    pub b_ext: usize,
    /// DP cells evaluated — the simulator's unit of alignment work.
    pub cells: u64,
}

/// Reusable scratch for X-drop extensions (three antidiagonal arrays).
///
/// Reusing one aligner per worker thread keeps the hot loop allocation-free;
/// [`crate::batch::align_batch`] does this via rayon's `map_init`.
#[derive(Debug, Default)]
pub struct XDropAligner {
    prev2: Vec<i32>,
    prev: Vec<i32>,
    cur: Vec<i32>,
}

/// Index offset: slot `i + PAD` holds row `i`, leaving `PAD` guard slots on
/// each side so band-edge reads at `i-1` (and diagonal reads two steps back)
/// always land on initialised `NEG` sentinels.
pub(crate) const PAD: usize = 2;

impl XDropAligner {
    /// Creates an empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        let want = n + 2 * PAD + 1;
        if self.prev.len() < want {
            self.prev2.resize(want, NEG);
            self.prev.resize(want, NEG);
            self.cur.resize(want, NEG);
        }
    }

    /// Extends an alignment from `(0, 0)` into `a` × `b` under X-drop
    /// pruning threshold `x` (≥ 0). Returns the best-scoring extension.
    ///
    /// Ties are broken toward the shortest extension (earliest antidiagonal,
    /// then fewest `a` bases), making results deterministic.
    pub fn extend(&mut self, a: &[u8], b: &[u8], sc: &ScoringScheme, x: i32) -> Extension {
        assert!(x >= 0, "X-drop threshold must be non-negative");
        let (n, m) = (a.len(), b.len());
        self.ensure(n);

        // Reset only the slots the first diagonals will read: rows around 0.
        for s in 0..(2 * PAD + 1).min(self.prev.len()) {
            self.prev2[s] = NEG;
            self.prev[s] = NEG;
            self.cur[s] = NEG;
        }

        let mut best = Extension::default();

        // Diagonal 0: the empty extension.
        self.cur[PAD] = 0;
        std::mem::swap(&mut self.prev, &mut self.cur); // prev = diag 0
                                                       // Live (unpruned) row ranges of the two predecessor diagonals. A
                                                       // cell on diagonal d is reachable from d-1 (gap moves) *or directly
                                                       // from d-2* (the diagonal move skips d-1), so candidates and the
                                                       // termination test must consider both.
        let mut live1: Option<(usize, usize)> = Some((0, 0)); // diagonal d-1
        let mut live2: Option<(usize, usize)> = None; // diagonal d-2

        let mut cells: u64 = 0;
        for d in 1..=(n + m) {
            let row_lo = d.saturating_sub(m);
            let row_hi = d.min(n);
            let from_prev = live1.map(|(lo, hi)| (lo, hi + 1));
            let from_diag = live2.map(|(lo, hi)| (lo + 1, hi + 1));
            let (band_lo, band_hi) = match (from_prev, from_diag) {
                (Some((a0, a1)), Some((b0, b1))) => (a0.min(b0), a1.max(b1)),
                (Some(r), None) | (None, Some(r)) => r,
                (None, None) => break, // two dead diagonals: extension over
            };
            let cand_lo = band_lo.max(row_lo);
            let cand_hi = band_hi.min(row_hi);
            if cand_lo > cand_hi {
                // Band slid outside the matrix on this diagonal; it can
                // only slide further out, so stop.
                break;
            }

            let mut new_lo = usize::MAX;
            let mut new_hi = 0usize;
            for i in cand_lo..=cand_hi {
                let j = d - i;
                let diag = if i > 0 && j > 0 {
                    let v = self.prev2[i - 1 + PAD];
                    if v <= NEG {
                        NEG
                    } else {
                        v + sc.substitution(a[i - 1], b[j - 1])
                    }
                } else {
                    NEG
                };
                let up = if i > 0 {
                    let v = self.prev[i - 1 + PAD];
                    if v <= NEG {
                        NEG
                    } else {
                        v + sc.gap
                    }
                } else {
                    NEG
                };
                let left = {
                    let v = self.prev[i + PAD];
                    if v <= NEG {
                        NEG
                    } else {
                        v + sc.gap
                    }
                };
                let mut h = diag.max(up).max(left);
                cells += 1;
                if h != NEG && h < best.score - x {
                    h = NEG; // X-drop prune
                }
                self.cur[i + PAD] = h;
                if h > best.score {
                    best.score = h;
                    best.a_ext = i;
                    best.b_ext = j;
                }
                if h > NEG {
                    new_lo = new_lo.min(i);
                    new_hi = new_hi.max(i);
                }
            }
            // Guard sentinels beyond the written range (two on each side:
            // the array is later read as `prev` at i-1/i and as `prev2` at
            // i-1 of a band that may have grown by one on each side).
            for g in 1..=PAD {
                self.cur[cand_lo + PAD - g] = NEG;
                self.cur[cand_hi + PAD + g] = NEG;
            }

            live2 = live1;
            live1 = if new_lo == usize::MAX {
                None
            } else {
                Some((new_lo, new_hi))
            };

            // Rotate: prev2 <- prev, prev <- cur, cur <- old prev2.
            std::mem::swap(&mut self.prev2, &mut self.prev);
            std::mem::swap(&mut self.prev, &mut self.cur);
        }

        best.cells = cells;
        best
    }
}

/// One-shot convenience wrapper: allocates a fresh scratch.
pub fn xdrop_extend(a: &[u8], b: &[u8], sc: &ScoringScheme, x: i32) -> Extension {
    XDropAligner::new().extend(a, b, sc, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::local_align;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;

    #[test]
    fn identical_extension() {
        let r = xdrop_extend(b"ACGTACGT", b"ACGTACGT", &SC, 10);
        assert_eq!(r.score, 8);
        assert_eq!(r.a_ext, 8);
        assert_eq!(r.b_ext, 8);
        assert!(r.cells > 0);
    }

    #[test]
    fn empty_inputs() {
        let r = xdrop_extend(b"", b"", &SC, 10);
        assert_eq!(r.score, 0);
        assert_eq!((r.a_ext, r.b_ext), (0, 0));
        let r = xdrop_extend(b"ACGT", b"", &SC, 10);
        assert_eq!(r.score, 0);
        let r = xdrop_extend(b"", b"ACGT", &SC, 10);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn substitution_tolerated_within_x() {
        // One mismatch mid-way: with X large enough the extension crosses it.
        let a = b"ACGTACGTAC";
        let b = b"ACGTTCGTAC";
        let r = xdrop_extend(a, b, &SC, 5);
        assert_eq!(r.score, 9 + SC.mismatch);
        assert_eq!(r.a_ext, 10);
    }

    #[test]
    fn indel_tolerated() {
        let a = b"ACGTACGTACGT";
        let b = b"ACGTACTACGT"; // deletion of one G
        let r = xdrop_extend(a, b, &SC, 5);
        assert_eq!(r.a_ext, 12);
        assert_eq!(r.b_ext, 11);
        assert_eq!(r.score, 11 + SC.gap);
    }

    #[test]
    fn false_positive_terminates_early() {
        // Junk after a short agreeing prefix: the band must die quickly and
        // evaluate far fewer cells than the full matrix.
        let a: Vec<u8> = b"ACGTACGT"
            .iter()
            .chain([b'A'; 2000].iter())
            .copied()
            .collect();
        let b: Vec<u8> = b"ACGTACGT"
            .iter()
            .chain([b'T'; 2000].iter())
            .copied()
            .collect();
        let r = xdrop_extend(&a, &b, &SC, 10);
        assert_eq!(r.score, 8);
        assert!(
            r.cells < 2000,
            "X-drop must terminate early on divergent tails, used {} cells",
            r.cells
        );
    }

    #[test]
    fn never_exceeds_local_optimum() {
        // X-drop anchored at (0,0) can never beat unanchored Smith-Waterman.
        let pairs: &[(&[u8], &[u8])] = &[
            (b"GATTACAGATTACA", b"GATCACAGTTACA"),
            (b"ACGT", b"TGCA"),
            (b"AAAACCCCGGGG", b"AAAAGGGG"),
        ];
        for (a, b) in pairs {
            for x in [0, 1, 5, 100] {
                let xd = xdrop_extend(a, b, &SC, x);
                let swr = local_align(a, b, &SC);
                assert!(
                    xd.score <= swr.score,
                    "xdrop {} > sw {} on {:?}",
                    xd.score,
                    swr.score,
                    (std::str::from_utf8(a).unwrap(), x)
                );
            }
        }
    }

    #[test]
    fn generous_x_matches_prefix_anchored_optimum() {
        // With X larger than any possible drop, X-drop equals the best
        // prefix-vs-prefix ("anchored") alignment. For a pair that matches
        // from the start, that equals the SW optimum.
        let a = b"ACGGATTACAGGATCC";
        let b = b"ACGGATTTACAGGATC";
        let xd = xdrop_extend(a, b, &SC, 1000);
        let swr = local_align(a, b, &SC);
        assert_eq!(xd.score, swr.score);
    }

    #[test]
    fn x_zero_stops_at_first_drop() {
        // With X = 0, any score decrease kills the band; on a string with a
        // mismatch at position 4 the extension keeps the 4-base prefix.
        let a = b"ACGGTTTTT";
        let b = b"ACGGAAAAA";
        let r = xdrop_extend(a, b, &SC, 0);
        assert_eq!(r.score, 4);
        assert_eq!((r.a_ext, r.b_ext), (4, 4));
    }

    #[test]
    fn scratch_reuse_is_clean() {
        // A long noisy extension followed by a tiny one: stale state must
        // not leak between calls.
        let mut al = XDropAligner::new();
        let a: Vec<u8> = (0..500).map(|i| b"ACGT"[i % 4]).collect();
        let b: Vec<u8> = (0..500).map(|i| b"ACGT"[(i + (i / 97)) % 4]).collect();
        let _ = al.extend(&a, &b, &SC, 20);
        let small = al.extend(b"ACG", b"ACG", &SC, 5);
        assert_eq!(small.score, 3);
        assert_eq!(small.a_ext, 3);
        let again = al.extend(b"ACG", b"ACG", &SC, 5);
        assert_eq!(small.score, again.score);
    }

    #[test]
    fn larger_x_never_lowers_score() {
        let a = b"ACGGATTACAGGATCCACGGATTACAGGATCC";
        let b = b"ACGGATTACCGGATCCACGGTTTACAGGATCC";
        let mut last = -1;
        for x in [0, 1, 2, 4, 8, 16, 32] {
            let r = xdrop_extend(a, b, &SC, x);
            assert!(r.score >= last, "x={x}: {} < {}", r.score, last);
            last = r.score;
        }
    }

    #[test]
    fn asymmetric_lengths() {
        let a = b"ACGTACGTACGTACGT";
        let b = b"ACGT";
        let r = xdrop_extend(a, b, &SC, 100);
        assert_eq!(r.score, 4);
        assert_eq!(r.b_ext, 4);
    }
}
