//! Scoring schemes for pairwise alignment.
//!
//! The paper's kernels use linear gap penalties (the SeqAn X-drop extension
//! the study calls is configured with simple match/mismatch/gap scores, as
//! in BELLA). `N` is treated as a wildcard-mismatch: a low-confidence base
//! call can never count as evidence of identity.

use serde::{Deserialize, Serialize};

/// Linear-gap scoring: `match_score` per identity, `mismatch` per
/// substitution, `gap` per inserted/deleted base. Penalties are negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringScheme {
    /// Reward for a matching base pair (> 0).
    pub match_score: i32,
    /// Penalty for a substitution (< 0).
    pub mismatch: i32,
    /// Penalty per gap base (< 0).
    pub gap: i32,
}

impl ScoringScheme {
    /// Default: +1 match, −2 mismatch, −2 gap.
    ///
    /// Penalties must be heavy enough that the optimal alignment of
    /// *unrelated* sequence has negative expected score drift — otherwise
    /// X-drop never terminates early on false-positive seeds. Under unit
    /// costs (+1/−1/−1) the optimal path on random 4-letter strings tracks
    /// the longest common subsequence (Chvátal–Sankoff γ₄ ≈ 0.65) and
    /// scores ≈ −0.04·n per column: nearly neutral, so bands survive for
    /// thousands of antidiagonals. At −2 the drift is ≈ −0.73·n while a
    /// true overlap of two 15%-error reads (≈ 28% pairwise divergence)
    /// still drifts positive (≈ +0.16·n).
    pub const DEFAULT: ScoringScheme = ScoringScheme {
        match_score: 1,
        mismatch: -2,
        gap: -2,
    };

    /// Creates a scheme, validating sign conventions.
    ///
    /// # Panics
    /// Panics unless `match_score > 0`, `mismatch < 0`, and `gap < 0`.
    pub fn new(match_score: i32, mismatch: i32, gap: i32) -> Self {
        assert!(match_score > 0, "match score must be positive");
        assert!(mismatch < 0, "mismatch penalty must be negative");
        assert!(gap < 0, "gap penalty must be negative");
        ScoringScheme {
            match_score,
            mismatch,
            gap,
        }
    }

    /// Substitution score of aligning bases `a` and `b`.
    #[inline(always)]
    pub fn substitution(&self, a: u8, b: u8) -> i32 {
        if a == b && a != b'N' {
            self.match_score
        } else {
            self.mismatch
        }
    }
}

impl Default for ScoringScheme {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheme() {
        let s = ScoringScheme::default();
        assert_eq!(s.substitution(b'A', b'A'), 1);
        assert_eq!(s.substitution(b'A', b'C'), -2);
    }

    #[test]
    fn n_never_matches() {
        let s = ScoringScheme::DEFAULT;
        assert_eq!(s.substitution(b'N', b'N'), s.mismatch);
        assert_eq!(s.substitution(b'N', b'A'), s.mismatch);
        assert_eq!(s.substitution(b'A', b'N'), s.mismatch);
    }

    #[test]
    #[should_panic(expected = "match score")]
    fn rejects_nonpositive_match() {
        let _ = ScoringScheme::new(0, -1, -1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_positive_mismatch() {
        let _ = ScoringScheme::new(1, 1, -1);
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn rejects_positive_gap() {
        let _ = ScoringScheme::new(1, -1, 0);
    }
}
