//! Pairwise alignment kernels for long-read overlap detection.
//!
//! The paper computes seed-and-extend pairwise alignments with "a performant
//! C++ implementation of X-drop [Zhang et al. 2000] from the SeqAn library"
//! (§4). This crate provides a from-scratch Rust implementation of that
//! kernel, plus exact full-DP baselines used to validate it:
//!
//! * [`ScoringScheme`] — linear-gap match/mismatch/gap weights; `N` never
//!   matches anything (low-confidence calls cannot score as identities);
//! * [`nw::global_score`] — Needleman–Wunsch global alignment, O(nm);
//! * [`sw::local_align`] — Smith–Waterman local alignment, O(nm);
//! * [`xdrop::xdrop_extend`] — banded antidiagonal X-drop extension, the
//!   reference kernel: average-case O(n), terminates early on
//!   false-positive seeds (the source of the paper's variable task costs);
//! * [`packed::PackedXDropAligner`] — the production kernel: the same
//!   algorithm over 2-bit packed sequences with 32-way base comparison and
//!   a branch-reduced inner loop, bit-identical to the scalar kernel
//!   (selected per batch via [`KernelImpl`]);
//! * [`seed_extend::align_candidate`] — the full candidate workflow: strand
//!   normalisation, two-directional extension from the seed, overlap
//!   classification (paper Fig. 2), acceptance criteria;
//! * [`batch::align_batch`] — rayon-parallel batch driver;
//! * [`calibrate::measure_cell_rate`] — measures host DP-cell throughput to
//!   convert cell counts into simulated KNL-core seconds.
//!
//! Every kernel reports the number of DP cells it evaluated; the simulator
//! uses cells as its machine-independent unit of alignment work.

#![warn(missing_docs)]

pub mod affine;
pub mod banded;
pub mod batch;
pub mod calibrate;
pub mod interseq;
pub mod nw;
pub mod packed;
pub mod scoring;
pub mod seed_extend;
pub mod sw;
pub mod xdrop;

pub use batch::{align_batch, BatchOutcome};
pub use interseq::{
    BatchPlan, BatchStats, BatchedXDropAligner, BucketDesc, IsaPath, LengthBuckets,
};
pub use packed::{PackedView, PackedXDropAligner};
pub use scoring::ScoringScheme;
pub use seed_extend::{align_candidate, AcceptCriteria, AlignmentRecord, Candidate, OverlapClass};
pub use xdrop::{xdrop_extend, Extension, XDropAligner};

/// Which X-drop kernel implementation a batch runs.
///
/// All variants return bit-identical [`Extension`]s on DNA-with-N inputs
/// (the packed and batched kernels assert this contract via equivalence
/// proptests); selection is therefore a pure performance choice. The scalar
/// kernel is retained as the reference implementation and as the fallback
/// for sequences that are not valid `{A,C,G,T,N}` DNA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum KernelImpl {
    /// Byte-at-a-time reference kernel ([`XDropAligner`]).
    Scalar,
    /// 2-bit packed, branch-reduced kernel ([`PackedXDropAligner`]).
    #[default]
    Packed,
    /// Inter-sequence batched kernel ([`BatchedXDropAligner`]): many pairs
    /// per SIMD register, scheduled over length buckets with lane refill.
    Batched,
}
