//! Inter-sequence batched X-drop engine: many candidate pairs per register.
//!
//! The packed kernel ([`crate::packed`]) vectorises *within* one pair's
//! antidiagonal, so its lane occupancy is bounded by the live band width —
//! a few dozen cells on a true overlap, a handful on a dying false
//! positive. This module turns the problem sideways, Farrar-style
//! ("Striped Smith–Waterman", Farrar 2007, adapted from intra- to
//! inter-sequence striping): every SIMD lane carries a *different* pair,
//! and all lanes advance their own DP front one antidiagonal per step in
//! lockstep. Occupancy then depends only on how long lanes keep working,
//! which the batch scheduler controls:
//!
//! * **Length bucketing** ([`LengthBuckets`]): the longest-first order
//!   `align_batch` already produces is cut into buckets of ≤ 2× length
//!   spread, so co-resident lanes finish at commensurate times.
//! * **Staged lane refill**: diagonal progress is quantised onto a doubling
//!   boundary grid (64, 128, 256, …). A cohort of lanes runs one stage;
//!   survivors park in the next stage's pool and are re-seated into fresh,
//!   fully occupied cohorts, while early deaths (the false-positive common
//!   case) free their lane immediately. Cohorts are only under-occupied on
//!   the final flush of each pool.
//! * **Band-relative addressing**: each lane stores its rows at
//!   `row - offset`, the offset fixed per stage at the lane's current band
//!   floor. Lanes whose absolute bands drift apart (different length
//!   ratios) still share a dense register window.
//!
//! # Bit-identity
//!
//! Results are bit-identical to [`crate::xdrop::XDropAligner`] per pair —
//! same scores, extents, `cells` counts, tie-breaks, and termination. The
//! lane arithmetic is `i16`; the [`eligible_i16`] precheck admits a pair
//! only when every intermediate value is provably exact in `i16`
//! (`n + m ≤ 32 000`, `min(n, m)·match ≤ 30 000`, `|penalties| ≤ 1024`,
//! `x ≤ 4096` — so live scores stay in `[-x, 30 000]`, transients below
//! `i16` saturation, and every dead-predecessor value renormalises to
//! exactly [`NEG16`] under the same argument as the packed kernel's
//! `NEG` renormalisation). Ineligible pairs take the widen-to-`i32` retry
//! path: they run on the bit-identical [`PackedXDropAligner`] instead.
//! The proptests in `crates/align/tests/interseq_equivalence.rs` pin all
//! three ISA paths against the scalar reference.
//!
//! # Accelerator interface
//!
//! [`BatchPlan`] (bucket extents + refill order, plain POD) is the stable
//! descriptor a future GPU backend consumes: the same bucketing and
//! lane-refill schedule maps onto warp-per-pair batch alignment (cf. the
//! GPU scheduler work for de novo assembly, arXiv 2309.07270).

use crate::batch::{AlignParams, BatchOutcome};
use crate::packed::{PackedView, PackedXDropAligner, MAX_X};
use crate::scoring::ScoringScheme;
use crate::seed_extend::{assemble_record, packed_candidate_geometry, AlignmentRecord, Candidate};
use crate::xdrop::Extension;
use gnb_genome::ReadSet;

/// "Minus infinity" of the `i16` lane arithmetic (`i16::MIN / 4`): low
/// enough that adding any admitted substitution or gap value cannot wrap,
/// high enough that `NEG16 + value` always falls below every admissible
/// X-drop cutoff (see module docs).
pub const NEG16: i16 = i16::MIN / 4;

/// Widest supported lane count (the AVX-512BW path: 32 × i16).
pub const MAX_LANES: usize = 32;

/// Per-lane band-bound sentinels for lanes with no work this diagonal:
/// `DEAD_LO > any q` and `DEAD_HI < any q`, so the in-band and guard masks
/// are false at every position even after the ±3 bound arithmetic.
const DEAD_LO: i16 = 32_000;
const DEAD_HI: i16 = -32_000;

/// Augmented stripe codes: bases are 0–3; an ambiguous base becomes 4 on
/// the `a` side and 5 on the `b` side so one lane-equality test implements
/// "N matches nothing" (N vs N also mismatches).
const A_AMBIG: i16 = 4;
const B_AMBIG: i16 = 5;

/// First stage boundary of the doubling refill grid.
const STAGE0: u32 = 64;

/// Longest stage between re-seats. Lanes re-anchor their band-relative
/// offsets only at stage boundaries, and bands of co-resident lanes drift
/// apart at a few percent of a row per diagonal; capping the stage length
/// bounds that dispersion (and with it the swept union window), while the
/// per-cell cost of stage setup (stripes, restores, parks) stays nearly
/// flat in the stage length.
const STAGE_CAP: u32 = 192;

/// Largest candidate count per bucket (bounds per-bucket pool memory).
const MAX_BUCKET_TASKS: u32 = 4096;

// ---------------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------------

/// Which inner-loop implementation a [`BatchedXDropAligner`] runs. All
/// paths compute bit-identical results; only the lane width (and therefore
/// throughput) differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaPath {
    /// Plain Rust, 8 scalar lanes — the reference the vector paths are
    /// pinned against, and the fallback for non-x86 hosts.
    Portable,
    /// AVX2: 16 × i16 lanes per `__m256i`.
    Avx2,
    /// AVX-512BW: 32 × i16 lanes per `__m512i` with mask registers.
    Avx512,
}

impl IsaPath {
    /// Best path available on this host (runtime CPU detection).
    pub fn detect() -> IsaPath {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512bw") {
                return IsaPath::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return IsaPath::Avx2;
            }
        }
        IsaPath::Portable
    }

    /// Whether this path can run on this host.
    pub fn is_available(self) -> bool {
        match self {
            IsaPath::Portable => true,
            #[cfg(target_arch = "x86_64")]
            IsaPath::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            IsaPath::Avx512 => std::arch::is_x86_feature_detected!("avx512bw"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Pairs processed per SIMD register on this path.
    pub fn lane_width(self) -> usize {
        match self {
            IsaPath::Portable => 8,
            IsaPath::Avx2 => 16,
            IsaPath::Avx512 => 32,
        }
    }
}

/// The x86 SIMD feature set detected at runtime, for benchmark headers and
/// honest reporting of what a committed number describes.
pub fn detected_features() -> Vec<&'static str> {
    let mut out = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512bw") {
            out.push("avx512bw");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Batch plan (the accelerator-ready descriptor)
// ---------------------------------------------------------------------------

/// One length bucket: a contiguous span of the longest-first order whose
/// tasks are within 2× of each other in total length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketDesc {
    /// First index into [`BatchPlan::order`].
    pub first: u32,
    /// Number of candidates in the bucket.
    pub count: u32,
    /// Largest `len(a) + len(b)` in the bucket.
    pub max_len_sum: u32,
    /// Smallest `len(a) + len(b)` in the bucket.
    pub min_len_sum: u32,
}

/// Explicit length-bucket grouping over a longest-first task order.
#[derive(Debug, Clone, Default)]
pub struct LengthBuckets {
    /// Buckets in schedule order (longest first).
    pub buckets: Vec<BucketDesc>,
}

impl LengthBuckets {
    /// Groups a descending-sorted sequence of task length sums into buckets
    /// of at most 2× length spread and at most `MAX_BUCKET_TASKS` tasks.
    pub fn build(sorted_len_sums: &[u32]) -> LengthBuckets {
        let mut buckets = Vec::new();
        let mut first = 0u32;
        while (first as usize) < sorted_len_sums.len() {
            let head = sorted_len_sums[first as usize];
            let mut count = 0u32;
            while (first + count) as usize != sorted_len_sums.len() && count < MAX_BUCKET_TASKS {
                let len = sorted_len_sums[(first + count) as usize];
                debug_assert!(len <= head, "input must be sorted descending");
                if 2 * len < head {
                    break;
                }
                count += 1;
            }
            buckets.push(BucketDesc {
                first,
                count,
                max_len_sum: head,
                min_len_sum: sorted_len_sums[(first + count - 1) as usize],
            });
            first += count;
        }
        LengthBuckets { buckets }
    }
}

/// The full batch descriptor: which candidate runs where, in what order.
/// Plain POD — this is the stable interface an accelerator backend consumes
/// (bucket extents, lane assignment rule, refill order).
///
/// Candidate `order[bucket.first + i]` is the bucket's `i`-th seat/refill;
/// each candidate expands to two extension tasks (right, then left), and a
/// backend with `lane_width` lanes seats tasks round-robin, refilling a
/// freed lane with the bucket's next pending task.
#[derive(Debug, Clone, Default)]
pub struct BatchPlan {
    /// Lanes per SIMD register on the path that will execute the plan.
    pub lane_width: u32,
    /// Candidate indices, longest-first (the refill order).
    pub order: Vec<u32>,
    /// Bucket extents over `order`.
    pub buckets: Vec<BucketDesc>,
}

impl BatchPlan {
    /// Builds the plan for a candidate set: the same stable longest-first
    /// sort [`crate::batch::align_batch`] uses, cut into length buckets.
    pub fn build(reads: &ReadSet, tasks: &[Candidate], lane_width: usize) -> BatchPlan {
        let len_sum = |c: &Candidate| -> u32 {
            (reads.read_len(c.a as usize) + reads.read_len(c.b as usize)) as u32
        };
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_by_key(|&t| std::cmp::Reverse(len_sum(&tasks[t as usize])));
        let sums: Vec<u32> = order.iter().map(|&t| len_sum(&tasks[t as usize])).collect();
        BatchPlan {
            lane_width: lane_width as u32,
            order,
            buckets: LengthBuckets::build(&sums).buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine statistics
// ---------------------------------------------------------------------------

/// Occupancy and routing counters accumulated by a [`BatchedXDropAligner`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Extension tasks processed (two per candidate).
    pub tasks: u64,
    /// Tasks routed to the `i32` fallback kernel (failed the `i16`
    /// exactness precheck, or — defensively — tripped the overflow guard).
    pub fallback_tasks: u64,
    /// Cohort stage runs executed.
    pub cohorts: u64,
    /// Antidiagonal steps summed over all cohorts.
    pub diagonals: u64,
    /// `lane_width` × diagonals: total lane-step capacity.
    pub lane_steps: u64,
    /// Lane-steps that advanced a live pair (the rest were idle lanes).
    pub active_lane_steps: u64,
}

impl BatchStats {
    /// Fraction of lane-steps that carried live work — the occupancy the
    /// staged-refill scheduler exists to keep high.
    pub fn lane_fill(&self) -> f64 {
        if self.lane_steps == 0 {
            0.0
        } else {
            self.active_lane_steps as f64 / self.lane_steps as f64
        }
    }
}

// ---------------------------------------------------------------------------
// i16 eligibility
// ---------------------------------------------------------------------------

/// Whether a pair can run in the `i16` lane arithmetic with provably exact
/// results (see module docs). Ineligible pairs take the `i32` retry path.
pub fn eligible_i16(n: usize, m: usize, sc: &ScoringScheme, x: i32) -> bool {
    n + m <= 32_000
        && sc.match_score <= 1024
        && sc.mismatch >= -1024
        && sc.gap >= -1024
        && x <= 4096
        && (n.min(m) as i64) * sc.match_score as i64 <= 30_000
}

// ---------------------------------------------------------------------------
// Continuations
// ---------------------------------------------------------------------------

/// A paused extension at a stage boundary: everything needed to re-seat the
/// lane in a later cohort. `prev`/`prev2` hold the two rolling antidiagonal
/// arrays over rows `[wlo, wlo + len)`; every row outside that window is
/// exactly `NEG16` wherever a future diagonal may read it.
#[derive(Debug)]
struct Cont {
    task: u32,
    best: i32,
    aext: i32,
    bext: i32,
    cells: u64,
    /// Live row range of diagonal `d` (`lo > hi` = dead).
    l1: (i32, i32),
    /// Live row range of diagonal `d - 1`.
    l2: (i32, i32),
    /// Absolute row of `prev[0]` / `prev2[0]`.
    wlo: i32,
    prev: Vec<i16>,
    prev2: Vec<i16>,
}

impl Cont {
    /// A task that has not started: state "after diagonal 0" — row 0 of
    /// `prev` holds the empty extension's score 0, everything else dead.
    fn fresh(task: u32) -> Cont {
        Cont {
            task,
            best: 0,
            aext: 0,
            bext: 0,
            cells: 0,
            l1: (0, 0),
            l2: (1, 0),
            wlo: 0,
            prev: vec![0],
            prev2: vec![NEG16],
        }
    }
}

/// Outcome of one seated lane after a cohort stage.
enum LaneOutcome {
    Done(u32, Extension),
    Live(Cont),
    /// Defensive overflow-guard trip: rerun the task on the `i32` kernel.
    Retry(u32),
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Reusable inter-sequence batched X-drop engine. One instance owns the
/// striped scratch arrays and an `i32` fallback aligner; reuse it across
/// batches to keep the hot path allocation-free at steady state.
#[derive(Debug)]
pub struct BatchedXDropAligner {
    path: IsaPath,
    stats: BatchStats,
    /// Rolling antidiagonal arrays, lane-major (`(q - row_base) * lanes + l`).
    prev2: Vec<i16>,
    prev: Vec<i16>,
    cur: Vec<i16>,
    /// Striped augmented base codes for the stage's row / column windows.
    astrip: Vec<i16>,
    bstrip: Vec<i16>,
    fallback: PackedXDropAligner,
}

impl Default for BatchedXDropAligner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchedXDropAligner {
    /// Engine on the best ISA path this host supports.
    pub fn new() -> BatchedXDropAligner {
        Self::with_path(IsaPath::detect())
    }

    /// Engine on an explicit ISA path (tests pin all paths against the
    /// scalar reference with this).
    ///
    /// # Panics
    /// Panics if `path` is not available on this host.
    pub fn with_path(path: IsaPath) -> BatchedXDropAligner {
        assert!(path.is_available(), "ISA path {path:?} not available");
        BatchedXDropAligner {
            path,
            stats: BatchStats::default(),
            prev2: Vec::new(),
            prev: Vec::new(),
            cur: Vec::new(),
            astrip: Vec::new(),
            bstrip: Vec::new(),
            fallback: PackedXDropAligner::new(),
        }
    }

    /// The ISA path this engine dispatches to.
    pub fn path(&self) -> IsaPath {
        self.path
    }

    /// Counters accumulated since construction or [`Self::reset_stats`].
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Clears the accumulated counters.
    pub fn reset_stats(&mut self) {
        self.stats = BatchStats::default();
    }

    /// Extends every pair from `(0, 0)` under X-drop threshold `x`,
    /// returning per-pair [`Extension`]s bit-identical to the scalar kernel
    /// in input order. The caller provides one length bucket per call (the
    /// whole slice is scheduled as a single refill pool).
    pub fn extend_batch(
        &mut self,
        pairs: &[(PackedView<'_>, PackedView<'_>)],
        sc: &ScoringScheme,
        x: i32,
    ) -> Vec<Extension> {
        assert!(x >= 0, "X-drop threshold must be non-negative");
        assert!(
            x <= MAX_X,
            "X-drop threshold too large for the batched kernel"
        );
        let mut out = vec![Extension::default(); pairs.len()];
        self.stats.tasks += pairs.len() as u64;

        // Doubling stage grid; d never exceeds n + m ≤ 32 000 for eligible
        // pairs, so the top boundary is unreachable.
        let mut grid: Vec<u32> = vec![0, STAGE0];
        while *grid.last().expect("non-empty") < 65_536 {
            let last = *grid.last().expect("non-empty");
            grid.push(last + last.min(STAGE_CAP));
        }
        let mut pools: Vec<Vec<Cont>> = grid.iter().map(|_| Vec::new()).collect();

        for (i, (a, b)) in pairs.iter().enumerate() {
            if eligible_i16(a.len(), b.len(), sc, x) {
                pools[0].push(Cont::fresh(i as u32));
            } else {
                // Widen-to-i32 retry path: exactness can't be guaranteed in
                // i16, so the pair runs on the packed i32 kernel instead.
                out[i] = self.fallback.extend(*a, *b, sc, x);
                self.stats.fallback_tasks += 1;
            }
        }

        let lanes = self.path.lane_width();
        loop {
            // Prefer a fully seatable pool (highest occupancy); flush a
            // partial pool only when no pool can fill a cohort. Both
            // choices and the FIFO seat order are deterministic, and
            // results are keyed by task id, so scheduling is unobservable.
            let g = match (0..pools.len()).find(|&g| pools[g].len() >= lanes) {
                Some(g) => g,
                None => match (0..pools.len()).find(|&g| !pools[g].is_empty()) {
                    Some(g) => g,
                    None => break,
                },
            };
            let seat_n = pools[g].len().min(lanes);
            let seats: Vec<Cont> = pools[g].drain(..seat_n).collect();
            debug_assert!(g + 1 < grid.len(), "eligible pair outlived the stage grid");
            let (d0, d1) = (grid[g], grid[g + 1]);
            for outcome in self.run_cohort(seats, pairs, sc, x, d0, d1) {
                match outcome {
                    LaneOutcome::Done(task, ext) => out[task as usize] = ext,
                    LaneOutcome::Live(cont) => pools[g + 1].push(cont),
                    LaneOutcome::Retry(task) => {
                        let (a, b) = &pairs[task as usize];
                        out[task as usize] = self.fallback.extend(*a, *b, sc, x);
                        self.stats.fallback_tasks += 1;
                    }
                }
            }
        }
        out
    }

    /// Runs one cohort from diagonal `d0` (exclusive) to `d1` (inclusive).
    fn run_cohort(
        &mut self,
        seats: Vec<Cont>,
        pairs: &[(PackedView<'_>, PackedView<'_>)],
        sc: &ScoringScheme,
        x: i32,
        d0: u32,
        d1: u32,
    ) -> Vec<LaneOutcome> {
        let lw = self.path.lane_width();
        let nl = seats.len();
        debug_assert!(0 < nl && nl <= lw);
        self.stats.cohorts += 1;

        // Per-lane geometry and DP state. Band bookkeeping lives in
        // band-relative q-space (`q = row - off`) as flat `i16` lane arrays
        // so the per-diagonal evolution below is branch-free straight-line
        // code over `[i16; MAX_LANES]` — exactly the shape LLVM
        // auto-vectorizes. Empty diagonal ranges use the canonical sentinel
        // `(DEAD_LO, DEAD_HI)`: with saturating adds, the four-case band
        // merge of the scalar kernel collapses to a maskless min/max
        // (an empty range can never win either bound).
        let mut off = [0i32; MAX_LANES];
        let mut l1lo = [DEAD_LO; MAX_LANES];
        let mut l1hi = [DEAD_HI; MAX_LANES];
        let mut l2lo = [DEAD_LO; MAX_LANES];
        let mut l2hi = [DEAD_HI; MAX_LANES];
        // Row-window counters: `vdo = d - off` and `vdm = d - m` advance by
        // one per diagonal; `nq = n - off` and `noq = -off` are stage
        // constants. All stay within i16 while any lane is alive (alive
        // lanes force `d ≤ n + m ≤ 32 000` by the eligibility precheck, and
        // the loop breaks one diagonal after the last death).
        let mut vdo = [0i16; MAX_LANES];
        let mut vdm = [0i16; MAX_LANES];
        let mut nq = [0i16; MAX_LANES];
        let mut noq = [0i16; MAX_LANES];
        // Alive mask (0 = dead, -1 = alive) and per-stage cell tally
        // (`u32` suffices: width ≤ 32 001 over ≤ 32 768 diagonals).
        let mut alivem = [0i16; MAX_LANES];
        let mut widsum = [0u32; MAX_LANES];
        let mut cellsv = [0u64; MAX_LANES];
        // Lane-vector state (i16, loaded into registers by the sweep).
        let mut bestv = [0i16; MAX_LANES];
        let mut aextv = [0i16; MAX_LANES];
        let mut bextv = [0i16; MAX_LANES];
        let mut cutv = [NEG16; MAX_LANES];
        let mut voff = [0i16; MAX_LANES];

        let kk = (d1 - d0) as i32;
        let skew = kk >> 1;
        let mut q_top = 0i32;
        let mut u_top = 0i32;
        for (l, c) in seats.iter().enumerate() {
            let (va, vb) = &pairs[c.task as usize];
            let n = va.len() as i32;
            let m = vb.len() as i32;
            let mut lo = i32::MAX;
            let mut hi = i32::MIN;
            for r in [c.l1, c.l2] {
                if r.0 <= r.1 {
                    lo = lo.min(r.0);
                    hi = hi.max(r.1);
                }
            }
            debug_assert!(lo <= hi, "seated continuation has no live diagonal");
            off[l] = lo;
            if c.l1.0 <= c.l1.1 {
                l1lo[l] = (c.l1.0 - lo) as i16;
                l1hi[l] = (c.l1.1 - lo) as i16;
            }
            if c.l2.0 <= c.l2.1 {
                l2lo[l] = (c.l2.0 - lo) as i16;
                l2hi[l] = (c.l2.1 - lo) as i16;
            }
            vdo[l] = (d0 as i32 - lo) as i16;
            vdm[l] = (d0 as i32 - m) as i16;
            nq[l] = (n - lo) as i16;
            noq[l] = (-lo) as i16;
            alivem[l] = -1;
            cellsv[l] = c.cells;
            bestv[l] = c.best as i16;
            aextv[l] = c.aext as i16;
            bextv[l] = c.bext as i16;
            cutv[l] = c.best as i16 - x as i16;
            voff[l] = lo as i16;
            // Band ceilings: cand_hi ≤ min(start_hi + steps, n); in skewed
            // storage the ceiling tightens to start_hi + ceil(steps / 2)
            // (the band gains at most one row per diagonal while the
            // storage window descends one row every other diagonal).
            q_top = q_top.max((hi + kk).min(n) - lo);
            u_top = u_top.max((hi + ((kk + 1) >> 1)).min(n) - lo);
        }

        // Row window in skewed storage coordinates `u = q - ((d - d0) >> 1)`:
        // writes hit `[-2 - skew, u_top + 2]`, and `prev`/`prev2` reads lag
        // the current shift by at most one row on each side, so rows
        // `[row_base, u_top + 4]` cover every access with margin. The stripe
        // windows below stay in plain q-space (the stripes are per-stage
        // constants the sweep indexes by `q` and `d - q` directly).
        let qhi = q_top + 2;
        let row_base = -skew - 5;
        let rows = (u_top + 4 - row_base + 1) as usize;
        let need = rows * lw;
        for arr in [&mut self.prev2, &mut self.prev, &mut self.cur] {
            arr.clear();
            arr.resize(need, NEG16);
        }
        let idx = |q: i32| -> usize { ((q - row_base) as usize) * lw };

        // Restore continuation rows (fresh tasks restore `prev[0] = 0`).
        for (l, c) in seats.iter().enumerate() {
            for (i, (&pv, &pv2)) in c.prev.iter().zip(&c.prev2).enumerate() {
                let q = c.wlo + i as i32 - off[l];
                self.prev[idx(q) + l] = pv;
                self.prev2[idx(q) + l] = pv2;
            }
        }

        // Striped augmented codes. Cell at band-relative row q of lane l
        // compares a[q + off - 1] against b[(d - q) - off - 1]; the a side
        // is indexed by q directly and the b side by t = d - q, so both
        // stripes are contiguous lane-major loads in the sweep.
        let a_base = -2i32;
        let alen = (qhi - a_base + 1) as usize;
        let b_base = d0 as i32 + 1 - qhi;
        let blen = (d1 as i32 - a_base - b_base + 1) as usize;
        self.astrip.clear();
        self.astrip.resize(alen * lw, A_AMBIG);
        self.bstrip.clear();
        self.bstrip.resize(blen * lw, B_AMBIG);
        for (l, c) in seats.iter().enumerate() {
            let (va, vb) = &pairs[c.task as usize];
            stripe_fill(
                &mut self.astrip,
                lw,
                l,
                va,
                a_base,
                qhi,
                off[l] - 1,
                A_AMBIG,
            );
            let t_hi = d1 as i32 - a_base;
            stripe_fill(
                &mut self.bstrip,
                lw,
                l,
                vb,
                b_base,
                t_hi,
                -off[l] - 1,
                B_AMBIG,
            );
        }

        let mut outcomes: Vec<LaneOutcome> = Vec::with_capacity(nl);
        let ms = sc.match_score as i16;
        let dl = (sc.match_score - sc.mismatch) as i16;
        let gap = sc.gap as i16;
        let x16 = x as i16;

        for d in (d0 as i32 + 1)..=(d1 as i32) {
            // Branch-free band bookkeeping: the scalar kernel's band
            // evolution, evaluated lane-parallel over the canonical-empty
            // q-space ranges. Dead lanes keep evolving — emptiness is
            // sticky under this arithmetic (band_lo never decreases,
            // band_hi grows by at most one, and the row window moves
            // monotonically), so a dead lane can never resurrect and its
            // width contribution stays zero.
            let mut lov = [DEAD_LO; MAX_LANES];
            let mut hiv = [DEAD_HI; MAX_LANES];
            let mut newlov = [DEAD_LO; MAX_LANES];
            let mut newhiv = [DEAD_HI; MAX_LANES];
            let mut diedm = [0i16; MAX_LANES];
            for l in 0..MAX_LANES {
                vdo[l] += 1;
                vdm[l] += 1;
                let band_lo = l1lo[l].min(l2lo[l].saturating_add(1));
                let band_hi = l1hi[l].max(l2hi[l]).saturating_add(1);
                let rlo = vdm[l].max(0) + noq[l];
                let rhi = vdo[l].min(nq[l]);
                let clo = band_lo.max(rlo);
                let chi = band_hi.min(rhi);
                let nowm = -((clo <= chi) as i16);
                let livem = alivem[l] & nowm;
                diedm[l] = alivem[l] & !nowm;
                alivem[l] = livem;
                lov[l] = (clo & livem) | (DEAD_LO & !livem);
                hiv[l] = (chi & livem) | (DEAD_HI & !livem);
                // Width in i32 (chi - clo underflows i16 when dead), masked
                // to zero for dead lanes.
                widsum[l] = widsum[l]
                    .wrapping_add((chi as i32 - clo as i32 + 1) as u32 & livem as i32 as u32);
            }
            let mut ulo = i32::MAX;
            let mut uhi = i32::MIN;
            let mut nact = 0u64;
            let mut anydied = 0i16;
            for l in 0..MAX_LANES {
                ulo = ulo.min(lov[l] as i32);
                uhi = uhi.max(hiv[l] as i32);
                nact += (alivem[l] & 1) as u64;
                anydied |= diedm[l];
            }
            if anydied != 0 {
                // Rare slow path: one Done outcome per newly dead lane
                // (~once per task across the whole batch).
                for l in 0..nl {
                    if diedm[l] != 0 {
                        outcomes.push(LaneOutcome::Done(
                            seats[l].task,
                            lane_extension(
                                bestv[l],
                                aextv[l],
                                bextv[l],
                                cellsv[l] + widsum[l] as u64,
                            ),
                        ));
                    }
                }
            }
            if nact == 0 {
                break;
            }
            self.stats.diagonals += 1;
            self.stats.lane_steps += lw as u64;
            self.stats.active_lane_steps += nact;

            // Cumulative skew shifts of the three rolling diagonals (the
            // first diagonal of the stage reads the restored rows, which
            // were parked unshifted).
            let s = d - d0 as i32;
            let sweep = SweepArgs {
                lanes: lw,
                q0: ulo - 2,
                q1: uhi + 2,
                d,
                cb: row_base + (s >> 1),
                pb: row_base + ((s - 1) >> 1),
                p2b: row_base + ((s - 2).max(0) >> 1),
                a_base,
                b_base,
                ms,
                dl,
                gap,
                x: x16,
            };
            match self.path {
                IsaPath::Portable => sweep_diag_portable(
                    &sweep,
                    &self.prev2,
                    &self.prev,
                    &mut self.cur,
                    &self.astrip,
                    &self.bstrip,
                    &lov,
                    &hiv,
                    &vdo,
                    &voff,
                    &mut bestv,
                    &mut aextv,
                    &mut bextv,
                    &mut cutv,
                    &mut newlov,
                    &mut newhiv,
                ),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `with_path` verified the feature is available on
                // this host; all array windows are sized by `run_cohort` so
                // every lane-major load/store in [q0 - 1, q1] is in bounds.
                IsaPath::Avx2 => unsafe {
                    simd::sweep_diag_avx2(
                        &sweep,
                        &self.prev2,
                        &self.prev,
                        &mut self.cur,
                        &self.astrip,
                        &self.bstrip,
                        &lov,
                        &hiv,
                        &vdo,
                        &voff,
                        &mut bestv,
                        &mut aextv,
                        &mut bextv,
                        &mut cutv,
                        &mut newlov,
                        &mut newhiv,
                    )
                },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above — AVX-512BW was detected, windows sized.
                IsaPath::Avx512 => unsafe {
                    simd::sweep_diag_avx512(
                        &sweep,
                        &self.prev2,
                        &self.prev,
                        &mut self.cur,
                        &self.astrip,
                        &self.bstrip,
                        &lov,
                        &hiv,
                        &vdo,
                        &voff,
                        &mut bestv,
                        &mut aextv,
                        &mut bextv,
                        &mut cutv,
                        &mut newlov,
                        &mut newhiv,
                    )
                },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!("vector paths unavailable off x86_64"),
            }

            for l in 0..MAX_LANES {
                l2lo[l] = l1lo[l];
                l2hi[l] = l1hi[l];
                let live = -((newlov[l] <= newhiv[l]) as i16);
                l1lo[l] = (newlov[l] & live) | (DEAD_LO & !live);
                l1hi[l] = (newhiv[l] & live) | (DEAD_HI & !live);
            }
            std::mem::swap(&mut self.prev2, &mut self.prev);
            std::mem::swap(&mut self.prev, &mut self.cur);
        }

        // Stage boundary: park survivors as continuations (q-space bands
        // convert back to absolute rows; empties to the scalar `(1, 0)`).
        for l in 0..nl {
            if alivem[l] == 0 {
                continue;
            }
            let cells = cellsv[l] + widsum[l] as u64;
            if bestv[l] > 30_000 {
                // Defensive only: the eligibility precheck bounds best by
                // min(n, m)·match ≤ 30 000, so this cannot fire — but if
                // the proof is ever wrong, rerun on the exact i32 kernel
                // rather than commit a wrong score.
                outcomes.push(LaneOutcome::Retry(seats[l].task));
                continue;
            }
            let l1 = if l1lo[l] <= l1hi[l] {
                (l1lo[l] as i32 + off[l], l1hi[l] as i32 + off[l])
            } else {
                (1, 0)
            };
            let l2 = if l2lo[l] <= l2hi[l] {
                (l2lo[l] as i32 + off[l], l2hi[l] as i32 + off[l])
            } else {
                (1, 0)
            };
            let mut lo = i32::MAX;
            let mut hi = i32::MIN;
            for r in [l1, l2] {
                if r.0 <= r.1 {
                    lo = lo.min(r.0);
                    hi = hi.max(r.1);
                }
            }
            if lo > hi {
                // Both diagonals died on the last step of the stage: the
                // next bookkeeping step would terminate it — finish now.
                outcomes.push(LaneOutcome::Done(
                    seats[l].task,
                    lane_extension(bestv[l], aextv[l], bextv[l], cells),
                ));
                continue;
            }
            let (wlo, whi) = (lo - 2, hi + 2);
            let mut pv = Vec::with_capacity((whi - wlo + 1) as usize);
            let mut pv2 = Vec::with_capacity((whi - wlo + 1) as usize);
            // An alive lane means the stage ran to `d1`, so `prev` holds
            // diagonal `d1` at shift `kk >> 1` and `prev2` holds `d1 - 1`
            // at shift `(kk - 1) >> 1`. Parked rows are unshifted.
            for r in wlo..=whi {
                let q = r - off[l];
                pv.push(self.prev[idx(q - (kk >> 1)) + l]);
                pv2.push(self.prev2[idx(q - ((kk - 1) >> 1)) + l]);
            }
            outcomes.push(LaneOutcome::Live(Cont {
                task: seats[l].task,
                best: bestv[l] as i32,
                aext: aextv[l] as i32,
                bext: bextv[l] as i32,
                cells,
                l1,
                l2,
                wlo,
                prev: pv,
                prev2: pv2,
            }));
        }
        outcomes
    }
}

/// Builds the final [`Extension`] from a lane's i16 state.
fn lane_extension(best: i16, aext: i16, bext: i16, cells: u64) -> Extension {
    debug_assert!(best >= 0 && aext >= 0 && bext >= 0);
    Extension {
        score: best as i32,
        a_ext: aext as usize,
        b_ext: bext as usize,
        cells,
    }
}

/// Fills lane `l` of a stripe: position `p` (from `p_base` to `p_hi`) holds
/// the augmented code of `view[p + shift]`, with out-of-range and ambiguous
/// bases as `ambig`.
#[allow(clippy::too_many_arguments)]
fn stripe_fill(
    stripe: &mut [i16],
    lanes: usize,
    l: usize,
    view: &PackedView<'_>,
    p_base: i32,
    p_hi: i32,
    shift: i32,
    ambig: i16,
) {
    let mut p = p_base;
    while p <= p_hi {
        let (codes, nmask) = view.window32((p + shift) as isize);
        let chunk = ((p_hi - p + 1) as usize).min(32);
        for (t, slot) in stripe
            .chunks_exact_mut(lanes)
            .skip((p - p_base) as usize)
            .take(chunk)
            .enumerate()
        {
            let sh = 2 * t;
            slot[l] = if (nmask >> sh) & 3 != 0 {
                ambig
            } else {
                ((codes >> sh) & 3) as i16
            };
        }
        p += 32;
    }
}

/// Shared scalar parameters of one antidiagonal sweep.
///
/// DP rows live in *skewed* storage coordinates `u = q - ((d - d0) >> 1)`:
/// the whole cohort's window shifts down by one row every other diagonal,
/// cancelling the common-mode band drift (a band tracking its pair's main
/// diagonal advances ~0.5 rows per antidiagonal). The shift is uniform
/// across lanes, so it costs nothing in the sweep — each of the three
/// rolling arrays just gets its own base (`cb`/`pb`/`p2b`, the bases of
/// the current, previous, and twice-previous diagonals' storage).
struct SweepArgs {
    lanes: usize,
    /// Band-relative sweep range `[q0, q1]` (the union band ± guard slots).
    q0: i32,
    q1: i32,
    d: i32,
    /// Storage base of `cur`: row `q` of diagonal `d` lives at
    /// `(q - cb) * lanes`.
    cb: i32,
    /// Storage base of `prev` (diagonal `d - 1`).
    pb: i32,
    /// Storage base of `prev2` (diagonal `d - 2`).
    p2b: i32,
    a_base: i32,
    b_base: i32,
    ms: i16,
    dl: i16,
    gap: i16,
    x: i16,
}

/// Portable scalar-per-lane sweep — the reference semantics the vector
/// paths replicate operation-for-operation (saturating adds included).
#[allow(clippy::too_many_arguments)]
fn sweep_diag_portable(
    a: &SweepArgs,
    prev2: &[i16],
    prev: &[i16],
    cur: &mut [i16],
    astrip: &[i16],
    bstrip: &[i16],
    lov: &[i16; MAX_LANES],
    hiv: &[i16; MAX_LANES],
    vdo: &[i16; MAX_LANES],
    voff: &[i16; MAX_LANES],
    bestv: &mut [i16; MAX_LANES],
    aextv: &mut [i16; MAX_LANES],
    bextv: &mut [i16; MAX_LANES],
    cutv: &mut [i16; MAX_LANES],
    newlov: &mut [i16; MAX_LANES],
    newhiv: &mut [i16; MAX_LANES],
) {
    let lw = a.lanes;
    for q in a.q0..=a.q1 {
        let qs = q as i16;
        let ci = ((q - a.cb) as usize) * lw;
        let pi = ((q - a.pb) as usize) * lw;
        let p2i = ((q - a.p2b) as usize) * lw;
        let ai = ((q - a.a_base) as usize) * lw;
        let bi = ((a.d - q - a.b_base) as usize) * lw;
        for l in 0..lw {
            let sub = if astrip[ai + l] == bstrip[bi + l] {
                a.ms
            } else {
                a.ms - a.dl
            };
            let h = prev2[p2i - lw + l]
                .saturating_add(sub)
                .max(prev[pi - lw + l].saturating_add(a.gap))
                .max(prev[pi + l].saturating_add(a.gap));
            let hp = if h < cutv[l] { NEG16 } else { h };
            let inb = qs >= lov[l] && qs <= hiv[l];
            let touch = qs >= lov[l] - 2 && qs <= hiv[l] + 2;
            if inb {
                cur[ci + l] = hp;
                if hp > bestv[l] {
                    bestv[l] = hp;
                    aextv[l] = qs + voff[l];
                    bextv[l] = vdo[l] - qs;
                    cutv[l] = hp.saturating_sub(a.x);
                }
                if hp > NEG16 {
                    newlov[l] = newlov[l].min(qs);
                    newhiv[l] = qs;
                }
            } else if touch {
                cur[ci + l] = NEG16; // guard sentinel
            }
        }
    }
}

/// AVX2 / AVX-512BW sweeps. Each computes exactly the portable sweep's
/// values in the same per-lane order (ascending `q` within the diagonal),
/// so the three paths are bit-identical by construction; the
/// `interseq_equivalence` proptests pin them against each other and
/// against the scalar kernel.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{SweepArgs, MAX_LANES, NEG16};
    use std::arch::x86_64::*;

    /// AVX2 sweep: 16 × i16 lanes.
    ///
    /// # Safety
    /// Requires AVX2. All slices must be lane-major with stride
    /// `args.lanes == 16`, rows covering `[q0 - 1, q1]`, the a-stripe
    /// covering `[q0, q1]`, and the b-stripe covering `[d - q1, d - q0]`
    /// (the windows `run_cohort` sizes).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn sweep_diag_avx2(
        a: &SweepArgs,
        prev2: &[i16],
        prev: &[i16],
        cur: &mut [i16],
        astrip: &[i16],
        bstrip: &[i16],
        lov: &[i16; MAX_LANES],
        hiv: &[i16; MAX_LANES],
        vdo: &[i16; MAX_LANES],
        voff: &[i16; MAX_LANES],
        bestv: &mut [i16; MAX_LANES],
        aextv: &mut [i16; MAX_LANES],
        bextv: &mut [i16; MAX_LANES],
        cutv: &mut [i16; MAX_LANES],
        newlov: &mut [i16; MAX_LANES],
        newhiv: &mut [i16; MAX_LANES],
    ) {
        const LW: usize = 16;
        debug_assert_eq!(a.lanes, LW);
        let ld = |p: *const i16| _mm256_loadu_si256(p as *const __m256i);
        let one = _mm256_set1_epi16(1);
        let three = _mm256_set1_epi16(3);
        let vneg = _mm256_set1_epi16(NEG16);
        let vmm = _mm256_set1_epi16(a.ms - a.dl);
        let vdl = _mm256_set1_epi16(a.dl);
        let vgap = _mm256_set1_epi16(a.gap);
        let vx = _mm256_set1_epi16(a.x);
        let lovv = ld(lov.as_ptr());
        let hivv = ld(hiv.as_ptr());
        let lovm1 = _mm256_sub_epi16(lovv, one);
        let lovm3 = _mm256_sub_epi16(lovv, three);
        let hivp1 = _mm256_add_epi16(hivv, one);
        let hivp3 = _mm256_add_epi16(hivv, three);
        let vdov = ld(vdo.as_ptr());
        let voffv = ld(voff.as_ptr());
        let mut vbest = ld(bestv.as_ptr());
        let mut vaext = ld(aextv.as_ptr());
        let mut vbext = ld(bextv.as_ptr());
        let mut vcut = ld(cutv.as_ptr());
        let mut vnlo = ld(newlov.as_ptr());
        let mut vnhi = ld(newhiv.as_ptr());

        for q in a.q0..=a.q1 {
            let vq = _mm256_set1_epi16(q as i16);
            let ci = ((q - a.cb) as usize) * LW;
            let pi = ((q - a.pb) as usize) * LW;
            let p2i = ((q - a.p2b) as usize) * LW;
            let ai = ((q - a.a_base) as usize) * LW;
            let bi = ((a.d - q - a.b_base) as usize) * LW;
            let eq = _mm256_cmpeq_epi16(ld(astrip.as_ptr().add(ai)), ld(bstrip.as_ptr().add(bi)));
            let sub = _mm256_add_epi16(vmm, _mm256_and_si256(eq, vdl));
            let h = _mm256_max_epi16(
                _mm256_adds_epi16(ld(prev2.as_ptr().add(p2i - LW)), sub),
                _mm256_max_epi16(
                    _mm256_adds_epi16(ld(prev.as_ptr().add(pi - LW)), vgap),
                    _mm256_adds_epi16(ld(prev.as_ptr().add(pi)), vgap),
                ),
            );
            let hp = _mm256_blendv_epi8(h, vneg, _mm256_cmpgt_epi16(vcut, h));
            let inb =
                _mm256_and_si256(_mm256_cmpgt_epi16(vq, lovm1), _mm256_cmpgt_epi16(hivp1, vq));
            let touch =
                _mm256_and_si256(_mm256_cmpgt_epi16(vq, lovm3), _mm256_cmpgt_epi16(hivp3, vq));
            let old = ld(cur.as_ptr().add(ci));
            let st = _mm256_blendv_epi8(_mm256_blendv_epi8(old, vneg, touch), hp, inb);
            _mm256_storeu_si256(cur.as_mut_ptr().add(ci) as *mut __m256i, st);
            let bm = _mm256_and_si256(_mm256_cmpgt_epi16(hp, vbest), inb);
            vbest = _mm256_blendv_epi8(vbest, hp, bm);
            vaext = _mm256_blendv_epi8(vaext, _mm256_add_epi16(vq, voffv), bm);
            vbext = _mm256_blendv_epi8(vbext, _mm256_sub_epi16(vdov, vq), bm);
            vcut = _mm256_blendv_epi8(vcut, _mm256_subs_epi16(hp, vx), bm);
            let lv = _mm256_and_si256(_mm256_cmpgt_epi16(hp, vneg), inb);
            vnlo = _mm256_blendv_epi8(vnlo, _mm256_min_epi16(vnlo, vq), lv);
            vnhi = _mm256_blendv_epi8(vnhi, vq, lv);
        }
        _mm256_storeu_si256(bestv.as_mut_ptr() as *mut __m256i, vbest);
        _mm256_storeu_si256(aextv.as_mut_ptr() as *mut __m256i, vaext);
        _mm256_storeu_si256(bextv.as_mut_ptr() as *mut __m256i, vbext);
        _mm256_storeu_si256(cutv.as_mut_ptr() as *mut __m256i, vcut);
        _mm256_storeu_si256(newlov.as_mut_ptr() as *mut __m256i, vnlo);
        _mm256_storeu_si256(newhiv.as_mut_ptr() as *mut __m256i, vnhi);
    }

    /// AVX-512BW sweep: 32 × i16 lanes with mask-register predication.
    ///
    /// # Safety
    /// Requires AVX-512BW; array-window requirements as in
    /// [`sweep_diag_avx2`], with stride `args.lanes == 32`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn sweep_diag_avx512(
        a: &SweepArgs,
        prev2: &[i16],
        prev: &[i16],
        cur: &mut [i16],
        astrip: &[i16],
        bstrip: &[i16],
        lov: &[i16; MAX_LANES],
        hiv: &[i16; MAX_LANES],
        vdo: &[i16; MAX_LANES],
        voff: &[i16; MAX_LANES],
        bestv: &mut [i16; MAX_LANES],
        aextv: &mut [i16; MAX_LANES],
        bextv: &mut [i16; MAX_LANES],
        cutv: &mut [i16; MAX_LANES],
        newlov: &mut [i16; MAX_LANES],
        newhiv: &mut [i16; MAX_LANES],
    ) {
        const LW: usize = 32;
        debug_assert_eq!(a.lanes, LW);
        let ld = |p: *const i16| _mm512_loadu_si512(p as *const __m512i);
        let one = _mm512_set1_epi16(1);
        let three = _mm512_set1_epi16(3);
        let vneg = _mm512_set1_epi16(NEG16);
        let vmm = _mm512_set1_epi16(a.ms - a.dl);
        let vdl = _mm512_set1_epi16(a.dl);
        let vgap = _mm512_set1_epi16(a.gap);
        let vx = _mm512_set1_epi16(a.x);
        let lovv = ld(lov.as_ptr());
        let hivv = ld(hiv.as_ptr());
        let lovm1 = _mm512_sub_epi16(lovv, one);
        let lovm3 = _mm512_sub_epi16(lovv, three);
        let hivp1 = _mm512_add_epi16(hivv, one);
        let hivp3 = _mm512_add_epi16(hivv, three);
        let vdov = ld(vdo.as_ptr());
        let voffv = ld(voff.as_ptr());
        let mut vbest = ld(bestv.as_ptr());
        let mut vaext = ld(aextv.as_ptr());
        let mut vbext = ld(bextv.as_ptr());
        let mut vcut = ld(cutv.as_ptr());
        let mut vnlo = ld(newlov.as_ptr());
        let mut vnhi = ld(newhiv.as_ptr());

        for q in a.q0..=a.q1 {
            let vq = _mm512_set1_epi16(q as i16);
            let ci = ((q - a.cb) as usize) * LW;
            let pi = ((q - a.pb) as usize) * LW;
            let p2i = ((q - a.p2b) as usize) * LW;
            let ai = ((q - a.a_base) as usize) * LW;
            let bi = ((a.d - q - a.b_base) as usize) * LW;
            let eq: __mmask32 =
                _mm512_cmpeq_epi16_mask(ld(astrip.as_ptr().add(ai)), ld(bstrip.as_ptr().add(bi)));
            let sub = _mm512_mask_add_epi16(vmm, eq, vmm, vdl);
            let h = _mm512_max_epi16(
                _mm512_adds_epi16(ld(prev2.as_ptr().add(p2i - LW)), sub),
                _mm512_max_epi16(
                    _mm512_adds_epi16(ld(prev.as_ptr().add(pi - LW)), vgap),
                    _mm512_adds_epi16(ld(prev.as_ptr().add(pi)), vgap),
                ),
            );
            let hp = _mm512_mask_blend_epi16(_mm512_cmpgt_epi16_mask(vcut, h), h, vneg);
            let inb: __mmask32 =
                _mm512_cmpgt_epi16_mask(vq, lovm1) & _mm512_cmpgt_epi16_mask(hivp1, vq);
            let touch: __mmask32 =
                _mm512_cmpgt_epi16_mask(vq, lovm3) & _mm512_cmpgt_epi16_mask(hivp3, vq);
            let old = ld(cur.as_ptr().add(ci));
            let st = _mm512_mask_blend_epi16(inb, _mm512_mask_blend_epi16(touch, old, vneg), hp);
            _mm512_storeu_si512(cur.as_mut_ptr().add(ci) as *mut __m512i, st);
            let bm: __mmask32 = _mm512_cmpgt_epi16_mask(hp, vbest) & inb;
            vbest = _mm512_mask_blend_epi16(bm, vbest, hp);
            vaext = _mm512_mask_blend_epi16(bm, vaext, _mm512_add_epi16(vq, voffv));
            vbext = _mm512_mask_blend_epi16(bm, vbext, _mm512_sub_epi16(vdov, vq));
            vcut = _mm512_mask_blend_epi16(bm, vcut, _mm512_subs_epi16(hp, vx));
            let lv: __mmask32 = _mm512_cmpgt_epi16_mask(hp, vneg) & inb;
            vnlo = _mm512_mask_min_epi16(vnlo, lv, vnlo, vq);
            vnhi = _mm512_mask_blend_epi16(lv, vnhi, vq);
        }
        _mm512_storeu_si512(bestv.as_mut_ptr() as *mut __m512i, vbest);
        _mm512_storeu_si512(aextv.as_mut_ptr() as *mut __m512i, vaext);
        _mm512_storeu_si512(bextv.as_mut_ptr() as *mut __m512i, vbext);
        _mm512_storeu_si512(cutv.as_mut_ptr() as *mut __m512i, vcut);
        _mm512_storeu_si512(newlov.as_mut_ptr() as *mut __m512i, vnlo);
        _mm512_storeu_si512(newhiv.as_mut_ptr() as *mut __m512i, vnhi);
    }
}

// ---------------------------------------------------------------------------
// Candidate-batch driver (KernelImpl::Batched)
// ---------------------------------------------------------------------------

/// Aligns a candidate batch with the batched engine: builds the
/// [`BatchPlan`], then per bucket expands each candidate into its two
/// extension tasks (strand-normalised views, exactly as the packed
/// per-candidate path slices them), runs the engine, and assembles records.
/// Records come back in input order; the per-record values are bit-identical
/// to the scalar and packed kernels.
pub fn align_candidates_batched(
    reads: &ReadSet,
    tasks: &[Candidate],
    params: &AlignParams,
) -> (Vec<AlignmentRecord>, BatchStats) {
    let mut engine = BatchedXDropAligner::new();
    let records = align_candidates_batched_with(&mut engine, reads, tasks, params);
    (records, engine.stats())
}

/// [`align_candidates_batched`] with a caller-owned engine (reused scratch,
/// explicit ISA path, accumulated stats).
pub fn align_candidates_batched_with(
    engine: &mut BatchedXDropAligner,
    reads: &ReadSet,
    tasks: &[Candidate],
    params: &AlignParams,
) -> Vec<AlignmentRecord> {
    let plan = BatchPlan::build(reads, tasks, engine.path().lane_width());
    let mut slots: Vec<Option<AlignmentRecord>> = vec![None; tasks.len()];
    for bucket in &plan.buckets {
        let ids = &plan.order[bucket.first as usize..(bucket.first + bucket.count) as usize];
        let geoms: Vec<_> = ids
            .iter()
            .map(|&t| {
                let cand = &tasks[t as usize];
                packed_candidate_geometry(
                    reads.packed_read(cand.a as usize),
                    reads.packed_read(cand.b as usize),
                    cand,
                    params.k,
                    &params.scoring,
                )
            })
            .collect();
        let mut pairs = Vec::with_capacity(2 * geoms.len());
        for g in &geoms {
            pairs.push((
                g.a.suffix(g.a_pos + params.k),
                g.b_norm.suffix(g.b_pos + params.k),
            ));
            pairs.push((g.a.rev_prefix(g.a_pos), g.b_norm.rev_prefix(g.b_pos)));
        }
        let exts = engine.extend_batch(&pairs, &params.scoring, params.x);
        for (i, (&t, g)) in ids.iter().zip(&geoms).enumerate() {
            let (right, left) = (&exts[2 * i], &exts[2 * i + 1]);
            slots[t as usize] = Some(assemble_record(
                &tasks[t as usize],
                g.seed_score,
                left,
                right,
                g.a_pos,
                g.b_pos,
                params.k,
                g.a.len(),
                g.b_norm.len(),
                &params.criteria,
            ));
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every candidate scheduled exactly once"))
        .collect()
}

/// Batch driver used by [`crate::batch::align_batch`] for
/// [`crate::KernelImpl::Batched`]: one engine, bucketed schedule, records
/// in input order.
pub(crate) fn align_batch_batched(
    reads: &ReadSet,
    tasks: &[Candidate],
    params: &AlignParams,
) -> BatchOutcome {
    // gnb-lint: allow(wall-clock, reason = "measures real alignment wall time; deterministic outputs are the records, not the timing")
    let start = std::time::Instant::now();
    let (records, _) = align_candidates_batched(reads, tasks, params);
    let elapsed = start.elapsed();
    let total_cells = records.iter().map(|r| r.cells).sum();
    BatchOutcome {
        records,
        total_cells,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xdrop::xdrop_extend;
    use gnb_genome::PackedSeq;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;

    fn check_batch(pairs_bytes: &[(&[u8], &[u8])], x: i32) {
        let packed: Vec<(PackedSeq, PackedSeq)> = pairs_bytes
            .iter()
            .map(|(a, b)| (PackedSeq::from_bytes(a), PackedSeq::from_bytes(b)))
            .collect();
        let views: Vec<(PackedView<'_>, PackedView<'_>)> = packed
            .iter()
            .map(|(a, b)| {
                (
                    PackedView::full(a.as_slice()),
                    PackedView::full(b.as_slice()),
                )
            })
            .collect();
        let want: Vec<Extension> = pairs_bytes
            .iter()
            .map(|(a, b)| xdrop_extend(a, b, &SC, x))
            .collect();
        for path in [IsaPath::Portable, IsaPath::Avx2, IsaPath::Avx512] {
            if !path.is_available() {
                continue;
            }
            let mut eng = BatchedXDropAligner::with_path(path);
            let got = eng.extend_batch(&views, &SC, x);
            assert_eq!(got, want, "path {path:?} diverges at x={x}");
        }
    }

    #[test]
    fn matches_scalar_on_basics() {
        let pairs: Vec<(&[u8], &[u8])> = vec![
            (b"ACGTACGT", b"ACGTACGT"),
            (b"ACGTACGTAC", b"ACGTTCGTAC"),
            (b"ACGTACGTACGT", b"ACGTACTACGT"),
            (b"ACGGTTTTT", b"ACGGAAAAA"),
            (b"ACGTACGTACGTACGT", b"ACGT"),
            (b"", b""),
            (b"ACGT", b""),
            (b"", b"ACGT"),
            (b"ACGTNACGT", b"ACGTNACGT"),
            (b"NNNN", b"NNNN"),
        ];
        for x in [0, 5, 25, 100] {
            check_batch(&pairs, x);
        }
    }

    #[test]
    fn matches_scalar_on_long_noisy_batch() {
        let mk = |salt: usize, n: usize| -> Vec<u8> {
            (0..n)
                .map(|i| b"ACGT"[(i * 7 + salt * 13 + i / 5) % 4])
                .collect()
        };
        let mut owned: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for s in 0..9 {
            let a = mk(s, 500 + 400 * s);
            let mut b = a.clone();
            for i in (s..b.len()).step_by(17 + s) {
                b[i] = b"ACGT"[(b[i] as usize + 1) % 4];
            }
            owned.push((a, b));
        }
        // A couple of false-positive pairs that die early (refill path).
        owned.push((mk(1, 800), mk(7, 900)));
        owned.push((mk(2, 2000), mk(8, 2000)));
        let pairs: Vec<(&[u8], &[u8])> = owned
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        for x in [1, 25, 400] {
            check_batch(&pairs, x);
        }
    }

    #[test]
    fn ineligible_pairs_take_fallback() {
        // A scheme too hot for i16 routes through the i32 retry path and
        // still matches the scalar kernel.
        let sc = ScoringScheme::new(2000, -2500, -2500);
        let a: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
        let b = a.clone();
        let pa = PackedSeq::from_bytes(&a);
        let pb = PackedSeq::from_bytes(&b);
        let mut eng = BatchedXDropAligner::new();
        let got = eng.extend_batch(
            &[(
                PackedView::full(pa.as_slice()),
                PackedView::full(pb.as_slice()),
            )],
            &sc,
            50,
        );
        assert_eq!(got[0], xdrop_extend(&a, &b, &sc, 50));
        assert_eq!(eng.stats().fallback_tasks, 1);
    }

    #[test]
    fn length_buckets_bound_spread() {
        let sums = vec![4000, 3900, 2100, 2000, 1999, 800, 10, 10, 9];
        let lb = LengthBuckets::build(&sums);
        let mut covered = 0u32;
        for b in &lb.buckets {
            assert!(2 * b.min_len_sum >= b.max_len_sum, "spread > 2x: {b:?}");
            assert_eq!(b.first, covered);
            covered += b.count;
        }
        assert_eq!(covered as usize, sums.len());
    }

    #[test]
    fn stats_track_occupancy() {
        let a: Vec<u8> = (0..1000).map(|i| b"ACGT"[(i * 3 + 1) % 4]).collect();
        let pa = PackedSeq::from_bytes(&a);
        let v = PackedView::full(pa.as_slice());
        let mut eng = BatchedXDropAligner::new();
        let pairs: Vec<_> = (0..eng.path().lane_width()).map(|_| (v, v)).collect();
        let _ = eng.extend_batch(&pairs, &SC, 25);
        let st = eng.stats();
        assert_eq!(st.tasks, pairs.len() as u64);
        assert!(st.cohorts >= 1);
        assert!(
            st.lane_fill() > 0.9,
            "identical pairs must fill lanes: {st:?}"
        );
    }
}
