//! Fixed-band global alignment.
//!
//! A deterministic-cost middle ground between the exact O(nm) kernels and
//! the adaptive X-drop extension: the DP is evaluated only on the diagonal
//! band `|i - j·n/m| ≤ band`, giving O(max(n, m)·band) time. Useful when
//! the expected divergence (and therefore the necessary band) is known —
//! e.g. re-aligning a pair already accepted by the pipeline, or polishing.

use crate::scoring::ScoringScheme;

/// Result of a banded global alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandedScore {
    /// Alignment score (a lower bound on the unbanded global score; equal
    /// to it when the optimal path stays inside the band).
    pub score: i32,
    /// DP cells evaluated.
    pub cells: u64,
}

/// "Minus infinity" for out-of-band cells.
const NEG: i32 = i32::MIN / 4;

/// Computes a global alignment score constrained to a band of half-width
/// `band` around the length-proportional diagonal.
///
/// # Panics
/// Panics if `band == 0`.
pub fn banded_global(a: &[u8], b: &[u8], sc: &ScoringScheme, band: usize) -> BandedScore {
    assert!(band >= 1, "band must be at least 1");
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return BandedScore {
            score: (n + m) as i32 * sc.gap,
            cells: 0,
        };
    }
    // For each row i, the band covers columns centred at i*m/n.
    let centre = |i: usize| i * m / n;
    let lo = |i: usize| centre(i).saturating_sub(band);
    let hi = |i: usize| (centre(i) + band).min(m);

    // prev[j] = H(i-1, j), stored densely over 0..=m but only band columns
    // are live; out-of-band entries hold NEG.
    let mut prev = vec![NEG; m + 1];
    let mut cur = vec![NEG; m + 1];
    let mut cells = 0u64;
    for (j, p) in prev.iter_mut().enumerate().take(hi(0) + 1) {
        *p = j as i32 * sc.gap;
    }
    for i in 1..=n {
        let (l, h) = (lo(i), hi(i));
        // Clear one slot beyond each edge so stale values never leak in.
        if l > 0 {
            cur[l - 1] = NEG;
        }
        for j in l..=h {
            let mut best = NEG;
            if j == 0 {
                best = i as i32 * sc.gap;
            } else {
                let diag = prev[j - 1];
                if diag > NEG {
                    best = best.max(diag + sc.substitution(a[i - 1], b[j - 1]));
                }
                let up = prev[j];
                if up > NEG {
                    best = best.max(up + sc.gap);
                }
                let left = cur[j - 1];
                if left > NEG {
                    best = best.max(left + sc.gap);
                }
            }
            cur[j] = best;
            cells += 1;
        }
        if h < m {
            cur[h + 1] = NEG;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    BandedScore {
        score: prev[m],
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw::global_score;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;

    #[test]
    fn wide_band_matches_exact_global() {
        let a = b"ACGGATTACAGGATCCGATTACA";
        let b = b"ACGGATTTACAGGTCCGATTACA";
        let exact = global_score(a, b, &SC).score;
        let banded = banded_global(a, b, &SC, a.len().max(b.len()));
        assert_eq!(banded.score, exact);
    }

    #[test]
    fn identity_any_band() {
        let s = b"GATTACAGATTACA";
        for band in [1usize, 2, 5, 20] {
            let r = banded_global(s, s, &SC, band);
            assert_eq!(r.score, s.len() as i32, "band {band}");
        }
    }

    #[test]
    fn banded_never_exceeds_exact() {
        let a = b"ACGTACGTACGTGGGG";
        let b = b"TTTACGTACGTACGT";
        let exact = global_score(a, b, &SC).score;
        for band in 1..=16 {
            let r = banded_global(a, b, &SC, band);
            assert!(r.score <= exact, "band {band}: {} > {exact}", r.score);
        }
    }

    #[test]
    fn band_monotone() {
        // Widening the band can only help.
        let a = b"ACGGATTACAGGATCCGATTACAGGA";
        let b = b"ACATTACAGGATCCGATTAGGA";
        let mut last = NEG;
        for band in 1..=26 {
            let r = banded_global(a, b, &SC, band);
            assert!(r.score >= last, "band {band}");
            last = r.score;
        }
    }

    #[test]
    fn cells_scale_with_band() {
        let a = vec![b'A'; 500];
        let b = vec![b'A'; 500];
        let narrow = banded_global(&a, &b, &SC, 5);
        let wide = banded_global(&a, &b, &SC, 50);
        assert!(narrow.cells < wide.cells / 4);
        assert_eq!(narrow.score, 500);
    }

    #[test]
    fn unequal_lengths() {
        // Deletion of 3 bases; the proportional band centre follows it.
        let a = b"AAAAACCCCCGGGGGTTTTT";
        let b = b"AAAAACCCGGGGGTTTTT";
        let exact = global_score(a, b, &SC).score;
        let r = banded_global(a, b, &SC, 6);
        assert_eq!(r.score, exact);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(banded_global(b"", b"ACG", &SC, 3).score, 3 * SC.gap);
        assert_eq!(banded_global(b"ACG", b"", &SC, 3).score, 3 * SC.gap);
        assert_eq!(banded_global(b"", b"", &SC, 1).score, 0);
    }

    #[test]
    #[should_panic(expected = "band")]
    fn zero_band_rejected() {
        let _ = banded_global(b"A", b"A", &SC, 0);
    }
}
