//! Host calibration: DP-cell throughput of the X-drop kernel.
//!
//! The simulator expresses alignment work in DP cells (a machine-independent
//! unit every kernel in this crate reports). To convert cells into simulated
//! seconds on a Cori KNL core, we measure the host's cells-per-second on a
//! representative extension and scale by a configurable host→KNL factor
//! (KNL cores run at 1.4 GHz with weak single-thread IPC; the default
//! factor is documented in EXPERIMENTS.md). Absolute times are therefore
//! approximate by design — the paper's *shapes* do not depend on them.

use crate::packed::{PackedView, PackedXDropAligner};
use crate::scoring::ScoringScheme;
use crate::xdrop::XDropAligner;
use crate::KernelImpl;
use gnb_genome::PackedSeq;
// gnb-lint: allow(wall-clock, reason = "calibration exists to measure the real host clock")
use std::time::Instant;

/// Measured DP-cell throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRate {
    /// Cells per second on this host (single thread).
    pub host_cells_per_sec: f64,
    /// Cells evaluated during measurement.
    pub cells: u64,
}

impl CellRate {
    /// Cells per second of a simulated KNL core, given a host→KNL slowdown
    /// factor (> 0; e.g. 4.0 means one KNL core is 4× slower than the host).
    pub fn knl_cells_per_sec(&self, host_to_knl_slowdown: f64) -> f64 {
        assert!(host_to_knl_slowdown > 0.0);
        self.host_cells_per_sec / host_to_knl_slowdown
    }
}

/// The calibration workload: a pseudo-random 8192-bp near-identical pair
/// (the common case: a true overlap; ~5% substitutions keep the band
/// realistically wide).
fn calibration_pair() -> (Vec<u8>, Vec<u8>) {
    let n = 8192usize;
    let bases = b"ACGT";
    let a: Vec<u8> = (0..n).map(|i| bases[(i * 7 + i / 5 + 3) % 4]).collect();
    let mut b = a.clone();
    for i in (0..n).step_by(20) {
        b[i] = bases[(a[i] as usize + 1) % 4];
    }
    (a, b)
}

/// Measures X-drop cell throughput of the scalar reference kernel by
/// running repeated extensions over the calibration pair.
///
/// `target_cells` bounds the measurement work; a few million cells gives a
/// stable estimate in well under a second. Use [`measure_cell_rate_for`]
/// to calibrate a specific [`KernelImpl`].
pub fn measure_cell_rate(target_cells: u64) -> CellRate {
    measure_cell_rate_for(KernelImpl::Scalar, target_cells)
}

/// Measures the cell throughput of the given kernel implementation on the
/// shared calibration workload. Both kernels evaluate bit-identical cell
/// counts per extension, so rates are directly comparable.
pub fn measure_cell_rate_for(kernel: KernelImpl, target_cells: u64) -> CellRate {
    let (a, b) = calibration_pair();
    let sc = ScoringScheme::DEFAULT;
    match kernel {
        KernelImpl::Scalar => {
            let mut aligner = XDropAligner::new();
            // Warm-up pass (page in buffers, settle frequency scaling).
            let _ = aligner.extend(&a, &b, &sc, 50);
            // gnb-lint: allow(wall-clock, reason = "calibration exists to measure the real host clock")
            let start = Instant::now();
            let mut cells = 0u64;
            while cells < target_cells {
                let ext = aligner.extend(&a, &b, &sc, 50);
                cells += ext.cells;
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            CellRate {
                host_cells_per_sec: cells as f64 / secs,
                cells,
            }
        }
        KernelImpl::Packed => {
            let pa = PackedSeq::from_bytes(&a);
            let pb = PackedSeq::from_bytes(&b);
            let va = PackedView::full(pa.as_slice());
            let vb = PackedView::full(pb.as_slice());
            let mut aligner = PackedXDropAligner::new();
            let _ = aligner.extend(va, vb, &sc, 50);
            // gnb-lint: allow(wall-clock, reason = "calibration exists to measure the real host clock")
            let start = Instant::now();
            let mut cells = 0u64;
            while cells < target_cells {
                let ext = aligner.extend(va, vb, &sc, 50);
                cells += ext.cells;
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            CellRate {
                host_cells_per_sec: cells as f64 / secs,
                cells,
            }
        }
        KernelImpl::Batched => {
            // The batched engine's throughput depends on lane occupancy, so
            // calibrate it the way batches actually run: a full cohort of
            // pairs per call (the calibration pair replicated across the
            // widest lane count).
            let pa = PackedSeq::from_bytes(&a);
            let pb = PackedSeq::from_bytes(&b);
            let pairs: Vec<_> = (0..crate::interseq::MAX_LANES)
                .map(|_| {
                    (
                        PackedView::full(pa.as_slice()),
                        PackedView::full(pb.as_slice()),
                    )
                })
                .collect();
            let mut aligner = crate::interseq::BatchedXDropAligner::new();
            let _ = aligner.extend_batch(&pairs, &sc, 50);
            // gnb-lint: allow(wall-clock, reason = "calibration exists to measure the real host clock")
            let start = Instant::now();
            let mut cells = 0u64;
            while cells < target_cells {
                for ext in aligner.extend_batch(&pairs, &sc, 50) {
                    cells += ext.cells;
                }
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            CellRate {
                host_cells_per_sec: cells as f64 / secs,
                cells,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_positive_and_plausible() {
        let r = measure_cell_rate(2_000_000);
        assert!(r.cells >= 2_000_000);
        // Any machine newer than a 2005 laptop does 10^6..10^10 cells/s.
        assert!(
            r.host_cells_per_sec > 1e6 && r.host_cells_per_sec < 1e11,
            "rate {}",
            r.host_cells_per_sec
        );
    }

    #[test]
    fn packed_rate_measurable_and_same_workload() {
        let s = measure_cell_rate_for(KernelImpl::Scalar, 500_000);
        let p = measure_cell_rate_for(KernelImpl::Packed, 500_000);
        // Identical per-extension cell counts → both overshoot the target
        // by less than one extension's worth of cells.
        assert!(p.cells >= 500_000 && s.cells >= 500_000);
        assert!(p.host_cells_per_sec > 1e6, "rate {}", p.host_cells_per_sec);
    }

    #[test]
    fn knl_scaling() {
        let r = CellRate {
            host_cells_per_sec: 1e8,
            cells: 0,
        };
        assert!((r.knl_cells_per_sec(4.0) - 2.5e7).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_slowdown_rejected() {
        let r = CellRate {
            host_cells_per_sec: 1e8,
            cells: 0,
        };
        let _ = r.knl_cells_per_sec(0.0);
    }
}
