//! Host calibration: DP-cell throughput of the X-drop kernel.
//!
//! The simulator expresses alignment work in DP cells (a machine-independent
//! unit every kernel in this crate reports). To convert cells into simulated
//! seconds on a Cori KNL core, we measure the host's cells-per-second on a
//! representative extension and scale by a configurable host→KNL factor
//! (KNL cores run at 1.4 GHz with weak single-thread IPC; the default
//! factor is documented in EXPERIMENTS.md). Absolute times are therefore
//! approximate by design — the paper's *shapes* do not depend on them.

use crate::scoring::ScoringScheme;
use crate::xdrop::XDropAligner;
// gnb-lint: allow(wall-clock, reason = "calibration exists to measure the real host clock")
use std::time::Instant;

/// Measured DP-cell throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRate {
    /// Cells per second on this host (single thread).
    pub host_cells_per_sec: f64,
    /// Cells evaluated during measurement.
    pub cells: u64,
}

impl CellRate {
    /// Cells per second of a simulated KNL core, given a host→KNL slowdown
    /// factor (> 0; e.g. 4.0 means one KNL core is 4× slower than the host).
    pub fn knl_cells_per_sec(&self, host_to_knl_slowdown: f64) -> f64 {
        assert!(host_to_knl_slowdown > 0.0);
        self.host_cells_per_sec / host_to_knl_slowdown
    }
}

/// Measures X-drop cell throughput by running repeated extensions over a
/// pseudo-random near-identical pair (the common case: a true overlap).
///
/// `target_cells` bounds the measurement work; a few million cells gives a
/// stable estimate in well under a second.
pub fn measure_cell_rate(target_cells: u64) -> CellRate {
    let n = 8192usize;
    let bases = b"ACGT";
    let a: Vec<u8> = (0..n).map(|i| bases[(i * 7 + i / 5 + 3) % 4]).collect();
    let mut b = a.clone();
    // ~5% substitutions keep the band realistically wide.
    for i in (0..n).step_by(20) {
        b[i] = bases[(a[i] as usize + 1) % 4];
    }
    let sc = ScoringScheme::DEFAULT;
    let mut aligner = XDropAligner::new();

    // Warm-up pass (page in buffers, settle frequency scaling).
    let _ = aligner.extend(&a, &b, &sc, 50);

    // gnb-lint: allow(wall-clock, reason = "calibration exists to measure the real host clock")
    let start = Instant::now();
    let mut cells = 0u64;
    while cells < target_cells {
        let ext = aligner.extend(&a, &b, &sc, 50);
        cells += ext.cells;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    CellRate {
        host_cells_per_sec: cells as f64 / secs,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_positive_and_plausible() {
        let r = measure_cell_rate(2_000_000);
        assert!(r.cells >= 2_000_000);
        // Any machine newer than a 2005 laptop does 10^6..10^10 cells/s.
        assert!(
            r.host_cells_per_sec > 1e6 && r.host_cells_per_sec < 1e11,
            "rate {}",
            r.host_cells_per_sec
        );
    }

    #[test]
    fn knl_scaling() {
        let r = CellRate {
            host_cells_per_sec: 1e8,
            cells: 0,
        };
        assert!((r.knl_cells_per_sec(4.0) - 2.5e7).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_slowdown_rejected() {
        let r = CellRate {
            host_cells_per_sec: 1e8,
            cells: 0,
        };
        let _ = r.knl_cells_per_sec(0.0);
    }
}
