//! Packed antidiagonal X-drop kernel: 2-bit codes, 32-way base comparison.
//!
//! Same algorithm, band logic, tie-breaks, and termination conditions as
//! [`crate::xdrop::XDropAligner`] — the scalar kernel remains the reference
//! — but the inner loop is restructured for throughput:
//!
//! * **Base comparison in bulk.** Sequences arrive 2-bit packed (see
//!   [`gnb_genome::packed`]); per antidiagonal the kernel XORs a 32-lane
//!   window of `a` against a lane-reversed window of `b` and ORs in both N
//!   masks. A lane of the result is zero exactly where the bases match, so
//!   one word feeds 32 cells' match/mismatch profile lookups with no byte
//!   loads and no per-base `N` tests.
//! * **Branch-reduced recurrence.** The scalar kernel guards every
//!   predecessor read with `v <= NEG` branches. Here dead cells simply
//!   flow through the arithmetic: `NEG + substitution/gap` stays far below
//!   any live score, and the X-drop prune renormalises every dead result
//!   to exactly `NEG` — see the equivalence argument below.
//!
//! # Bit-identity argument
//!
//! The prune step writes `NEG` whenever `h < best - x`. Since `best ≥ 0`
//! and `x ≤ MAX_X`, every cut-off satisfies `best - x ≥ -MAX_X > NEG + 1`.
//! A cell whose predecessors are all dead computes
//! `h ≤ NEG + match_score ≤ NEG + 1 < best - x`, is pruned to exactly
//! `NEG`, and therefore stores and propagates precisely the value the
//! scalar kernel stores. Live cells read the same predecessor slots as the
//! scalar kernel (every slot a candidate reads is either a written cell or
//! a `NEG` guard sentinel — the same invariant the scalar kernel relies
//! on), so scores, extents, the per-cell tie-break order, the live-band
//! evolution, and the `cells` count are all bit-identical. The proptests in
//! `crates/align/tests/packed_equivalence.rs` exercise this exhaustively on
//! DNA-with-N inputs.
//!
//! Precondition: sequences must be over `{A,C,G,T,N}` (anything else packs
//! as N, whereas the scalar kernel's byte-equality would score equal
//! non-DNA bytes as matches). `ReadSet`-held reads always satisfy this.

use crate::scoring::ScoringScheme;
use crate::xdrop::{Extension, NEG, PAD};
use gnb_genome::packed::{rev_lanes, PackedSlice};

/// Largest accepted X-drop threshold. Any larger `x` could let a
/// dead-predecessor cell (`NEG + 1`) survive the prune and diverge from the
/// scalar kernel; every realistic threshold is orders of magnitude smaller.
pub const MAX_X: i32 = 1 << 28;

/// Extra `i32` lanes kept past the live band in every rolling array so the
/// lane-parallel sweep may read (never write) a full 32-lane block without
/// per-block bounds tests. Slack lanes hold stale-but-initialised scores;
/// their results are discarded via the block mask.
const LANE_SLACK: usize = 32;

/// AVX2 versions of the two lane-parallel passes. All arithmetic is exact
/// `i32` (add/max/compare/select), computing the same values in the same
/// order as the scalar fallbacks — kernel output is bit-identical whichever
/// path runs; `packed_equivalence` proptests and the `simd_paths_agree`
/// unit test exercise both.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::NEG;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Whether the AVX2 passes are usable on this host (cached atomically
    /// by the detection macro after the first call).
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Pass 1 over one 32-lane block:
    /// `h0[t] = max(d2[t] + sub(t), pl[t] + gap, pl[t + 1] + gap)` where
    /// `sub(t)` is `ms` when bit `t` of `mis` is clear, else `ms - dl`.
    /// Returns the lane mask of `h0[t] > bs`.
    ///
    /// # Safety
    /// Requires AVX2 and 32 readable `i32`s at `d2` / 33 at `pl` (the
    /// caller's slices carry [`LANE_SLACK`](super::LANE_SLACK) lanes).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn sweep32(
        d2: *const i32,
        pl: *const i32,
        mis: u32,
        ms: i32,
        dl: i32,
        gap: i32,
        bs: i32,
        h0: &mut [i32; 32],
    ) -> u32 {
        let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let one = _mm256_set1_epi32(1);
        let vmm = _mm256_set1_epi32(ms - dl);
        let vdl = _mm256_set1_epi32(dl);
        let vgap = _mm256_set1_epi32(gap);
        let vbs = _mm256_set1_epi32(bs);
        let zero = _mm256_setzero_si256();
        let mut gt = 0u32;
        let mut k = 0usize;
        while k < 32 {
            // Lane t of the vector holds bit k+t of the mismatch mask.
            let bits = _mm256_and_si256(
                _mm256_srlv_epi32(_mm256_set1_epi32((mis >> k) as i32), iota),
                one,
            );
            let eqm = _mm256_cmpeq_epi32(bits, zero);
            let sub = _mm256_add_epi32(vmm, _mm256_and_si256(eqm, vdl));
            let dv = _mm256_loadu_si256(d2.add(k) as *const __m256i);
            let u = _mm256_loadu_si256(pl.add(k) as *const __m256i);
            let l = _mm256_loadu_si256(pl.add(k + 1) as *const __m256i);
            let hv = _mm256_max_epi32(
                _mm256_add_epi32(dv, sub),
                _mm256_max_epi32(_mm256_add_epi32(u, vgap), _mm256_add_epi32(l, vgap)),
            );
            _mm256_storeu_si256(h0.as_mut_ptr().add(k) as *mut __m256i, hv);
            let m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(hv, vbs)));
            gt |= (m as u32) << k;
            k += 8;
        }
        gt
    }

    /// Fast pass 2 (constant cutoff): prune `h0` lanes below `cut` to
    /// `NEG`, store lanes `0..blk` to `out`, and return their liveness
    /// mask. Lanes `≥ blk` are never written (masked store).
    ///
    /// # Safety
    /// Requires AVX2, `1 ≤ blk ≤ 32`, and `blk` writable `i32`s at `out`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn prune_store32(h0: &[i32; 32], cut: i32, blk: usize, out: *mut i32) -> u32 {
        let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let vcut = _mm256_set1_epi32(cut);
        let vneg = _mm256_set1_epi32(NEG);
        let vblk = _mm256_set1_epi32(blk as i32);
        let mut live = 0u32;
        let mut k = 0usize;
        while k < 32 {
            let lane = _mm256_add_epi32(iota, _mm256_set1_epi32(k as i32));
            let valid = _mm256_cmpgt_epi32(vblk, lane);
            let hv = _mm256_loadu_si256(h0.as_ptr().add(k) as *const __m256i);
            let dead = _mm256_cmpgt_epi32(vcut, hv);
            let res = _mm256_blendv_epi8(hv, vneg, dead);
            _mm256_maskstore_epi32(out.add(k), valid, res);
            let lv = _mm256_and_si256(_mm256_cmpgt_epi32(res, vneg), valid);
            live |= (_mm256_movemask_ps(_mm256_castsi256_ps(lv)) as u32) << k;
            k += 8;
        }
        live
    }
}

/// Whether the lane-parallel AVX2 passes are active on this host (runtime
/// CPU detection). When `false`, [`PackedXDropAligner`] runs the scalar
/// two-pass fallback — still packed-encoding, still bit-identical, just
/// without vector lanes. Exposed so benchmark reports can record which
/// dispatch path their numbers describe.
pub fn simd_active() -> bool {
    simd_available()
}

/// Whether the lane-parallel AVX2 passes are available on this host.
fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar pass 1 (reference and non-AVX2 fallback); see [`simd::sweep32`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn sweep32_scalar(
    d2: &[i32],
    pl: &[i32],
    blk_start: usize,
    blk: usize,
    mis: u32,
    ms: i32,
    dl: i32,
    gap: i32,
    bs: i32,
    h0: &mut [i32; 32],
) -> u32 {
    let mut gt: u32 = 0;
    for (t, h) in h0.iter_mut().enumerate().take(blk) {
        let k = blk_start + t;
        // SAFETY: the caller carved `d2` with at least `blk_start + blk`
        // lanes and `pl` with one more (plus `LANE_SLACK`).
        let (dv, u, l) = unsafe {
            (
                *d2.get_unchecked(k),
                *pl.get_unchecked(k),
                *pl.get_unchecked(k + 1),
            )
        };
        let sub = ms - (((mis >> t) & 1) as i32) * dl;
        let hv = (dv + sub).max(u + gap).max(l + gap);
        *h = hv;
        gt |= u32::from(hv > bs) << t;
    }
    gt
}

/// Scalar fast pass 2; see [`simd::prune_store32`].
#[inline]
fn prune_store32_scalar(
    h0: &[i32; 32],
    cut: i32,
    blk: usize,
    blk_start: usize,
    out: &mut [i32],
) -> u32 {
    let mut live: u32 = 0;
    for (t, &hv) in h0.iter().enumerate().take(blk) {
        // X-drop prune; also renormalises dead-predecessor cells to
        // exactly NEG (see module docs).
        let h = if hv < cut { NEG } else { hv };
        // SAFETY: caller guarantees `blk_start + blk <= out.len()`.
        unsafe { *out.get_unchecked_mut(blk_start + t) = h };
        live |= u32::from(h > NEG) << t;
    }
    live
}

/// A logical view over a packed sequence: a base offset plus optional
/// reversal and complementation, evaluated lazily at window-extraction
/// time. This is what makes load-time packing sufficient: suffixes,
/// reversed prefixes, and reverse-complements needed by seed-and-extend are
/// all O(1) view constructions over the same packed words.
#[derive(Debug, Clone, Copy)]
pub struct PackedView<'a> {
    slice: PackedSlice<'a>,
    /// For forward views, the physical index of logical base 0; for
    /// reversed views, one past the physical index of logical base 0
    /// (logical `i` maps to physical `offset - 1 - i`).
    offset: usize,
    len: usize,
    rev: bool,
    comp: bool,
}

impl<'a> PackedView<'a> {
    /// Whole-sequence forward view.
    pub fn full(slice: PackedSlice<'a>) -> Self {
        PackedView {
            slice,
            offset: 0,
            len: slice.len,
            rev: false,
            comp: false,
        }
    }

    /// Number of bases in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view holds no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical suffix `[start, len)`.
    pub fn suffix(self, start: usize) -> Self {
        assert!(start <= self.len, "suffix start outside view");
        PackedView {
            offset: if self.rev {
                self.offset - start
            } else {
                self.offset + start
            },
            len: self.len - start,
            ..self
        }
    }

    /// The logical prefix `[0, end)` reversed: logical `i` of the result is
    /// logical `end - 1 - i` of `self`. This is the left-extension view.
    pub fn rev_prefix(self, end: usize) -> Self {
        assert!(end <= self.len, "prefix end outside view");
        PackedView {
            offset: if self.rev {
                self.offset - end
            } else {
                self.offset + end
            },
            len: end,
            rev: !self.rev,
            ..self
        }
    }

    /// The whole view reverse-complemented (strand normalisation).
    pub fn revcomp(self) -> Self {
        let mut v = self.rev_prefix(self.len);
        v.comp = !v.comp;
        v
    }

    /// Physical index of logical base `i`.
    fn phys(&self, i: usize) -> usize {
        if self.rev {
            self.offset - 1 - i
        } else {
            self.offset + i
        }
    }

    /// 2-bit code of logical base `i` (complement applied; 0 for N).
    pub fn code(&self, i: usize) -> u8 {
        let c = self.slice.code(self.phys(i));
        if self.comp {
            c ^ 3
        } else {
            c
        }
    }

    /// Whether logical base `i` is ambiguous.
    pub fn is_n(&self, i: usize) -> bool {
        self.slice.is_n(self.phys(i))
    }

    /// 32 lanes of `(codes, nmask)` for logical bases
    /// `start..start + 32`, ascending. Out-of-view lanes read as N.
    pub fn window32(&self, start: isize) -> (u64, u64) {
        let (mut c, mut n) = if self.rev {
            // Logical ascending = physical descending: extract the
            // ascending physical window ending at `offset - 1 - start` and
            // lane-reverse it.
            let phys_lo = self.offset as isize - 1 - start - 31;
            let (c, n) = self.slice.window(phys_lo);
            (rev_lanes(c), rev_lanes(n))
        } else {
            self.slice.window(self.offset as isize + start)
        };
        if self.comp {
            c = !c;
        }
        // Mask logical out-of-range lanes as N (the physical-bounds masking
        // inside `window` already covers views that end at the sequence
        // boundary, but sub-views may end earlier).
        if start < 0 {
            let skip = (-start) as usize;
            n |= if skip >= 32 {
                u64::MAX
            } else {
                u64::MAX >> (64 - 2 * skip)
            };
        }
        let remain = self.len as isize - start;
        if remain < 32 {
            n |= if remain <= 0 {
                u64::MAX
            } else {
                u64::MAX << (2 * remain)
            };
        }
        (c, n)
    }

    /// 32 lanes for logical bases `start_hi, start_hi - 1, …,
    /// start_hi - 31` (descending — the `b` side of an antidiagonal).
    pub fn window32_desc(&self, start_hi: isize) -> (u64, u64) {
        if self.rev {
            // Logical descending = physical ascending, so the two lane
            // reversals (view direction and descending order) cancel and
            // the window comes straight out of the packed words.
            let (mut c, mut n) = self.slice.window(self.offset as isize - 1 - start_hi);
            if self.comp {
                c = !c;
            }
            // Lane t holds logical base `start_hi - t`; mask lanes whose
            // logical index falls outside `0..len`.
            if start_hi < 31 {
                n |= if start_hi < 0 {
                    u64::MAX
                } else {
                    u64::MAX << (2 * (start_hi + 1))
                };
            }
            let over = start_hi - self.len as isize;
            if over >= 0 {
                n |= u64::MAX >> (62 - 2 * over.min(31));
            }
            (c, n)
        } else {
            let (c, n) = self.window32(start_hi - 31);
            (rev_lanes(c), rev_lanes(n))
        }
    }
}

/// Reusable scratch for packed X-drop extensions. Drop-in peer of
/// [`XDropAligner`](crate::xdrop::XDropAligner) operating on
/// [`PackedView`]s; returns bit-identical [`Extension`]s.
#[derive(Debug, Default)]
pub struct PackedXDropAligner {
    prev2: Vec<i32>,
    prev: Vec<i32>,
    cur: Vec<i32>,
}

impl PackedXDropAligner {
    /// Creates an empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        let want = n + 2 * PAD + 1 + LANE_SLACK;
        if self.prev.len() < want {
            self.prev2.resize(want, NEG);
            self.prev.resize(want, NEG);
            self.cur.resize(want, NEG);
        }
    }

    /// Extends an alignment from `(0, 0)` into `a` × `b` under X-drop
    /// pruning threshold `x` (`0 ≤ x ≤ MAX_X`). Bit-identical to
    /// [`XDropAligner::extend`](crate::xdrop::XDropAligner::extend) on the
    /// corresponding byte sequences.
    pub fn extend(
        &mut self,
        a: PackedView<'_>,
        b: PackedView<'_>,
        sc: &ScoringScheme,
        x: i32,
    ) -> Extension {
        self.extend_impl(a, b, sc, x, simd_available())
    }

    /// [`extend`](Self::extend) with an explicit lane-parallel-pass choice
    /// (`use_simd` is ignored off x86_64); split out so tests can pin both
    /// paths against each other on AVX2 hosts.
    fn extend_impl(
        &mut self,
        a: PackedView<'_>,
        b: PackedView<'_>,
        sc: &ScoringScheme,
        x: i32,
        use_simd: bool,
    ) -> Extension {
        assert!(x >= 0, "X-drop threshold must be non-negative");
        assert!(
            x <= MAX_X,
            "X-drop threshold too large for the packed kernel"
        );
        let (n, m) = (a.len(), b.len());
        self.ensure(n);
        #[cfg(not(target_arch = "x86_64"))]
        let _ = use_simd;

        for s in 0..(2 * PAD + 1).min(self.prev.len()) {
            self.prev2[s] = NEG;
            self.prev[s] = NEG;
            self.cur[s] = NEG;
        }

        let mut best = Extension::default();
        let ms = sc.match_score;
        // Subtracted from `ms` when a lane mismatches.
        let dl = sc.match_score - sc.mismatch;
        let gap = sc.gap;

        self.cur[PAD] = 0;
        std::mem::swap(&mut self.prev, &mut self.cur);
        let mut live1: Option<(usize, usize)> = Some((0, 0));
        let mut live2: Option<(usize, usize)> = None;

        let mut cells: u64 = 0;
        for d in 1..=(n + m) {
            let row_lo = d.saturating_sub(m);
            let row_hi = d.min(n);
            let from_prev = live1.map(|(lo, hi)| (lo, hi + 1));
            let from_diag = live2.map(|(lo, hi)| (lo + 1, hi + 1));
            let (band_lo, band_hi) = match (from_prev, from_diag) {
                (Some((a0, a1)), Some((b0, b1))) => (a0.min(b0), a1.max(b1)),
                (Some(r), None) | (None, Some(r)) => r,
                (None, None) => break,
            };
            let cand_lo = band_lo.max(row_lo);
            let cand_hi = band_hi.min(row_hi);
            if cand_lo > cand_hi {
                break;
            }

            let mut new_lo = usize::MAX;
            let mut new_hi = 0usize;
            let w = cand_hi - cand_lo + 1;
            let base = cand_lo + PAD;
            // Window the three rolling arrays once per diagonal so the
            // inner loops index with a provably in-bounds counter; one
            // overlapping `prev` slice serves both gap predecessors
            // (`up` of cell k is `pl[k]`, `left` is `pl[k + 1]`). The
            // read-only slices carry LANE_SLACK extra lanes so the sweep
            // may always read whole 32-lane blocks.
            let d2 = &self.prev2[base - 1..base - 1 + w + LANE_SLACK];
            let pl = &self.prev[base - 1..base + w + LANE_SLACK];
            let out = &mut self.cur[base..base + w];
            let mut cut = best.score - x;
            let mut blk_start = 0usize;
            while blk_start < w {
                let blk = (w - blk_start).min(32);
                // Cell (row ii, col d - ii) compares a[ii-1] vs b[d-ii-1]:
                // ascending a window, descending b window. Out-of-range
                // lanes (ii == 0 or ii == d edges) read as N → mismatch,
                // which is harmless: those cells' diagonal predecessors are
                // NEG sentinels, so the substitution value never survives.
                let i0 = cand_lo + blk_start;
                let (ac, an) = a.window32(i0 as isize - 1);
                let (bc, bn) = b.window32_desc(d as isize - i0 as isize - 1);
                let neq = (ac ^ bc) | an | bn;
                // Compact "lane differs" down to one bit per lane (bit t =
                // lane t mismatches): ~6 shift/mask steps for the whole
                // block, replacing a 32-iteration expansion loop.
                let mut mb = (neq | (neq >> 1)) & 0x5555_5555_5555_5555;
                mb = (mb | (mb >> 1)) & 0x3333_3333_3333_3333;
                mb = (mb | (mb >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
                mb = (mb | (mb >> 4)) & 0x00ff_00ff_00ff_00ff;
                mb = (mb | (mb >> 8)) & 0x0000_ffff_0000_ffff;
                let mis = (mb | (mb >> 16)) as u32;
                // DP sweep (pass 1): no loop-carried state, so it runs
                // lane-parallel. `gt` flags cells that would raise `best`
                // (and with it the prune cutoff mid-diagonal); those are
                // rare, and the common block below skips per-cell
                // best/cut bookkeeping.
                let bs = best.score;
                let mut h0 = [NEG; 32];
                #[cfg(target_arch = "x86_64")]
                let gt: u32 = if use_simd {
                    let blk_mask = if blk == 32 {
                        u32::MAX
                    } else {
                        (1u32 << blk) - 1
                    };
                    // SAFETY: AVX2 detected; `d2`/`pl` carry LANE_SLACK
                    // lanes past `w`, so a whole 32-lane block starting at
                    // `blk_start < w` is readable.
                    let raw = unsafe {
                        simd::sweep32(
                            d2.as_ptr().add(blk_start),
                            pl.as_ptr().add(blk_start),
                            mis,
                            ms,
                            dl,
                            gap,
                            bs,
                            &mut h0,
                        )
                    };
                    raw & blk_mask
                } else {
                    sweep32_scalar(d2, pl, blk_start, blk, mis, ms, dl, gap, bs, &mut h0)
                };
                #[cfg(not(target_arch = "x86_64"))]
                let gt: u32 = sweep32_scalar(d2, pl, blk_start, blk, mis, ms, dl, gap, bs, &mut h0);
                let mut livemask: u32 = 0;
                if gt == 0 {
                    // `best` cannot change in this block, so the cutoff is
                    // constant: prune, store, and track liveness with no
                    // serial dependence.
                    #[cfg(target_arch = "x86_64")]
                    if use_simd {
                        // SAFETY: AVX2 detected; `out` has `w >=
                        // blk_start + blk` lanes and the store is masked
                        // to lanes `< blk`.
                        livemask = unsafe {
                            simd::prune_store32(&h0, cut, blk, out.as_mut_ptr().add(blk_start))
                        };
                    } else {
                        livemask = prune_store32_scalar(&h0, cut, blk, blk_start, out);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    {
                        livemask = prune_store32_scalar(&h0, cut, blk, blk_start, out);
                    }
                } else {
                    for (t, &hv) in h0.iter().enumerate().take(blk) {
                        let h = if hv < cut { NEG } else { hv };
                        // SAFETY: `blk_start + t < w` as above.
                        unsafe { *out.get_unchecked_mut(blk_start + t) = h };
                        if h > best.score {
                            best.score = h;
                            best.a_ext = i0 + t;
                            best.b_ext = d - (i0 + t);
                            cut = h - x;
                        }
                        livemask |= u32::from(h > NEG) << t;
                    }
                }
                if livemask != 0 {
                    new_lo = new_lo.min(i0 + livemask.trailing_zeros() as usize);
                    new_hi = new_hi.max(i0 + 31 - livemask.leading_zeros() as usize);
                }
                blk_start += blk;
            }
            cells += w as u64;
            for g in 1..=PAD {
                self.cur[cand_lo + PAD - g] = NEG;
                self.cur[cand_hi + PAD + g] = NEG;
            }

            live2 = live1;
            live1 = if new_lo == usize::MAX {
                None
            } else {
                Some((new_lo, new_hi))
            };

            std::mem::swap(&mut self.prev2, &mut self.prev);
            std::mem::swap(&mut self.prev, &mut self.cur);
        }

        best.cells = cells;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xdrop::xdrop_extend;
    use gnb_genome::PackedSeq;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;

    fn packed_extend(a: &[u8], b: &[u8], x: i32) -> Extension {
        let pa = PackedSeq::from_bytes(a);
        let pb = PackedSeq::from_bytes(b);
        PackedXDropAligner::new().extend(
            PackedView::full(pa.as_slice()),
            PackedView::full(pb.as_slice()),
            &SC,
            x,
        )
    }

    fn assert_same(a: &[u8], b: &[u8], x: i32) {
        let scalar = xdrop_extend(a, b, &SC, x);
        let packed = packed_extend(a, b, x);
        assert_eq!(
            scalar,
            packed,
            "kernels diverge on a={:?} b={:?} x={x}",
            std::str::from_utf8(a),
            std::str::from_utf8(b)
        );
    }

    #[test]
    fn matches_scalar_on_basics() {
        assert_same(b"ACGTACGT", b"ACGTACGT", 10);
        assert_same(b"ACGTACGTAC", b"ACGTTCGTAC", 5);
        assert_same(b"ACGTACGTACGT", b"ACGTACTACGT", 5);
        assert_same(b"ACGGTTTTT", b"ACGGAAAAA", 0);
        assert_same(b"ACGTACGTACGTACGT", b"ACGT", 100);
        assert_same(b"", b"", 10);
        assert_same(b"ACGT", b"", 10);
        assert_same(b"", b"ACGT", 10);
    }

    #[test]
    fn matches_scalar_with_n_bases() {
        assert_same(b"ACGTNACGT", b"ACGTNACGT", 20);
        assert_same(b"NNNN", b"NNNN", 10);
        assert_same(b"ACNGTACGT", b"ACGGTACGT", 6);
    }

    #[test]
    fn matches_scalar_on_long_noisy_pair() {
        let a: Vec<u8> = (0..2000)
            .map(|i| b"ACGT"[(i * 7 + i / 5 + 3) % 4])
            .collect();
        let mut b = a.clone();
        for i in (0..2000).step_by(19) {
            b[i] = b"ACGT"[(a[i] as usize + 1) % 4];
        }
        for x in [0, 1, 5, 25, 50, 400] {
            assert_same(&a, &b, x);
        }
    }

    #[test]
    fn view_suffix_prefix_revcomp() {
        let seq = b"ACGTNACGTTGCA";
        let p = PackedSeq::from_bytes(seq);
        let v = PackedView::full(p.as_slice());
        let suf = v.suffix(4);
        assert_eq!(suf.len(), seq.len() - 4);
        for i in 0..suf.len() {
            assert_eq!(suf.code(i), v.code(4 + i));
            assert_eq!(suf.is_n(i), v.is_n(4 + i));
        }
        let rp = v.rev_prefix(6);
        for i in 0..6 {
            assert_eq!(rp.code(i), v.code(5 - i));
        }
        let rc = v.revcomp();
        let expect = gnb_genome::revcomp(seq);
        for (i, &e) in expect.iter().enumerate() {
            if e == b'N' {
                assert!(rc.is_n(i));
            } else {
                assert!(!rc.is_n(i));
                assert_eq!(rc.code(i), gnb_genome::seq::base_to_2bit(e).unwrap());
            }
        }
        // Views compose: revcomp then suffix then rev_prefix round-trips.
        let back = rc.revcomp();
        for i in 0..seq.len() {
            assert_eq!(back.code(i), v.code(i));
            assert_eq!(back.is_n(i), v.is_n(i));
        }
    }

    #[test]
    fn kernel_on_derived_views_matches_scalar_on_materialised_bytes() {
        let a: Vec<u8> = (0..400).map(|i| b"ACGTN"[(i * 11 + 2) % 5]).collect();
        let b: Vec<u8> = (0..350).map(|i| b"ACGTN"[(i * 13 + 4) % 5]).collect();
        let pa = PackedSeq::from_bytes(&a);
        let pb = PackedSeq::from_bytes(&b);
        let va = PackedView::full(pa.as_slice());
        let vb = PackedView::full(pb.as_slice());
        let mut al = PackedXDropAligner::new();

        // Suffix vs revcomp-suffix, and reversed prefixes, exactly as
        // seed-and-extend slices them.
        let b_rc = gnb_genome::revcomp(&b);
        let s = al.extend(va.suffix(100), vb.revcomp().suffix(60), &SC, 30);
        assert_eq!(s, xdrop_extend(&a[100..], &b_rc[60..], &SC, 30));

        let a_rev: Vec<u8> = a[..100].iter().rev().copied().collect();
        let b_rev: Vec<u8> = b_rc[..60].iter().rev().copied().collect();
        let l = al.extend(va.rev_prefix(100), vb.revcomp().rev_prefix(60), &SC, 30);
        assert_eq!(l, xdrop_extend(&a_rev, &b_rev, &SC, 30));
    }

    #[test]
    fn simd_paths_agree() {
        // Forced-scalar passes vs forced-lane-parallel passes on a long
        // noisy pair across thresholds. On non-AVX2 hosts both arms run
        // the scalar passes and the test is trivially green.
        let a: Vec<u8> = (0..3000)
            .map(|i| b"ACGTN"[(i * 7 + i / 5 + 3) % 5])
            .collect();
        let mut b = a.clone();
        for i in (0..3000).step_by(23) {
            b[i] = b"ACGT"[(a[i] as usize + 1) % 4];
        }
        let pa = PackedSeq::from_bytes(&a);
        let pb = PackedSeq::from_bytes(&b);
        let va = PackedView::full(pa.as_slice());
        let vb = PackedView::full(pb.as_slice());
        let mut al = PackedXDropAligner::new();
        for x in [0, 1, 5, 25, 50, 400] {
            let scalar = al.extend_impl(va, vb, &SC, x, false);
            let lanes = al.extend_impl(va, vb, &SC, x, simd_available());
            assert_eq!(scalar, lanes, "pass implementations diverge at x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_x_rejected() {
        let _ = packed_extend(b"ACGT", b"ACGT", MAX_X + 1);
    }
}
