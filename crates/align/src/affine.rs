//! Affine-gap local alignment (Gotoh's algorithm).
//!
//! The production X-drop kernel uses linear gaps (as the paper's SeqAn
//! configuration does), but long-read indel errors arrive in bursts, and
//! downstream users polishing or re-scoring accepted overlaps usually want
//! affine penalties: `gap_open + k·gap_extend` for a k-base gap. This is
//! the standard three-matrix O(nm) formulation.

use crate::scoring::ScoringScheme;
use serde::{Deserialize, Serialize};

/// Affine-gap scoring: substitution scores from a [`ScoringScheme`] plus a
/// gap-open penalty (charged once per gap) and a gap-extend penalty
/// (charged per base, including the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineScoring {
    /// Match/mismatch scores (the `gap` field is ignored here).
    pub subs: ScoringScheme,
    /// Penalty for opening a gap (< 0).
    pub gap_open: i32,
    /// Penalty per gap base (< 0).
    pub gap_extend: i32,
}

impl AffineScoring {
    /// Creates an affine scheme, validating sign conventions.
    ///
    /// # Panics
    /// Panics unless both penalties are negative.
    pub fn new(subs: ScoringScheme, gap_open: i32, gap_extend: i32) -> AffineScoring {
        assert!(gap_open < 0, "gap open penalty must be negative");
        assert!(gap_extend < 0, "gap extend penalty must be negative");
        AffineScoring {
            subs,
            gap_open,
            gap_extend,
        }
    }

    /// A long-read-typical default: +1 match, −2 mismatch, −3 open,
    /// −1 extend.
    pub fn long_read_default() -> AffineScoring {
        AffineScoring::new(ScoringScheme::DEFAULT, -3, -1)
    }
}

/// Result of an affine-gap local alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineAlignment {
    /// Best local score (≥ 0).
    pub score: i32,
    /// End position in `a` (exclusive).
    pub a_end: usize,
    /// End position in `b` (exclusive).
    pub b_end: usize,
    /// DP cells evaluated (3 matrices count as one cell per (i, j)).
    pub cells: u64,
}

/// "Minus infinity" safe against adding penalties.
const NEG: i32 = i32::MIN / 4;

/// Smith–Waterman–Gotoh: optimal local alignment with affine gaps.
pub fn affine_local_align(a: &[u8], b: &[u8], sc: &AffineScoring) -> AffineAlignment {
    let (n, m) = (a.len(), b.len());
    // H = best ending in a match/mismatch; E = gap in `a` (consumes b);
    // F = gap in `b` (consumes a). Rolling rows.
    let mut h_prev = vec![0i32; m + 1];
    let mut h_cur = vec![0i32; m + 1];
    let mut f_prev = vec![NEG; m + 1];
    let mut f_cur = vec![NEG; m + 1];
    let mut best = AffineAlignment {
        score: 0,
        a_end: 0,
        b_end: 0,
        cells: (n as u64) * (m as u64),
    };
    for i in 1..=n {
        h_cur[0] = 0;
        let mut e = NEG; // E(i, j) along the row
        let ai = a[i - 1];
        for j in 1..=m {
            e = (e + sc.gap_extend).max(h_cur[j - 1] + sc.gap_open + sc.gap_extend);
            let f = (f_prev[j] + sc.gap_extend).max(h_prev[j] + sc.gap_open + sc.gap_extend);
            f_cur[j] = f;
            let diag = h_prev[j - 1] + sc.subs.substitution(ai, b[j - 1]);
            let h = diag.max(e).max(f).max(0);
            h_cur[j] = h;
            if h > best.score {
                best.score = h;
                best.a_end = i;
                best.b_end = j;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::local_align;

    fn sc() -> AffineScoring {
        AffineScoring::long_read_default()
    }

    #[test]
    fn identity() {
        let r = affine_local_align(b"GATTACA", b"GATTACA", &sc());
        assert_eq!(r.score, 7);
        assert_eq!((r.a_end, r.b_end), (7, 7));
    }

    #[test]
    fn single_long_gap_cost() {
        // Bridging a 4-base gap: open(-3) + 4*extend(-1) = -7, worth it
        // when the flanks are long enough (20 matches).
        let a = b"AAAAAAAAAACCCCGGGGGGGGGG";
        let b = b"AAAAAAAAAAGGGGGGGGGG";
        let r = affine_local_align(a, b, &sc());
        assert_eq!(r.score, 20 - 3 - 4);
    }

    #[test]
    fn affine_prefers_one_gap_over_two() {
        // 16 matches bridging 2 gapped bases: one 2-base gap costs
        // open+2*extend = -5; the same bases split into two gaps cost
        // 2*(open+extend) = -8.
        let one_gap = affine_local_align(b"AAAAAAAACCAAAAAAAA", b"AAAAAAAAAAAAAAAA", &sc());
        assert_eq!(one_gap.score, 16 - 3 - 2);
        let two_gaps = affine_local_align(b"AAAAACCAAAAAACCAAAAA", b"AAAAAAAAAAAAAAAA", &sc());
        // Splitting the interruptions costs at least one extra open
        // relative to the single-gap pair, however the DP mixes gaps and
        // mismatches around the second run.
        assert!(one_gap.score > two_gaps.score);
    }

    #[test]
    fn matches_linear_when_open_is_zero_equivalent() {
        // With open = extend - extend ... emulate linear gaps by setting
        // open such that open + extend == linear gap and extend == linear
        // gap: open = 0 is invalid (must be < 0), so use -1/-1 vs linear -2.
        let affine = AffineScoring::new(ScoringScheme::DEFAULT, -1, -1);
        let lin = ScoringScheme::DEFAULT; // gap = -2 = open+extend
        let pairs: [(&[u8], &[u8]); 3] = [
            (b"ACGTACGT", b"ACGACGT"),
            (b"GATTACA", b"GATCA"),
            (b"AAAA", b"TTTT"),
        ];
        for (a, b) in pairs {
            let got = affine_local_align(a, b, &affine).score;
            let expect = local_align(a, b, &lin).score;
            assert_eq!(got, expect, "{:?}", std::str::from_utf8(a));
        }
    }

    #[test]
    fn local_floor_zero() {
        let r = affine_local_align(b"AAAA", b"TTTT", &sc());
        assert_eq!(r.score, 0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(affine_local_align(b"", b"ACGT", &sc()).score, 0);
        assert_eq!(affine_local_align(b"ACGT", b"", &sc()).score, 0);
    }

    #[test]
    fn affine_never_beats_equivalent_linear_bound() {
        // With open <= 0, affine local score <= linear local score at
        // gap = extend (the affine model only adds penalties).
        let affine = sc();
        let mut lin = ScoringScheme::DEFAULT;
        lin.gap = affine.gap_extend;
        let a = b"ACGGATTACAGGATCC";
        let b = b"ACGGTTACAGGTCC";
        let ga = affine_local_align(a, b, &affine).score;
        let gl = local_align(a, b, &lin).score;
        assert!(ga <= gl, "{ga} > {gl}");
    }

    #[test]
    #[should_panic(expected = "open")]
    fn rejects_positive_open() {
        let _ = AffineScoring::new(ScoringScheme::DEFAULT, 1, -1);
    }
}
