//! Smith–Waterman local alignment (exact, O(nm)).
//!
//! The exact local aligner is the oracle for X-drop validation: an X-drop
//! extension anchored anywhere can never out-score the optimal local
//! alignment, and for generous X the two coincide on well-matched pairs.

use crate::scoring::ScoringScheme;

/// Result of a local alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Best local score (≥ 0).
    pub score: i32,
    /// End position in `a` (exclusive; 0 if the best alignment is empty).
    pub a_end: usize,
    /// End position in `b` (exclusive).
    pub b_end: usize,
    /// DP cells evaluated.
    pub cells: u64,
}

/// Computes the optimal local alignment score of `a` vs `b` and where it
/// ends. Linear space (two rows); ties broken toward the smallest
/// `(a_end, b_end)` for determinism.
pub fn local_align(a: &[u8], b: &[u8], sc: &ScoringScheme) -> LocalAlignment {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<i32> = vec![0; m + 1];
    let mut cur: Vec<i32> = vec![0; m + 1];
    let mut best = LocalAlignment {
        score: 0,
        a_end: 0,
        b_end: 0,
        cells: (n as u64) * (m as u64),
    };
    for i in 1..=n {
        cur[0] = 0;
        let ai = a[i - 1];
        for j in 1..=m {
            let diag = prev[j - 1] + sc.substitution(ai, b[j - 1]);
            let up = prev[j] + sc.gap;
            let left = cur[j - 1] + sc.gap;
            let h = diag.max(up).max(left).max(0);
            cur[j] = h;
            if h > best.score {
                best.score = h;
                best.a_end = i;
                best.b_end = j;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// One CIGAR-style alignment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarOp {
    /// Matching bases (`=`).
    Match(u32),
    /// Substitution (`X`).
    Mismatch(u32),
    /// Insertion relative to `b` — consumes `a` only (`I`).
    Ins(u32),
    /// Deletion relative to `b` — consumes `b` only (`D`).
    Del(u32),
}

/// A local alignment with its traceback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedAlignment {
    /// Score and end coordinates.
    pub aln: LocalAlignment,
    /// Start of the aligned span in `a` (inclusive).
    pub a_begin: usize,
    /// Start of the aligned span in `b` (inclusive).
    pub b_begin: usize,
    /// Run-length-encoded operations from `(a_begin, b_begin)` to the end.
    pub cigar: Vec<CigarOp>,
}

impl TracedAlignment {
    /// The CIGAR as a compact string (`=XID` alphabet).
    pub fn cigar_string(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for op in &self.cigar {
            let (n, c) = match op {
                CigarOp::Match(n) => (n, '='),
                CigarOp::Mismatch(n) => (n, 'X'),
                CigarOp::Ins(n) => (n, 'I'),
                CigarOp::Del(n) => (n, 'D'),
            };
            let _ = write!(s, "{n}{c}");
        }
        s
    }
}

/// Smith–Waterman with full traceback.
///
/// Keeps an O(nm) byte matrix of backpointers — intended for inspecting
/// individual alignments (report generation, validation), not for the bulk
/// many-to-many pipeline, which only needs scores and extents.
pub fn local_align_traced(a: &[u8], b: &[u8], sc: &ScoringScheme) -> TracedAlignment {
    const STOP: u8 = 0;
    const DIAG: u8 = 1;
    const UP: u8 = 2; // consumes a
    const LEFT: u8 = 3; // consumes b
    let (n, m) = (a.len(), b.len());
    let mut ptr = vec![STOP; (n + 1) * (m + 1)];
    let mut prev: Vec<i32> = vec![0; m + 1];
    let mut cur: Vec<i32> = vec![0; m + 1];
    let mut best = LocalAlignment {
        score: 0,
        a_end: 0,
        b_end: 0,
        cells: (n as u64) * (m as u64),
    };
    for i in 1..=n {
        cur[0] = 0;
        for j in 1..=m {
            let diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
            let up = prev[j] + sc.gap;
            let left = cur[j - 1] + sc.gap;
            // Deterministic preference: diag > up > left > stop.
            let (h, p) = [(diag, DIAG), (up, UP), (left, LEFT), (0, STOP)]
                .into_iter()
                .max_by_key(|&(v, tag)| (v, std::cmp::Reverse(tag)))
                .unwrap();
            cur[j] = h;
            ptr[i * (m + 1) + j] = if h == 0 { STOP } else { p };
            if h > best.score {
                best.score = h;
                best.a_end = i;
                best.b_end = j;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    // Walk back from the best cell.
    let mut ops_rev: Vec<CigarOp> = Vec::new();
    let (mut i, mut j) = (best.a_end, best.b_end);
    let push = |op: CigarOp, ops: &mut Vec<CigarOp>| match (ops.last_mut(), op) {
        (Some(CigarOp::Match(n)), CigarOp::Match(k)) => *n += k,
        (Some(CigarOp::Mismatch(n)), CigarOp::Mismatch(k)) => *n += k,
        (Some(CigarOp::Ins(n)), CigarOp::Ins(k)) => *n += k,
        (Some(CigarOp::Del(n)), CigarOp::Del(k)) => *n += k,
        (_, op) => ops.push(op),
    };
    while i > 0 && j > 0 {
        match ptr[i * (m + 1) + j] {
            DIAG => {
                let op = if a[i - 1] == b[j - 1] && a[i - 1] != b'N' {
                    CigarOp::Match(1)
                } else {
                    CigarOp::Mismatch(1)
                };
                push(op, &mut ops_rev);
                i -= 1;
                j -= 1;
            }
            UP => {
                push(CigarOp::Ins(1), &mut ops_rev);
                i -= 1;
            }
            LEFT => {
                push(CigarOp::Del(1), &mut ops_rev);
                j -= 1;
            }
            _ => break, // STOP
        }
    }
    ops_rev.reverse();
    TracedAlignment {
        aln: best,
        a_begin: i,
        b_begin: j,
        cigar: ops_rev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;

    #[test]
    fn identical_strings() {
        let r = local_align(b"ACGT", b"ACGT", &SC);
        assert_eq!(r.score, 4);
        assert_eq!((r.a_end, r.b_end), (4, 4));
    }

    #[test]
    fn traceback_identity() {
        let t = local_align_traced(b"ACGTACGT", b"ACGTACGT", &SC);
        assert_eq!(t.aln.score, 8);
        assert_eq!(t.a_begin, 0);
        assert_eq!(t.cigar, vec![CigarOp::Match(8)]);
        assert_eq!(t.cigar_string(), "8=");
    }

    #[test]
    fn traceback_substitution() {
        let t = local_align_traced(b"AAAACAAAA", b"AAAAGAAAA", &SC);
        // 4 match, 1 mismatch (-2), 4 match = 6; still optimal locally.
        assert_eq!(t.aln.score, 6);
        assert_eq!(t.cigar_string(), "4=1X4=");
    }

    #[test]
    fn traceback_indel() {
        let t = local_align_traced(b"AAAATTTT", b"AAAACTTTT", &SC);
        assert_eq!(t.cigar_string(), "4=1D4=");
        let t = local_align_traced(b"AAAACTTTT", b"AAAATTTT", &SC);
        assert_eq!(t.cigar_string(), "4=1I4=");
    }

    #[test]
    fn traceback_trims_to_local_core() {
        // Junk flanks: the traceback must cover only the common core.
        let t = local_align_traced(b"TTTTGATTACA", b"CCCCGATTACA", &SC);
        assert_eq!(t.aln.score, 7);
        assert_eq!(t.a_begin, 4);
        assert_eq!(t.b_begin, 4);
        assert_eq!(t.cigar_string(), "7=");
    }

    #[test]
    fn traceback_score_consistency() {
        // Recomputing the score from the CIGAR reproduces the DP score,
        // and spans are consumed exactly.
        let a = b"ACGGATTACAGGATCCGATTAC";
        let b = b"ACGGATTTACAGGTCCGATTAC";
        let t = local_align_traced(a, b, &SC);
        assert_eq!(t.aln.score, local_align(a, b, &SC).score);
        let (mut score, mut ai, mut bj) = (0i32, t.a_begin, t.b_begin);
        for op in &t.cigar {
            match *op {
                CigarOp::Match(n) => {
                    for _ in 0..n {
                        assert_eq!(a[ai], b[bj]);
                        score += SC.match_score;
                        ai += 1;
                        bj += 1;
                    }
                }
                CigarOp::Mismatch(n) => {
                    for _ in 0..n {
                        assert!(a[ai] != b[bj] || a[ai] == b'N');
                        score += SC.mismatch;
                        ai += 1;
                        bj += 1;
                    }
                }
                CigarOp::Ins(n) => {
                    score += SC.gap * n as i32;
                    ai += n as usize;
                }
                CigarOp::Del(n) => {
                    score += SC.gap * n as i32;
                    bj += n as usize;
                }
            }
        }
        assert_eq!(score, t.aln.score);
        assert_eq!(ai, t.aln.a_end);
        assert_eq!(bj, t.aln.b_end);
    }

    #[test]
    fn traceback_empty_alignment() {
        let t = local_align_traced(b"AAAA", b"TTTT", &SC);
        assert_eq!(t.aln.score, 0);
        assert!(t.cigar.is_empty());
        assert_eq!(t.cigar_string(), "");
    }

    #[test]
    fn embedded_match() {
        // Best local alignment is the common core "GATTACA".
        let r = local_align(b"TTTTGATTACATTTT", b"CCCGATTACACCC", &SC);
        assert_eq!(r.score, 7);
        assert_eq!(r.a_end, 11);
        assert_eq!(r.b_end, 10);
    }

    #[test]
    fn disjoint_strings_score_small() {
        let r = local_align(b"AAAAAAA", b"TTTTTTT", &SC);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn local_at_least_global() {
        let a = b"GATTACAGATTACA";
        let b = b"GATCACAGTTAC";
        let g = crate::nw::global_score(a, b, &SC).score;
        let l = local_align(a, b, &SC).score;
        assert!(l >= g);
        assert!(l >= 0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(local_align(b"", b"ACGT", &SC).score, 0);
        assert_eq!(local_align(b"ACGT", b"", &SC).score, 0);
        assert_eq!(local_align(b"", b"", &SC).score, 0);
    }

    #[test]
    fn symmetry_of_score() {
        let a = b"ACGGTTACGATCG";
        let b = b"CGGTAACGTTCG";
        assert_eq!(local_align(a, b, &SC).score, local_align(b, a, &SC).score);
    }

    #[test]
    fn n_runs_do_not_align() {
        // N-vs-N is a mismatch, so an all-N pair has no positive alignment.
        let r = local_align(b"NNNNNN", b"NNNNNN", &SC);
        assert_eq!(r.score, 0);
    }
}
