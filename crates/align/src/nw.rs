//! Needleman–Wunsch global alignment (exact, O(nm)).
//!
//! Used as a correctness oracle for the banded kernels and as the
//! "quadratic exact DP" baseline the paper contrasts seed-and-extend
//! against (§2: exact algorithms are O(n²) in the longer read).

use crate::scoring::ScoringScheme;

/// Result of a global alignment score computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalScore {
    /// Optimal end-to-end alignment score.
    pub score: i32,
    /// DP cells evaluated (`(n+1)·(m+1)` minus the border).
    pub cells: u64,
}

/// Computes the optimal global (end-to-end) alignment score of `a` vs `b`.
///
/// Linear space: keeps two DP rows.
pub fn global_score(a: &[u8], b: &[u8], sc: &ScoringScheme) -> GlobalScore {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<i32> = (0..=m as i32).map(|j| j * sc.gap).collect();
    let mut cur: Vec<i32> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i as i32 * sc.gap;
        let ai = a[i - 1];
        for j in 1..=m {
            let diag = prev[j - 1] + sc.substitution(ai, b[j - 1]);
            let up = prev[j] + sc.gap;
            let left = cur[j - 1] + sc.gap;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    GlobalScore {
        score: prev[m],
        cells: (n as u64) * (m as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: ScoringScheme = ScoringScheme::DEFAULT;

    #[test]
    fn identical_strings() {
        let r = global_score(b"ACGTACGT", b"ACGTACGT", &SC);
        assert_eq!(r.score, 8);
        assert_eq!(r.cells, 64);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(global_score(b"", b"ACG", &SC).score, 3 * SC.gap);
        assert_eq!(global_score(b"ACG", b"", &SC).score, 3 * SC.gap);
        assert_eq!(global_score(b"", b"", &SC).score, 0);
    }

    #[test]
    fn single_substitution() {
        assert_eq!(global_score(b"ACGT", b"AGGT", &SC).score, 3 + SC.mismatch);
    }

    #[test]
    fn single_indel() {
        assert_eq!(global_score(b"ACGT", b"ACT", &SC).score, 3 + SC.gap);
    }

    #[test]
    fn symmetry() {
        let a = b"GATTACAGATTACA";
        let b = b"GATCACAGTTAC";
        assert_eq!(global_score(a, b, &SC).score, global_score(b, a, &SC).score);
    }

    #[test]
    fn score_upper_bound() {
        // Global score can never exceed match * min(len).
        let a = b"ACGTACGTAA";
        let b = b"TTACGTAC";
        let s = global_score(a, b, &SC).score;
        assert!(s <= SC.match_score * b.len() as i32);
    }
}
