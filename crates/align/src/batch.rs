//! Rayon-parallel batch alignment.
//!
//! This is the shared-memory execution path: a downstream user with a
//! multicore machine aligns an entire candidate set with work-stealing
//! parallelism, one [`SeedExtendScratch`] per worker. It also provides the
//! measured per-task costs used to calibrate the simulator's cost model.

use crate::scoring::ScoringScheme;
use crate::seed_extend::{
    align_candidate_with, AcceptCriteria, AlignmentRecord, Candidate, SeedExtendScratch,
};
use gnb_genome::ReadSet;
use rayon::prelude::*;

/// Outcome of a batch alignment.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One record per input candidate, in input order.
    pub records: Vec<AlignmentRecord>,
    /// Total DP cells across all tasks.
    pub total_cells: u64,
    /// Wall-clock time of the parallel region.
    pub elapsed: std::time::Duration,
}

impl BatchOutcome {
    /// The accepted alignments only.
    pub fn accepted(&self) -> impl Iterator<Item = &AlignmentRecord> {
        self.records.iter().filter(|r| r.accepted)
    }

    /// Number of accepted alignments.
    pub fn accepted_count(&self) -> usize {
        self.records.iter().filter(|r| r.accepted).count()
    }
}

/// Alignment parameters shared across a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlignParams {
    /// Seed length (the k used for candidate discovery).
    pub k: usize,
    /// Scoring scheme.
    pub scoring: ScoringScheme,
    /// X-drop threshold.
    pub x: i32,
    /// Acceptance criteria.
    pub criteria: AcceptCriteria,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            k: 17,
            scoring: ScoringScheme::DEFAULT,
            x: 25,
            criteria: AcceptCriteria::default(),
        }
    }
}

/// Aligns every candidate in parallel. Records are returned in input order
/// (rayon's indexed map preserves order), so results are deterministic.
pub fn align_batch(reads: &ReadSet, tasks: &[Candidate], params: &AlignParams) -> BatchOutcome {
    // gnb-lint: allow(wall-clock, reason = "measures real alignment wall time; deterministic outputs are the records, not the timing")
    let start = std::time::Instant::now();
    let records: Vec<AlignmentRecord> = tasks
        .par_iter()
        .map_init(SeedExtendScratch::new, |scratch, cand| {
            align_candidate_with(
                scratch,
                reads.read(cand.a as usize),
                reads.read(cand.b as usize),
                cand,
                params.k,
                &params.scoring,
                params.x,
                &params.criteria,
            )
        })
        .collect();
    let elapsed = start.elapsed();
    let total_cells = records.iter().map(|r| r.cells).sum();
    BatchOutcome {
        records,
        total_cells,
        elapsed,
    }
}

/// Serial reference driver (validation and single-thread baselines).
pub fn align_batch_serial(
    reads: &ReadSet,
    tasks: &[Candidate],
    params: &AlignParams,
) -> BatchOutcome {
    // gnb-lint: allow(wall-clock, reason = "measures real alignment wall time; deterministic outputs are the records, not the timing")
    let start = std::time::Instant::now();
    let mut scratch = SeedExtendScratch::new();
    let records: Vec<AlignmentRecord> = tasks
        .iter()
        .map(|cand| {
            align_candidate_with(
                &mut scratch,
                reads.read(cand.a as usize),
                reads.read(cand.b as usize),
                cand,
                params.k,
                &params.scoring,
                params.x,
                &params.criteria,
            )
        })
        .collect();
    let elapsed = start.elapsed();
    let total_cells = records.iter().map(|r| r.cells).sum();
    BatchOutcome {
        records,
        total_cells,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::reads::{ReadOrigin, Strand};

    fn make_reads() -> (ReadSet, Vec<Candidate>) {
        let bases = b"ACGT";
        let gen = |seed: usize, n: usize| -> Vec<u8> {
            (0..n)
                .map(|i| bases[(i * 7 + seed * 13 + i / 3) % 4])
                .collect()
        };
        let core = gen(5, 600);
        let a: Vec<u8> = gen(1, 200).into_iter().chain(core.clone()).collect();
        let b: Vec<u8> = core.into_iter().chain(gen(2, 200)).collect();
        let mut rs = ReadSet::new();
        let o = ReadOrigin {
            start: 0,
            ref_len: 0,
            strand: Strand::Forward,
        };
        rs.push(&a, o);
        rs.push(&b, o);
        let cands = vec![
            Candidate {
                a: 0,
                b: 1,
                a_pos: 400,
                b_pos: 200,
                same_strand: true,
            },
            Candidate {
                a: 1,
                b: 0,
                a_pos: 100,
                b_pos: 300,
                same_strand: true,
            },
        ];
        (rs, cands)
    }

    fn params() -> AlignParams {
        AlignParams {
            k: 17,
            scoring: ScoringScheme::DEFAULT,
            x: 25,
            criteria: AcceptCriteria {
                min_score: 100,
                min_overlap: 100,
            },
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (reads, cands) = make_reads();
        let p = params();
        let par = align_batch(&reads, &cands, &p);
        let ser = align_batch_serial(&reads, &cands, &p);
        assert_eq!(par.records, ser.records);
        assert_eq!(par.total_cells, ser.total_cells);
    }

    #[test]
    fn both_candidates_accepted() {
        let (reads, cands) = make_reads();
        let out = align_batch(&reads, &cands, &params());
        assert_eq!(out.accepted_count(), 2);
        for r in out.accepted() {
            assert_eq!(r.score, 600);
        }
    }

    #[test]
    fn empty_batch() {
        let (reads, _) = make_reads();
        let out = align_batch(&reads, &[], &params());
        assert!(out.records.is_empty());
        assert_eq!(out.total_cells, 0);
        assert_eq!(out.accepted_count(), 0);
    }

    #[test]
    fn records_in_input_order() {
        let (reads, mut cands) = make_reads();
        cands.reverse();
        let out = align_batch(&reads, &cands, &params());
        assert_eq!(out.records[0].a, cands[0].a);
        assert_eq!(out.records[1].a, cands[1].a);
    }
}
