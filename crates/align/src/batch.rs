//! Rayon-parallel batch alignment.
//!
//! This is the shared-memory execution path: a downstream user with a
//! multicore machine aligns an entire candidate set with work-stealing
//! parallelism, one [`SeedExtendScratch`] per worker. It also provides the
//! measured per-task costs used to calibrate the simulator's cost model.

use crate::scoring::ScoringScheme;
use crate::seed_extend::{
    align_candidate_packed_with, align_candidate_with, AcceptCriteria, AlignmentRecord, Candidate,
    SeedExtendScratch,
};
use crate::KernelImpl;
use gnb_genome::ReadSet;
use rayon::prelude::*;

/// Outcome of a batch alignment.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One record per input candidate, in input order.
    pub records: Vec<AlignmentRecord>,
    /// Total DP cells across all tasks.
    pub total_cells: u64,
    /// Wall-clock time of the parallel region.
    pub elapsed: std::time::Duration,
}

impl BatchOutcome {
    /// The accepted alignments only.
    pub fn accepted(&self) -> impl Iterator<Item = &AlignmentRecord> {
        self.records.iter().filter(|r| r.accepted)
    }

    /// Number of accepted alignments.
    pub fn accepted_count(&self) -> usize {
        self.records.iter().filter(|r| r.accepted).count()
    }
}

/// Alignment parameters shared across a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlignParams {
    /// Seed length (the k used for candidate discovery).
    pub k: usize,
    /// Scoring scheme.
    pub scoring: ScoringScheme,
    /// X-drop threshold.
    pub x: i32,
    /// Acceptance criteria.
    pub criteria: AcceptCriteria,
    /// Kernel implementation [`align_batch`] runs (the serial reference
    /// driver always uses the scalar kernel — see [`align_batch_serial`]).
    pub kernel: KernelImpl,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            k: 17,
            scoring: ScoringScheme::DEFAULT,
            x: 25,
            criteria: AcceptCriteria::default(),
            kernel: KernelImpl::default(),
        }
    }
}

/// Aligns one candidate with the kernel `params` selects.
fn align_one(
    scratch: &mut SeedExtendScratch,
    reads: &ReadSet,
    cand: &Candidate,
    params: &AlignParams,
) -> AlignmentRecord {
    match params.kernel {
        KernelImpl::Scalar => align_candidate_with(
            scratch,
            reads.read(cand.a as usize),
            reads.read(cand.b as usize),
            cand,
            params.k,
            &params.scoring,
            params.x,
            &params.criteria,
        ),
        KernelImpl::Packed => align_candidate_packed_with(
            scratch,
            reads.packed_read(cand.a as usize),
            reads.packed_read(cand.b as usize),
            cand,
            params.k,
            &params.scoring,
            params.x,
            &params.criteria,
        ),
        // The batched kernel is a whole-batch engine, not a per-candidate
        // one: `align_batch` routes to its own driver before reaching here.
        KernelImpl::Batched => unreachable!("Batched is handled by align_batch_batched"),
    }
}

/// Aligns every candidate in parallel; records are returned in input order,
/// so results are deterministic and independent of the schedule.
///
/// Internally tasks run **longest-first**: candidates are ordered by
/// descending `len(a) + len(b)` (a cheap upper-bound cost proxy — a task's
/// true cost is unknowable before it runs, §4.2 of the paper) so a huge
/// true-overlap task picked up last cannot leave one worker aligning alone
/// after the rest of the pool drains. Results are scattered back to input
/// order before returning, making the schedule unobservable.
pub fn align_batch(reads: &ReadSet, tasks: &[Candidate], params: &AlignParams) -> BatchOutcome {
    if params.kernel == KernelImpl::Batched {
        // The inter-sequence engine schedules the whole batch itself
        // (length buckets + lane refill) — same longest-first order, same
        // input-order records, bit-identical results.
        return crate::interseq::align_batch_batched(reads, tasks, params);
    }
    // gnb-lint: allow(wall-clock, reason = "measures real alignment wall time; deterministic outputs are the records, not the timing")
    let start = std::time::Instant::now();
    let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
    // Stable sort: equal-length tasks keep input order, so the schedule
    // itself is deterministic too.
    order.sort_by_key(|&t| {
        let c = &tasks[t as usize];
        std::cmp::Reverse(reads.read_len(c.a as usize) + reads.read_len(c.b as usize))
    });
    let scheduled: Vec<(u32, AlignmentRecord)> = order
        .par_iter()
        .map_init(SeedExtendScratch::new, |scratch, &t| {
            (t, align_one(scratch, reads, &tasks[t as usize], params))
        })
        .collect();
    let mut slots: Vec<Option<AlignmentRecord>> = vec![None; tasks.len()];
    for (t, rec) in scheduled {
        slots[t as usize] = Some(rec);
    }
    let records: Vec<AlignmentRecord> = slots
        .into_iter()
        .map(|r| r.expect("every task scheduled exactly once"))
        .collect();
    let elapsed = start.elapsed();
    let total_cells = records.iter().map(|r| r.cells).sum();
    BatchOutcome {
        records,
        total_cells,
        elapsed,
    }
}

/// Serial reference driver (validation and single-thread baselines).
///
/// Always runs the scalar reference kernel in input order, regardless of
/// `params.kernel` — it *is* the reference the parallel path is validated
/// against, so comparing [`align_batch`] (packed, longest-first) to this
/// function cross-checks both the kernel and the schedule.
pub fn align_batch_serial(
    reads: &ReadSet,
    tasks: &[Candidate],
    params: &AlignParams,
) -> BatchOutcome {
    // gnb-lint: allow(wall-clock, reason = "measures real alignment wall time; deterministic outputs are the records, not the timing")
    let start = std::time::Instant::now();
    let mut scratch = SeedExtendScratch::new();
    let records: Vec<AlignmentRecord> = tasks
        .iter()
        .map(|cand| {
            align_candidate_with(
                &mut scratch,
                reads.read(cand.a as usize),
                reads.read(cand.b as usize),
                cand,
                params.k,
                &params.scoring,
                params.x,
                &params.criteria,
            )
        })
        .collect();
    let elapsed = start.elapsed();
    let total_cells = records.iter().map(|r| r.cells).sum();
    BatchOutcome {
        records,
        total_cells,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::reads::{ReadOrigin, Strand};

    fn make_reads() -> (ReadSet, Vec<Candidate>) {
        let bases = b"ACGT";
        let gen = |seed: usize, n: usize| -> Vec<u8> {
            (0..n)
                .map(|i| bases[(i * 7 + seed * 13 + i / 3) % 4])
                .collect()
        };
        let core = gen(5, 600);
        let a: Vec<u8> = gen(1, 200).into_iter().chain(core.clone()).collect();
        let b: Vec<u8> = core.into_iter().chain(gen(2, 200)).collect();
        let mut rs = ReadSet::new();
        let o = ReadOrigin {
            start: 0,
            ref_len: 0,
            strand: Strand::Forward,
        };
        rs.push(&a, o);
        rs.push(&b, o);
        let cands = vec![
            Candidate {
                a: 0,
                b: 1,
                a_pos: 400,
                b_pos: 200,
                same_strand: true,
            },
            Candidate {
                a: 1,
                b: 0,
                a_pos: 100,
                b_pos: 300,
                same_strand: true,
            },
        ];
        (rs, cands)
    }

    fn params() -> AlignParams {
        AlignParams {
            k: 17,
            scoring: ScoringScheme::DEFAULT,
            x: 25,
            criteria: AcceptCriteria {
                min_score: 100,
                min_overlap: 100,
            },
            ..AlignParams::default()
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // The default parallel path (packed kernel, longest-first schedule)
        // must agree record-for-record with the scalar in-order reference.
        let (reads, cands) = make_reads();
        let p = params();
        let par = align_batch(&reads, &cands, &p);
        let ser = align_batch_serial(&reads, &cands, &p);
        assert_eq!(par.records, ser.records);
        assert_eq!(par.total_cells, ser.total_cells);
    }

    #[test]
    fn kernel_selection_is_result_invariant() {
        let (reads, cands) = make_reads();
        let scalar = align_batch(
            &reads,
            &cands,
            &AlignParams {
                kernel: crate::KernelImpl::Scalar,
                ..params()
            },
        );
        let packed = align_batch(
            &reads,
            &cands,
            &AlignParams {
                kernel: crate::KernelImpl::Packed,
                ..params()
            },
        );
        let batched = align_batch(
            &reads,
            &cands,
            &AlignParams {
                kernel: crate::KernelImpl::Batched,
                ..params()
            },
        );
        assert_eq!(scalar.records, packed.records);
        assert_eq!(scalar.total_cells, packed.total_cells);
        assert_eq!(scalar.records, batched.records);
        assert_eq!(scalar.total_cells, batched.total_cells);
    }

    #[test]
    fn both_candidates_accepted() {
        let (reads, cands) = make_reads();
        let out = align_batch(&reads, &cands, &params());
        assert_eq!(out.accepted_count(), 2);
        for r in out.accepted() {
            assert_eq!(r.score, 600);
        }
    }

    #[test]
    fn empty_batch() {
        let (reads, _) = make_reads();
        let out = align_batch(&reads, &[], &params());
        assert!(out.records.is_empty());
        assert_eq!(out.total_cells, 0);
        assert_eq!(out.accepted_count(), 0);
    }

    #[test]
    fn records_in_input_order() {
        let (reads, mut cands) = make_reads();
        cands.reverse();
        let out = align_batch(&reads, &cands, &params());
        assert_eq!(out.records[0].a, cands[0].a);
        assert_eq!(out.records[1].a, cands[1].a);
    }

    #[test]
    fn mixed_lengths_scatter_back_to_input_order() {
        // A short pair queued before a long pair: the longest-first
        // schedule runs them in the opposite order, but the outputs must
        // land back in input order.
        let (mut reads, _) = make_reads();
        let o = ReadOrigin {
            start: 0,
            ref_len: 0,
            strand: Strand::Forward,
        };
        let short: Vec<u8> = (0..60)
            .map(|i| b"ACGT"[(i * 7 + 5 * 13 + i / 3) % 4])
            .collect();
        let s0 = reads.push(&short, o);
        let s1 = reads.push(&short, o);
        let cands = vec![
            Candidate {
                a: s0,
                b: s1,
                a_pos: 10,
                b_pos: 10,
                same_strand: true,
            },
            Candidate {
                a: 0,
                b: 1,
                a_pos: 400,
                b_pos: 200,
                same_strand: true,
            },
        ];
        let out = align_batch(&reads, &cands, &params());
        let ser = align_batch_serial(&reads, &cands, &params());
        assert_eq!(out.records, ser.records);
        assert_eq!((out.records[0].a, out.records[0].b), (s0, s1));
        assert_eq!((out.records[1].a, out.records[1].b), (0, 1));
    }
}
