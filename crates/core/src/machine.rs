//! Simulated machine configurations.
//!
//! The experimental platform of the paper is NERSC's Cori: Cray XC40,
//! single-socket Intel Xeon Phi 7250 (KNL) nodes — 68 cores at 1.4 GHz, of
//! which 64 run the application and 4 are left to the OS; 96 GB DDR4 per
//! node of which roughly 1.4 GB/core is application-available (§4.5); Cray
//! Aries interconnect in a dragonfly. [`MachineConfig::cori_knl`] encodes
//! those numbers over the `gnb-sim` network model.

use gnb_sim::NetParams;
use serde::{Deserialize, Serialize};

/// A simulated machine: topology, memory, and compute speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Application cores (ranks) per node.
    pub cores_per_node: usize,
    /// Application-available memory per core, bytes.
    pub mem_per_core: u64,
    /// Network parameters.
    pub net: NetParams,
    /// DP-cell throughput of one core, cells/second. The default is
    /// KNL-class (~1.4 GHz, modest IPC on irregular integer DP);
    /// EXPERIMENTS.md documents the host calibration that informs it.
    pub cells_per_sec: f64,
    /// CPU time to service one incoming RPC lookup (index lookup + reply
    /// injection), ns.
    pub rpc_service_ns: u64,
    /// CPU time to inject one outgoing RPC request, ns.
    pub rpc_inject_ns: u64,
    /// Workload scale divisor this machine is paired with (1.0 = paper
    /// scale). Communication-efficiency laws use full-scale-equivalent
    /// per-peer sizes so fractions stay scale-invariant; see
    /// EXPERIMENTS.md "Scaling methodology".
    pub volume_scale: f64,
}

impl MachineConfig {
    /// Cori KNL with `nodes` nodes: 64 app cores/node, ~1.4 GB/core,
    /// Aries-class network.
    pub fn cori_knl(nodes: usize) -> MachineConfig {
        assert!(nodes >= 1);
        MachineConfig {
            nodes,
            cores_per_node: 64,
            mem_per_core: (1.4 * (1u64 << 30) as f64) as u64,
            net: NetParams {
                ranks_per_node: 64,
                alpha_ns: 1_500,
                intra_alpha_ns: 400,
                node_bw_bytes_per_sec: 8.0e9,
                per_msg_overhead_ns: 500,
                taper: 0.7,
            },
            // KNL cores run at 1.4 GHz with weak scalar IPC; ~2e7 DP
            // cells/s reproduces the paper's per-task arithmetic (E. coli
            // 30x: ~1 h single-core for 2.27M tasks ≈ 1.6 ms/task).
            cells_per_sec: 2.0e7,
            rpc_service_ns: 2_000,
            rpc_inject_ns: 700,
            volume_scale: 1.0,
        }
    }

    /// Same machine with a different application core count per node
    /// (the paper's 64-vs-68-core experiments, Fig. 3).
    pub fn with_cores_per_node(mut self, cores: usize) -> MachineConfig {
        assert!(cores >= 1);
        self.cores_per_node = cores;
        self.net.ranks_per_node = cores;
        // 68-core runs lose the system-overhead isolation: model the OS
        // noise as a small per-core compute slowdown (the paper: "the
        // slight improvement in computation time is cancelled-out by a
        // slight increase in overheads").
        self
    }

    /// Total ranks (application cores).
    pub fn nranks(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Seconds of one core computing `cells` DP cells.
    pub fn compute_secs(&self, cells: f64) -> f64 {
        cells / self.cells_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_defaults() {
        let m = MachineConfig::cori_knl(8);
        assert_eq!(m.nranks(), 512);
        assert_eq!(m.net.ranks_per_node, 64);
        assert!(m.mem_per_core > 1 << 30);
    }

    #[test]
    fn cores_override_updates_network() {
        let m = MachineConfig::cori_knl(1).with_cores_per_node(68);
        assert_eq!(m.nranks(), 68);
        assert_eq!(m.net.ranks_per_node, 68);
    }

    #[test]
    fn compute_time_scales_with_cells() {
        let m = MachineConfig::cori_knl(1);
        let one = m.compute_secs(m.cells_per_sec);
        assert!((one - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let _ = MachineConfig::cori_knl(0);
    }
}
