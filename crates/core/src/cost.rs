//! The per-task alignment cost model.
//!
//! In simulation, an alignment task is not executed — its cost is modelled
//! in DP cells, the machine-independent unit every `gnb-align` kernel
//! reports, then converted to core-seconds by the machine's cell rate.
//!
//! The model mirrors the X-drop kernel's behaviour (validated against it by
//! `tests/cost_calibration.rs`):
//!
//! * **true overlap** of `v` bp: the live band tracks the main diagonal
//!   over ≈ 2·v antidiagonals at a roughly constant width set by the X
//!   threshold and scoring, so `cells ≈ band_width · v` (+ a per-task
//!   floor). Deterministic per-task jitter models the variance from error
//!   bursts and band wobble;
//! * **false positive** (no genomic overlap): the band dies within a few
//!   dozen antidiagonals — a small, nearly constant cost, again jittered.
//!
//! This cost asymmetry is the paper's central irregularity: tasks are
//! balanced by *count*, but their costs vary by orders of magnitude
//! (§4.2, Fig. 5).

use gnb_align::Candidate;
use serde::{Deserialize, Serialize};

/// Cells-per-task model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// DP cells per base pair of true overlap (≈ the steady-state band
    /// width of the X-drop extension).
    pub cells_per_overlap_bp: f64,
    /// Mean DP cells of a false-positive task (band dies early).
    pub fp_cells: f64,
    /// Per-task floor (seed scoring, extension setup), cells.
    pub base_cells: f64,
    /// Relative jitter amplitude (0–1): per-task multiplicative variation
    /// in `[1 - j, 1 + j]`, deterministic in the task identity.
    pub jitter: f64,
    /// If `true`, every task costs zero cells — the paper's
    /// communication-only mode used for Fig. 7 ("a mode that executes
    /// everything except the pairwise alignment computation").
    pub skip_compute: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        // Fitted against the real X-drop kernel at X=25, +1/−2/−2 scoring
        // on CLR-error read pairs (see tests/cost_calibration.rs).
        CostModel {
            cells_per_overlap_bp: 38.0,
            fp_cells: 1_800.0,
            base_cells: 350.0,
            jitter: 0.35,
            skip_compute: false,
        }
    }
}

impl CostModel {
    /// The Fig. 7 communication-only variant.
    pub fn comm_only() -> CostModel {
        CostModel {
            skip_compute: true,
            ..CostModel::default()
        }
    }

    /// Modelled DP cells for a task with true genomic overlap
    /// `overlap_len` (0 = false positive).
    pub fn cells(&self, task: &Candidate, overlap_len: u32) -> f64 {
        if self.skip_compute {
            return 0.0;
        }
        let raw = if overlap_len == 0 {
            self.fp_cells + self.base_cells
        } else {
            self.base_cells + self.cells_per_overlap_bp * overlap_len as f64
        };
        raw * self.jitter_factor(task)
    }

    /// Deterministic per-task jitter in `[1 - jitter, 1 + jitter]`.
    fn jitter_factor(&self, task: &Candidate) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        let key = ((task.a as u64) << 32) | task.b as u64;
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 - self.jitter + 2.0 * self.jitter * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    #[test]
    fn true_overlap_scales_linearly() {
        let m = CostModel {
            jitter: 0.0,
            ..CostModel::default()
        };
        let c1 = m.cells(&task(0, 1), 1000);
        let c2 = m.cells(&task(0, 1), 2000);
        assert!((c2 - c1 - 1000.0 * m.cells_per_overlap_bp).abs() < 1e-9);
    }

    #[test]
    fn fp_is_cheap() {
        let m = CostModel {
            jitter: 0.0,
            ..CostModel::default()
        };
        let fp = m.cells(&task(0, 1), 0);
        let long = m.cells(&task(0, 1), 10_000);
        assert!(long > fp * 50.0, "true {long} vs fp {fp}");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = CostModel::default();
        for i in 0..100u32 {
            let t = task(i, i + 1);
            let a = m.cells(&t, 5000);
            let b = m.cells(&t, 5000);
            assert_eq!(a, b, "deterministic");
            let nominal = m.base_cells + m.cells_per_overlap_bp * 5000.0;
            assert!(a >= nominal * (1.0 - m.jitter) - 1e-6);
            assert!(a <= nominal * (1.0 + m.jitter) + 1e-6);
        }
    }

    #[test]
    fn jitter_varies_across_tasks() {
        let m = CostModel::default();
        let costs: Vec<f64> = (0..50).map(|i| m.cells(&task(i, i + 1), 5000)).collect();
        let distinct = costs
            .iter()
            .map(|c| (c * 1000.0) as u64)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct > 40, "jitter should vary: {distinct} distinct");
    }

    #[test]
    fn comm_only_zeroes_everything() {
        let m = CostModel::comm_only();
        assert_eq!(m.cells(&task(0, 1), 100_000), 0.0);
        assert_eq!(m.cells(&task(0, 1), 0), 0.0);
    }
}
