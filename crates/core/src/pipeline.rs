//! The real end-to-end pipeline on strings (shared-memory backend).
//!
//! This is what a downstream user runs: reads in, accepted overlap
//! alignments out, with rayon parallelism. It is also the ground truth the
//! simulator's synthetic path is calibrated against, and the source of the
//! *fixed* task graph for small-scale simulation experiments: DiBELLA's
//! stages (k-mer histogram → BELLA filter → seed index → candidates) run
//! for real, then the alignments are computed with the real X-drop kernel.

use gnb_align::batch::{align_batch, AlignParams, BatchOutcome};
use gnb_align::Candidate;
use gnb_genome::ReadSet;
use gnb_kmer::{count_kmers, BellaModel, SeedIndex};
use gnb_overlap::candidates::generate_candidates;
use gnb_overlap::synth::true_overlaps;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How seeds are selected for candidate discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SeedMode {
    /// Every retained k-mer occurrence (DiBELLA/BELLA as published).
    #[default]
    AllKmers,
    /// Minimizers with the given window (in k-mers) — the sparse
    /// seed-selection advance the paper anticipates (§4).
    Minimizers {
        /// Window width, in consecutive k-mers.
        w: usize,
    },
}

/// Pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineParams {
    /// k-mer length (the paper uses 17).
    pub k: usize,
    /// Sequencing coverage (drives the BELLA filter).
    pub coverage: f64,
    /// Per-base error rate (drives the BELLA filter).
    pub error_rate: f64,
    /// Seed selection strategy.
    pub seeds: SeedMode,
    /// Alignment parameters for the seed-and-extend stage.
    pub align: AlignParams,
}

impl PipelineParams {
    /// Standard parameters for a workload with the given coverage/error.
    pub fn new(coverage: f64, error_rate: f64) -> PipelineParams {
        PipelineParams {
            k: 17,
            coverage,
            error_rate,
            seeds: SeedMode::AllKmers,
            align: AlignParams::default(),
        }
    }
}

/// Wall-clock timings of the pipeline stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// k-mer counting.
    pub count: Duration,
    /// Frequency filtering.
    pub filter: Duration,
    /// Seed-index construction.
    pub index: Duration,
    /// Candidate generation.
    pub candidates: Duration,
    /// Pairwise alignment.
    pub align: Duration,
}

/// Full pipeline output.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The candidate tasks (the paper's "fixed input" for both codes).
    pub tasks: Vec<Candidate>,
    /// Ground-truth overlap length per task (0 = false positive).
    pub overlaps: Vec<u32>,
    /// Real alignment results for every task.
    pub outcome: BatchOutcome,
    /// Distinct k-mers before filtering.
    pub distinct_kmers: usize,
    /// Distinct k-mers retained by the BELLA filter.
    pub retained_kmers: usize,
    /// The BELLA reliable interval used.
    pub reliable_interval: (u32, u32),
    /// Stage timings.
    pub timings: PhaseTimings,
}

impl PipelineResult {
    /// Accepted alignments count.
    pub fn accepted(&self) -> usize {
        self.outcome.accepted_count()
    }

    /// Tasks per read (Table 1 density), given the read count.
    pub fn tasks_per_read(&self, reads: usize) -> f64 {
        if reads == 0 {
            0.0
        } else {
            self.tasks.len() as f64 / reads as f64
        }
    }
}

/// Runs the full pipeline over `reads`.
pub fn run_pipeline(reads: &ReadSet, params: &PipelineParams) -> PipelineResult {
    // gnb-lint: allow(wall-clock, reason = "real-host stage timing for throughput reporting; never feeds simulated results")
    let t0 = std::time::Instant::now();
    let mut counts = count_kmers(reads, params.k);
    let t_count = t0.elapsed();

    // gnb-lint: allow(wall-clock, reason = "real-host stage timing for throughput reporting; never feeds simulated results")
    let t1 = std::time::Instant::now();
    let distinct = counts.distinct();
    let model = BellaModel::new(params.coverage, params.error_rate, params.k);
    let (lo, hi) = model.reliable_interval();
    counts.filter_frequency(lo, hi);
    let retained = counts.distinct();
    let t_filter = t1.elapsed();

    // gnb-lint: allow(wall-clock, reason = "real-host stage timing for throughput reporting; never feeds simulated results")
    let t2 = std::time::Instant::now();
    let index = match params.seeds {
        SeedMode::AllKmers => SeedIndex::build(reads, &counts),
        SeedMode::Minimizers { w } => SeedIndex::build_minimizers(reads, &counts, w),
    };
    let t_index = t2.elapsed();

    // gnb-lint: allow(wall-clock, reason = "real-host stage timing for throughput reporting; never feeds simulated results")
    let t3 = std::time::Instant::now();
    let tasks = generate_candidates(&index);
    let t_candidates = t3.elapsed();

    // gnb-lint: allow(wall-clock, reason = "real-host stage timing for throughput reporting; never feeds simulated results")
    let t4 = std::time::Instant::now();
    let outcome = align_batch(reads, &tasks, &params.align);
    let t_align = t4.elapsed();

    let overlaps = true_overlaps(reads, &tasks);

    PipelineResult {
        tasks,
        overlaps,
        outcome,
        distinct_kmers: distinct,
        retained_kmers: retained,
        reliable_interval: (lo, hi),
        timings: PhaseTimings {
            count: t_count,
            filter: t_filter,
            index: t_index,
            candidates: t_candidates,
            align: t_align,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::presets;

    fn small_run() -> (ReadSet, PipelineResult) {
        let preset = presets::ecoli_30x().scaled(1024);
        let reads = preset.generate(31);
        let mut params = PipelineParams::new(preset.coverage, preset.errors.total_rate());
        params.align.criteria.min_score = 100;
        params.align.criteria.min_overlap = 300;
        let result = run_pipeline(&reads, &params);
        (reads, result)
    }

    #[test]
    fn pipeline_produces_accepted_overlaps() {
        let (reads, res) = small_run();
        assert!(!res.tasks.is_empty());
        assert!(res.accepted() > 0, "a 30x dataset must yield overlaps");
        assert!(res.retained_kmers <= res.distinct_kmers);
        assert!(res.retained_kmers > 0);
        assert_eq!(res.tasks.len(), res.overlaps.len());
        assert_eq!(res.outcome.records.len(), res.tasks.len());
        assert!(res.tasks_per_read(reads.len()) > 1.0);
    }

    #[test]
    fn accepted_alignments_are_mostly_true_overlaps() {
        let (_, res) = small_run();
        let mut accepted_true = 0usize;
        let mut accepted = 0usize;
        for (rec, &ov) in res.outcome.records.iter().zip(&res.overlaps) {
            if rec.accepted {
                accepted += 1;
                if ov > 0 {
                    accepted_true += 1;
                }
            }
        }
        assert!(accepted > 0);
        let precision = accepted_true as f64 / accepted as f64;
        assert!(
            precision > 0.9,
            "accepted alignments should be real overlaps: {precision}"
        );
    }

    #[test]
    fn true_overlaps_usually_score_higher_than_false() {
        let (_, res) = small_run();
        let mut true_scores = Vec::new();
        let mut fp_scores = Vec::new();
        for (rec, &ov) in res.outcome.records.iter().zip(&res.overlaps) {
            if ov >= 1000 {
                true_scores.push(rec.score as f64);
            } else if ov == 0 {
                fp_scores.push(rec.score as f64);
            }
        }
        if !true_scores.is_empty() && !fp_scores.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean(&true_scores) > 3.0 * mean(&fp_scores).max(1.0));
        }
    }

    #[test]
    fn minimizer_mode_keeps_recall_with_fewer_seeds() {
        let preset = presets::ecoli_30x().scaled(512);
        let reads = preset.generate(44);
        let mut params = PipelineParams::new(preset.coverage, preset.errors.total_rate());
        params.align.criteria.min_score = 100;
        params.align.criteria.min_overlap = 500;
        let full = run_pipeline(&reads, &params);
        params.seeds = SeedMode::Minimizers { w: 8 };
        let mini = run_pipeline(&reads, &params);
        // Candidate pairs found by the minimizer index must be close to
        // the full index (window-coverage guarantee on shared regions).
        assert!(
            mini.tasks.len() as f64 >= 0.85 * full.tasks.len() as f64,
            "minimizer candidates {} vs full {}",
            mini.tasks.len(),
            full.tasks.len()
        );
        assert!(mini.accepted() as f64 >= 0.85 * full.accepted() as f64);
    }

    #[test]
    fn deterministic_pipeline() {
        let preset = presets::ecoli_30x().scaled(2048);
        let reads = preset.generate(32);
        let params = PipelineParams::new(preset.coverage, 0.15);
        let a = run_pipeline(&reads, &params);
        let b = run_pipeline(&reads, &params);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.outcome.records, b.outcome.records);
    }
}
