//! Workload preparation: from a task graph to per-rank simulation inputs.
//!
//! Following the paper's methodology, "the alignment tasks computed from
//! each dataset, and their partitioning, are treated as fixed inputs" (§4):
//! this module computes the blind partition, redistributes tasks under the
//! ownership invariant, groups each rank's tasks by remote read, and
//! derives the exchange byte loads — once — and both coordination codes
//! then consume the identical [`SimWorkload`].

use crate::cost::CostModel;
use gnb_align::Candidate;
use gnb_overlap::partition::Partition;
use serde::{Deserialize, Serialize};

/// How tasks are balanced across the two candidate owner ranks.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum BalanceStrategy {
    /// DiBELLA's production heuristic: balance task *counts* (cheap, but
    /// blind to the orders-of-magnitude cost variance — the source of the
    /// paper's synchronization time, §4.2).
    #[default]
    TaskCount,
    /// The paper's §5 future-work proposal, implemented here as an
    /// extension: balance *estimated cost* using the same cost model the
    /// alignment obeys. Semi-static: decided before execution, no runtime
    /// migration overhead.
    EstimatedCost(CostModel),
}

/// One remote-read group of a rank: the tasks waiting on that read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupData {
    /// The remote read id.
    pub read: u32,
    /// Rank owning that read.
    pub owner: u32,
    /// Bytes of the read (the reply/exchange payload).
    pub bytes: u64,
    /// Tasks in this group, with their true-overlap lengths (0 = false
    /// positive).
    pub tasks: Vec<(Candidate, u32)>,
}

/// One rank's fixed inputs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RankData {
    /// Tasks whose reads are both local, with overlap lengths.
    pub local: Vec<(Candidate, u32)>,
    /// Remote-read groups, ascending by read id.
    pub groups: Vec<GroupData>,
    /// Bytes of reads this rank owns (its partition of the input).
    pub partition_bytes: u64,
}

impl RankData {
    /// Total tasks (local + grouped).
    pub fn total_tasks(&self) -> usize {
        self.local.len() + self.groups.iter().map(|g| g.tasks.len()).sum::<usize>()
    }

    /// Total bytes of remote reads this rank must fetch.
    pub fn recv_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.bytes).sum()
    }
}

/// The fixed input both coordination codes consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Number of ranks it was prepared for.
    pub nranks: usize,
    /// Read lengths.
    pub lengths: Vec<u32>,
    /// The blind partition.
    pub partition: Partition,
    /// Per-rank inputs.
    pub per_rank: Vec<RankData>,
    /// Total task count.
    pub total_tasks: usize,
    /// Bytes each rank serves to others (derived from all ranks' groups).
    pub send_bytes: Vec<u64>,
}

impl SimWorkload {
    /// Prepares the fixed input: partition, redistribution (greedy
    /// least-loaded, ownership-invariant), remote grouping, byte loads.
    ///
    /// # Panics
    /// Panics if `tasks.len() != overlap_len.len()` or any task references
    /// a read out of range.
    pub fn prepare(
        lengths: &[usize],
        tasks: &[Candidate],
        overlap_len: &[u32],
        nranks: usize,
    ) -> SimWorkload {
        Self::prepare_with(
            lengths,
            tasks,
            overlap_len,
            nranks,
            BalanceStrategy::TaskCount,
        )
    }

    /// As [`SimWorkload::prepare`], with an explicit balancing strategy.
    pub fn prepare_with(
        lengths: &[usize],
        tasks: &[Candidate],
        overlap_len: &[u32],
        nranks: usize,
        strategy: BalanceStrategy,
    ) -> SimWorkload {
        assert_eq!(tasks.len(), overlap_len.len());
        let partition = Partition::blind(lengths, nranks);

        // Greedy least-loaded redistribution (as overlap::TaskAssignment,
        // but carrying the overlap lengths along). Tasks are visited in
        // deterministic hashed order: candidates arrive sorted by (a, b)
        // and owners are monotone in read id, so a sorted sweep would
        // systematically overfill low ranks early and starve high ranks.
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_unstable_by_key(|&i| hash_index(i));
        let mut per_rank_tasks: Vec<Vec<(Candidate, u32)>> = vec![Vec::new(); nranks];
        let mut load = vec![0.0f64; nranks]; // cost-strategy ledger
        for &i in &order {
            let (t, ov) = (tasks[i as usize], overlap_len[i as usize]);
            let oa = partition.owner[t.a as usize] as usize;
            let ob = partition.owner[t.b as usize] as usize;
            let p = match &strategy {
                BalanceStrategy::TaskCount => {
                    if per_rank_tasks[ob].len() < per_rank_tasks[oa].len() {
                        ob
                    } else {
                        oa
                    }
                }
                BalanceStrategy::EstimatedCost(model) => {
                    let p = if load[ob] < load[oa] { ob } else { oa };
                    load[p] += model.cells(&t, ov);
                    p
                }
            };
            per_rank_tasks[p].push((t, ov));
        }

        let mut send_bytes = vec![0u64; nranks];
        let mut per_rank: Vec<RankData> = Vec::with_capacity(nranks);
        for (p, rank_tasks) in per_rank_tasks.into_iter().enumerate() {
            let mut local = Vec::new();
            let mut grouped: std::collections::BTreeMap<u32, Vec<(Candidate, u32)>> =
                std::collections::BTreeMap::new();
            for (t, ov) in rank_tasks {
                let oa = partition.owner[t.a as usize] as usize;
                let ob = partition.owner[t.b as usize] as usize;
                if oa == p && ob == p {
                    local.push((t, ov));
                } else if oa == p {
                    grouped.entry(t.b).or_default().push((t, ov));
                } else {
                    grouped.entry(t.a).or_default().push((t, ov));
                }
            }
            let groups: Vec<GroupData> = grouped
                .into_iter()
                .map(|(read, tasks)| {
                    let owner = partition.owner[read as usize];
                    let bytes = lengths[read as usize] as u64;
                    send_bytes[owner as usize] += bytes;
                    GroupData {
                        read,
                        owner,
                        bytes,
                        tasks,
                    }
                })
                .collect();
            let partition_bytes = partition.bytes[p];
            per_rank.push(RankData {
                local,
                groups,
                partition_bytes,
            });
        }

        SimWorkload {
            nranks,
            lengths: lengths.iter().map(|&l| l as u32).collect(),
            partition,
            per_rank,
            total_tasks: tasks.len(),
            send_bytes,
        }
    }

    /// Per-rank received bytes (the Fig. 6 quantity).
    pub fn recv_bytes(&self) -> Vec<u64> {
        self.per_rank.iter().map(|r| r.recv_bytes()).collect()
    }

    /// Checks that every task was assigned exactly once and to an owner of
    /// one of its reads.
    pub fn validate(&self) {
        let mut seen = 0usize;
        for (p, rd) in self.per_rank.iter().enumerate() {
            for (t, _) in &rd.local {
                assert_eq!(self.partition.owner[t.a as usize] as usize, p);
                assert_eq!(self.partition.owner[t.b as usize] as usize, p);
                seen += 1;
            }
            for g in &rd.groups {
                assert_ne!(self.partition.owner[g.read as usize] as usize, p);
                assert_eq!(self.partition.owner[g.read as usize], g.owner);
                for (t, _) in &g.tasks {
                    assert!(t.a == g.read || t.b == g.read);
                    let other = if t.a == g.read { t.b } else { t.a };
                    assert_eq!(self.partition.owner[other as usize] as usize, p);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, self.total_tasks, "tasks conserved");
    }
}

/// splitmix64 finaliser over a task index (the deterministic shuffle key).
fn hash_index(i: u32) -> u64 {
    let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent checksum of a completed task set: both coordination
/// codes must produce the same value as the task list itself.
pub fn task_checksum(tasks: impl IntoIterator<Item = (u32, u32)>) -> u64 {
    let mut acc = 0u64;
    for (a, b) in tasks {
        let key = ((a as u64) << 32) | b as u64;
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = acc.wrapping_add(z ^ (z >> 31));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    fn simple_workload(nranks: usize) -> SimWorkload {
        let lengths = vec![100usize; 8];
        let tasks: Vec<Candidate> = (0..8u32)
            .flat_map(|a| ((a + 1)..8).map(move |b| cand(a, b)))
            .collect();
        let ov: Vec<u32> = tasks.iter().map(|t| (t.a + t.b) * 10).collect();
        SimWorkload::prepare(&lengths, &tasks, &ov, nranks)
    }

    #[test]
    fn prepare_validates() {
        for nranks in [1, 2, 4, 8] {
            simple_workload(nranks).validate();
        }
    }

    #[test]
    fn single_rank_all_local() {
        let w = simple_workload(1);
        assert_eq!(w.per_rank[0].local.len(), 28);
        assert!(w.per_rank[0].groups.is_empty());
        assert_eq!(w.recv_bytes(), vec![0]);
        assert_eq!(w.send_bytes, vec![0]);
    }

    #[test]
    fn send_recv_consistent() {
        let w = simple_workload(4);
        let total_recv: u64 = w.recv_bytes().iter().sum();
        let total_send: u64 = w.send_bytes.iter().sum();
        assert_eq!(total_recv, total_send);
        assert!(total_recv > 0);
    }

    #[test]
    fn overlaps_travel_with_tasks() {
        let w = simple_workload(4);
        let mut seen = 0;
        for rd in &w.per_rank {
            for (t, ov) in rd
                .local
                .iter()
                .chain(rd.groups.iter().flat_map(|g| g.tasks.iter()))
            {
                assert_eq!(*ov, (t.a + t.b) * 10);
                seen += 1;
            }
        }
        assert_eq!(seen, w.total_tasks);
    }

    #[test]
    fn cost_balancing_reduces_cost_imbalance() {
        // Highly skewed costs: tasks touching read 0 are 100x heavier.
        let lengths = vec![100usize; 32];
        let tasks: Vec<Candidate> = (0..32u32)
            .flat_map(|a| ((a + 1)..32).map(move |b| cand(a, b)))
            .collect();
        let ov: Vec<u32> = tasks
            .iter()
            .map(|t| if t.a == 0 { 100_000 } else { 100 })
            .collect();
        let model = CostModel::default();
        let imbalance = |w: &SimWorkload| -> f64 {
            let costs: Vec<f64> = w
                .per_rank
                .iter()
                .map(|rd| {
                    rd.local
                        .iter()
                        .chain(rd.groups.iter().flat_map(|g| g.tasks.iter()))
                        .map(|(t, o)| model.cells(t, *o))
                        .sum()
                })
                .collect();
            let mean: f64 = costs.iter().sum::<f64>() / costs.len() as f64;
            costs.iter().cloned().fold(0.0, f64::max) / mean
        };
        let by_count = SimWorkload::prepare(&lengths, &tasks, &ov, 8);
        let by_cost = SimWorkload::prepare_with(
            &lengths,
            &tasks,
            &ov,
            8,
            BalanceStrategy::EstimatedCost(model),
        );
        by_cost.validate();
        assert_eq!(by_count.total_tasks, by_cost.total_tasks);
        assert!(
            imbalance(&by_cost) < imbalance(&by_count) * 0.8,
            "cost balancing must help: {} vs {}",
            imbalance(&by_cost),
            imbalance(&by_count)
        );
    }

    #[test]
    fn checksum_is_order_independent() {
        let fwd = task_checksum((0..100u32).map(|i| (i, i + 1)));
        let rev = task_checksum((0..100u32).rev().map(|i| (i, i + 1)));
        assert_eq!(fwd, rev);
        let different = task_checksum((0..99u32).map(|i| (i, i + 1)));
        assert_ne!(fwd, different);
    }

    #[test]
    #[should_panic]
    fn mismatched_overlaps_rejected() {
        let lengths = vec![100usize; 4];
        let tasks = vec![cand(0, 1)];
        let _ = SimWorkload::prepare(&lengths, &tasks, &[], 2);
    }
}
