//! Simulated DiBELLA stage 2: distributed k-mer counting and candidate
//! discovery.
//!
//! The alignment study's figures treat this stage as already done, but the
//! pipeline the paper ships runs it for real: every rank streams its
//! partition's k-mer occurrences to hash-designated owner ranks in an
//! irregular all-to-all, builds its shard of the count table, filters by
//! the BELLA interval, and streams candidate tasks back to read owners.
//! This module simulates that stage on the same machine model, so
//! end-to-end (stage 2 + stage 3) simulated pipelines are possible and the
//! stage's bandwidth-bound, uniformly-balanced character contrasts with
//! the alignment stage's irregular compute.
//!
//! Communication structure: k-mers are hash-distributed, so per-rank
//! exchange loads are essentially uniform — unlike the alignment
//! exchange, imbalance plays no role here; the cost is almost pure
//! bandwidth (occurrence records ≈ 16 B per input base).

use crate::driver::RunConfig;
use crate::machine::MachineConfig;
use crate::workload::SimWorkload;
use gnb_sim::coll::{alltoallv_time, CollParams, ExchangeLoad};
use gnb_sim::engine::{Ctx, Program, TimeCategory};
use gnb_sim::Engine;
use gnb_sim::SimTime;
use std::sync::Arc;

/// Bytes per k-mer occurrence record on the wire (packed k-mer + read id +
/// position).
pub const OCCURRENCE_BYTES: u64 = 16;

/// CPU cost to extract and bucket one k-mer occurrence, ns (KNL-class).
pub const EXTRACT_NS_PER_BASE: u64 = 25;

/// CPU cost to insert one received occurrence into the count table, ns.
pub const INSERT_NS_PER_OCC: u64 = 60;

/// Precomputed stage-2 plan.
#[derive(Debug, Clone)]
pub struct KmerStagePlan {
    /// Modelled exchange time (same for all ranks; hash distribution is
    /// uniform).
    pub exchange: SimTime,
    /// Per-rank extract / insert compute.
    pub per_rank: Vec<KmerStageRank>,
}

/// One rank's stage-2 compute.
#[derive(Debug, Clone, Copy, Default)]
pub struct KmerStageRank {
    /// Time to scan the local partition and bucket occurrences.
    pub extract: SimTime,
    /// Time to insert the (uniform) received share into the table.
    pub insert: SimTime,
    /// Exchange bytes this rank sends (= partition bases × record size).
    pub send_bytes: u64,
}

/// Builds the plan from the workload's partition.
pub fn plan_kmer_stage(w: &SimWorkload, machine: &MachineConfig) -> KmerStagePlan {
    let nranks = w.nranks;
    let total_bases: u64 = w.partition.bytes.iter().sum();
    let uniform_share = total_bases / nranks.max(1) as u64;
    let per_rank: Vec<KmerStageRank> = w
        .partition
        .bytes
        .iter()
        .map(|&bases| KmerStageRank {
            extract: SimTime::from_ns(bases * EXTRACT_NS_PER_BASE),
            // Hash distribution: everyone receives ~the same share.
            insert: SimTime::from_ns(uniform_share * INSERT_NS_PER_OCC),
            send_bytes: bases * OCCURRENCE_BYTES,
        })
        .collect();
    let max_send = per_rank.iter().map(|r| r.send_bytes).max().unwrap_or(0);
    let coll = CollParams::from_net(&machine.net);
    let nnodes = nranks.div_ceil(machine.net.ranks_per_node);
    let exchange = alltoallv_time(
        &coll,
        &ExchangeLoad {
            nranks,
            nnodes,
            max_send,
            max_recv: uniform_share * OCCURRENCE_BYTES,
            // Hash distribution touches essentially every peer.
            active_peers: nranks.saturating_sub(1).max(1),
            volume_scale: machine.volume_scale.max(1.0),
        },
    );
    KmerStagePlan { exchange, per_rank }
}

/// Rank program: extract → exchange → insert → done.
pub struct KmerStageRankProg {
    plan: Arc<KmerStagePlan>,
    rank: usize,
}

impl KmerStageRankProg {
    /// Creates the rank program.
    pub fn new(plan: Arc<KmerStagePlan>, rank: usize) -> Self {
        KmerStageRankProg { plan, rank }
    }
}

/// No point-to-point messages: the stage is collective-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmerStageMsg {}

impl Program<KmerStageMsg> for KmerStageRankProg {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KmerStageMsg>) {
        // gnb-lint: allow(panic-path, reason = "self.rank < nranks is established at stage construction and never changes")
        ctx.advance(self.plan.per_rank[self.rank].extract, TimeCategory::Compute);
        ctx.barrier_enter(0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, KmerStageMsg>, _src: usize, msg: KmerStageMsg) {
        // KmerStageMsg is uninhabited: the empty match proves, rather than
        // asserts, that stage 2 communicates only through the collective.
        match msg {}
    }

    fn on_barrier(&mut self, ctx: &mut Ctx<'_, KmerStageMsg>, id: u64) {
        ctx.classify_idle(TimeCategory::Sync);
        if id == 0 {
            ctx.advance(self.plan.exchange, TimeCategory::Comm);
            // gnb-lint: allow(panic-path, reason = "self.rank < nranks is established at stage construction and never changes")
            ctx.advance(self.plan.per_rank[self.rank].insert, TimeCategory::Compute);
            ctx.barrier_enter(1);
        }
    }
}

/// Runs the simulated stage 2 and returns its breakdown.
pub fn run_kmer_stage(
    w: &SimWorkload,
    machine: &MachineConfig,
    _cfg: &RunConfig,
) -> crate::breakdown::RuntimeBreakdown {
    let plan = Arc::new(plan_kmer_stage(w, machine));
    let mut progs: Vec<KmerStageRankProg> = (0..w.nranks)
        .map(|r| KmerStageRankProg::new(Arc::clone(&plan), r))
        .collect();
    let report = Engine::new(w.nranks, machine.net)
        .with_event_capacity(8 * w.nranks)
        .run(&mut progs);
    crate::breakdown::RuntimeBreakdown::from_report(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_align::Candidate;

    fn workload(nranks: usize, nreads: usize) -> SimWorkload {
        let lengths: Vec<usize> = (0..nreads).map(|i| 4000 + (i * 997) % 4000).collect();
        let tasks: Vec<Candidate> = (0..nreads as u32 - 1)
            .map(|a| Candidate {
                a,
                b: a + 1,
                a_pos: 0,
                b_pos: 0,
                same_strand: true,
            })
            .collect();
        let ov = vec![1000u32; tasks.len()];
        SimWorkload::prepare(&lengths, &tasks, &ov, nranks)
    }

    fn machine(nodes: usize, cores: usize) -> MachineConfig {
        MachineConfig::cori_knl(nodes).with_cores_per_node(cores)
    }

    #[test]
    fn stage_completes_with_balanced_compute() {
        let m = machine(2, 8);
        let w = workload(m.nranks(), 256);
        let b = run_kmer_stage(&w, &m, &RunConfig::default());
        assert!(b.total > 0.0);
        // Hash distribution: compute is nearly uniform across ranks.
        assert!(
            b.compute.imbalance() < 1.1,
            "stage 2 should be balanced: {}",
            b.compute.imbalance()
        );
        // Exchange is visible communication.
        assert!(b.comm.mean > 0.0);
    }

    #[test]
    fn single_node_cheaper_exchange_than_multi() {
        // At KNL-like rank density (many ranks per NIC) the shared-memory
        // exchange beats the per-rank NIC share; with few ranks per node
        // the wire would win — the comparison needs dense nodes.
        let w1 = workload(64, 512);
        let m1 = machine(1, 64);
        let m2 = machine(2, 32);
        let b1 = run_kmer_stage(&w1, &m1, &RunConfig::default());
        let b2 = run_kmer_stage(&w1, &m2, &RunConfig::default());
        assert!(
            b1.comm.mean < b2.comm.mean,
            "shared-memory exchange must beat the shared-NIC wire: {} vs {}",
            b1.comm.mean,
            b2.comm.mean
        );
    }

    #[test]
    fn exchange_volume_scales_with_input() {
        let m = machine(2, 8);
        let small = plan_kmer_stage(&workload(m.nranks(), 128), &m);
        let big = plan_kmer_stage(&workload(m.nranks(), 512), &m);
        assert!(big.exchange > small.exchange);
        let ss: u64 = small.per_rank.iter().map(|r| r.send_bytes).sum();
        let bs: u64 = big.per_rank.iter().map(|r| r.send_bytes).sum();
        assert!(bs > 3 * ss && bs < 5 * ss, "≈4x the input, {bs} vs {ss}");
    }

    #[test]
    fn deterministic() {
        let m = machine(2, 4);
        let w = workload(m.nranks(), 200);
        let a = run_kmer_stage(&w, &m, &RunConfig::default());
        let b = run_kmer_stage(&w, &m, &RunConfig::default());
        assert_eq!(a, b);
    }
}
