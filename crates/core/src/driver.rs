//! Experiment driver: runs a fixed workload under either coordination code
//! on a simulated machine and extracts the paper's measurement set.

use crate::agg_async::AggAsyncStrategy;
use crate::async_alg::{plan_async, AsyncStrategy};
use crate::breakdown::RuntimeBreakdown;
use crate::bsp::{plan_bsp, BspStrategy};
use crate::cost::CostModel;
use crate::machine::MachineConfig;
use crate::runtime::{CoordinationStrategy, RankRuntime};
pub use crate::runtime::{CrashResponse, RecoveryStats};
use crate::workload::SimWorkload;
use gnb_sim::ckpt::{CkptParams, CkptStore};
use gnb_sim::engine::SimReport;
use gnb_sim::fault::{CrashPlan, FaultConfig, FaultStats};
use gnb_sim::trace::RaceDetector;
use gnb_sim::{Engine, TieBreak};
use serde::{Deserialize, Serialize};
// gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
use std::sync::{Arc, Mutex};

/// Which coordination code to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Bulk-synchronous (paper §3.1).
    Bsp,
    /// Asynchronous (paper §3.2).
    Async,
    /// Asynchronous with destination-coalesced request/reply batches
    /// (the §5 middle ground; [`crate::agg_async`]).
    AggAsync,
}

impl Algorithm {
    /// All strategies, in the order experiment sweeps emit them.
    pub const ALL: [Algorithm; 3] = [Algorithm::Bsp, Algorithm::Async, Algorithm::AggAsync];
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Bsp => write!(f, "BSP"),
            Algorithm::Async => write!(f, "Async"),
            Algorithm::AggAsync => write!(f, "AggAsync"),
        }
    }
}

/// Tunables of a run (costs, RPC window, per-store overheads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Per-task alignment cost model (set `cost.skip_compute` for the
    /// Fig. 7 communication-only mode).
    pub cost: CostModel,
    /// Outstanding-request window of the async code.
    pub rpc_window: usize,
    /// Request message size, bytes.
    pub req_bytes: u64,
    /// Aggregation threshold of [`Algorithm::AggAsync`]: a per-owner
    /// batch ships when it holds this many reads.
    pub agg_batch: usize,
    /// Flush timeout of [`Algorithm::AggAsync`], ns: no read waits in a
    /// pending batch longer than this (plus deterministic jitter) before
    /// the batch ships anyway.
    pub agg_flush_ns: u64,
    /// Flat-array traversal + kernel invocation overhead per task (BSP),
    /// ns on a simulated core.
    pub overhead_ns_per_task_bsp: u64,
    /// Pointer-based-store traversal + invocation overhead per task
    /// (async), ns. Higher than BSP per §4.6 / Fig. 13.
    pub overhead_ns_per_task_async: u64,
    /// OS-noise amplitude: per-rank multiplicative compute inflation in
    /// `[0, os_noise]`, deterministic per rank. Zero when 4 cores per node
    /// are dedicated to system-overhead isolation (the paper's default);
    /// positive for the 68-core runs of Fig. 3, where the isolation is
    /// given up and "the slight improvement in computation time is
    /// cancelled-out by a slight increase in overheads".
    pub os_noise: f64,
    /// Failure injection: every `rpc_drop_period`-th RPC reply an owner
    /// would send is lost (0 = reliable network, the default — GASNet-EX
    /// "ensures read requests and callbacks are delivered, under the usual
    /// assumptions about the network"; positive values stress the
    /// requester's timeout/retry path).
    pub rpc_drop_period: u64,
    /// Requester-side base retry timeout for outstanding RPCs, ns. Armed
    /// whenever the network is unreliable (`rpc_drop_period > 0` or
    /// message faults in [`Self::fault`]); later attempts back off
    /// exponentially with deterministic jitter.
    pub rpc_timeout_ns: u64,
    /// Backoff cap, ns: no retry waits longer than this (plus jitter).
    pub rpc_backoff_max_ns: u64,
    /// Retry budget per request / re-issue budget per BSP round. When a
    /// request exhausts it the run ends with
    /// [`RunError::RetryBudgetExhausted`] instead of hanging.
    pub rpc_max_retries: u32,
    /// Deterministic fault-injection recipe (inactive by default).
    pub fault: FaultConfig,
    /// Crash-stop schedule: ranks killed at fixed virtual times
    /// ([`CrashPlan::none`] by default — a crash-free plan leaves every
    /// run byte-identical to one with no plan at all).
    pub crash: CrashPlan,
    /// What survivors do about a detected crash: deterministic ownership
    /// takeover (exactly-once completion) or graceful degradation
    /// (coverage loss reported via [`RunResult::lost_tasks`]).
    pub crash_response: CrashResponse,
    /// Crash-detection latency, ns: how long after a crash its designated
    /// successor notices and starts adopting the dead shard.
    pub crash_detect_ns: u64,
    /// Checkpoint cadence and modelled stable-storage I/O cost. Consulted
    /// only when [`Self::crash`] schedules crashes.
    pub ckpt: CkptParams,
    /// Memory-overhead factor of the BSP exchange: a round moving R bytes
    /// of reads needs ≈ `factor × R` of memory (send-side staging, receive
    /// buffers, MPI internals, unpacking copies — the paper's "challenge
    /// of working dataset size explosion and managing memory for
    /// communication"). Determines how much of the per-core budget one
    /// round may use, and hence the superstep count.
    pub bsp_exchange_overhead: f64,
    /// Fraction of that factor that is resident simultaneously (tracked as
    /// the footprint a job log would see).
    pub bsp_buffer_factor: f64,
    /// Span-trace capacity (0 = tracing off). Enables
    /// `SimReport::trace` for timeline rendering.
    pub trace_capacity: usize,
    /// Enable the virtual-time race detector
    /// ([`gnb_sim::trace::RaceDetector`]): instrumented handlers declare
    /// the state keys they touch, and same-rank same-virtual-time
    /// conflicts (whose resolution depends on event-queue tie-breaking)
    /// surface in [`RunResult::races`]. Off by default — detection does
    /// not perturb the timeline, but the record buffer costs memory.
    pub detect_races: bool,
    /// Equal-time event ordering. [`TieBreak::Fifo`] is the engine
    /// contract; [`TieBreak::Lifo`] reverses equal-time order and exists
    /// for perturbation-replay determinism tests: fault-free results must
    /// not change under it.
    pub tie_break: TieBreak,
    /// Enable the structured observability recorder
    /// ([`gnb_sim::obs::Obs`]): typed dispatch nodes with causal edges,
    /// busy spans, recovery instants and virtual-time metric series,
    /// surfaced in [`RunResult::obs`] for Perfetto export and
    /// critical-path profiling. Off by default — recording does not
    /// perturb the timeline (pinned by `tests/observer_invariance.rs`),
    /// but the record buffers cost memory.
    pub obs: bool,
    /// Worker shards of the conservative-parallel engine (1 = the serial
    /// reference loop). Any value produces byte-identical reports — the
    /// parallel mode merge-replays shard effects in exact serial order
    /// (pinned by `tests/parallel_equivalence.rs`) — so this knob trades
    /// host cores for wall-clock only.
    pub threads: usize,
}

/// Conflict records kept when [`RunConfig::detect_races`] is set.
const RACE_CAPACITY: usize = 4096;

/// Deterministic per-rank OS-noise factor in `[1, 1 + amplitude]`.
pub fn os_noise_factor(rank: usize, amplitude: f64) -> f64 {
    if amplitude == 0.0 {
        return 1.0;
    }
    let mut z = (rank as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    1.0 + amplitude * ((z >> 11) as f64 / (1u64 << 53) as f64)
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cost: CostModel::default(),
            // Deep enough to ride out reply bursts behind a shared NIC at
            // small scale, finite enough that ranks with few remote reads
            // (large node counts) still expose some fill latency — as the
            // paper's async code does (<7% visible at 8K cores, Fig. 8).
            // ~128 x 11 kb replies is only ~1.4 MB of buffer (Fig. 11).
            // expt_window sweeps this parameter.
            rpc_window: 128,
            req_bytes: 64,
            // Deep enough to amortize the per-message α over a useful
            // batch, small enough that the first flush happens well before
            // the window drains (expt_f07's crossover region is the
            // target). 25 µs keeps a sub-threshold tail's extra latency
            // under one per-task overhead.
            agg_batch: 16,
            agg_flush_ns: 25_000,
            overhead_ns_per_task_bsp: 20_000,
            overhead_ns_per_task_async: 45_000,
            os_noise: 0.0,
            rpc_drop_period: 0,
            rpc_timeout_ns: 20_000_000,      // 20 ms base
            rpc_backoff_max_ns: 320_000_000, // 16x the base
            rpc_max_retries: 8,
            fault: FaultConfig::default(),
            crash: CrashPlan::none(),
            crash_response: CrashResponse::Takeover,
            crash_detect_ns: 50_000_000, // 50 ms: a few retry backoffs
            ckpt: CkptParams::default(),
            bsp_exchange_overhead: 3.5,
            bsp_buffer_factor: 2.0,
            trace_capacity: 0,
            detect_races: false,
            tie_break: TieBreak::Fifo,
            obs: false,
            threads: 1,
        }
    }
}

/// Why a simulated run could not complete. Recoverable faults never
/// surface here; this is the structured "gave up" outcome that replaces
/// hanging (or silently corrupting results) when recovery budgets run dry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// A request (async: remote read; BSP: exchange round) exhausted its
    /// retry budget.
    RetryBudgetExhausted {
        /// The coordination code that gave up.
        algorithm: Algorithm,
        /// The rank that gave up first.
        rank: usize,
        /// What was being retried: the read id (async) or round (BSP).
        key: u64,
        /// Attempts made before giving up.
        attempts: u32,
        /// The rank the final attempt was addressed to.
        owner: usize,
        /// Whether that peer was crash-dead (as opposed to transiently
        /// faulty) when the budget ran dry.
        crash_dead: bool,
    },
    /// The run terminated but completed the wrong number of tasks (a
    /// coordination bug, surfaced instead of panicking in `try_run_sim`).
    TaskMismatch {
        /// The coordination code that ran.
        algorithm: Algorithm,
        /// Tasks completed.
        done: u64,
        /// Tasks expected.
        expected: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RetryBudgetExhausted {
                algorithm,
                rank,
                key,
                attempts,
                owner,
                crash_dead,
            } => write!(
                f,
                "{algorithm}: rank {rank} exhausted its retry budget after \
                 {attempts} attempts (key {key}, owner rank {owner}, {})",
                if *crash_dead {
                    "peer crash-dead"
                } else {
                    "peer transiently faulty"
                }
            ),
            RunError::TaskMismatch {
                algorithm,
                done,
                expected,
            } => write!(f, "{algorithm}: completed {done} of {expected} tasks"),
        }
    }
}

impl std::error::Error for RunError {}

/// Everything measured from one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// Ranks simulated.
    pub nranks: usize,
    /// The four-way runtime breakdown.
    pub breakdown: RuntimeBreakdown,
    /// Tasks completed (must equal the workload's task count).
    pub tasks_done: u64,
    /// Order-independent checksum of completed tasks.
    pub task_checksum: u64,
    /// Peak memory of the most loaded rank, bytes (Fig. 11).
    pub max_mem_peak: u64,
    /// Peak memory per rank.
    pub mem_peaks: Vec<u64>,
    /// BSP supersteps (1 for async).
    pub rounds: usize,
    /// DES events processed.
    pub events: u64,
    /// Recovery-machinery counters (all zero on a reliable network).
    pub recovery: RecoveryStats,
    /// Injected-fault counters from the engine.
    pub faults: FaultStats,
    /// Tasks lost to dropped shards under [`CrashResponse::Degrade`]
    /// (always zero under takeover, where every task completes).
    pub lost_tasks: u64,
    /// Ranks the crash schedule killed, ascending.
    pub dead_ranks: Vec<usize>,
    /// The raw simulation report.
    pub report: SimReport,
}

impl RunResult {
    /// End-to-end runtime, seconds.
    pub fn runtime(&self) -> f64 {
        self.breakdown.total
    }

    /// Race-detector results (None unless [`RunConfig::detect_races`]).
    pub fn races(&self) -> Option<&RaceDetector> {
        self.report.races.as_ref()
    }

    /// Structured observability records (None unless [`RunConfig::obs`]).
    pub fn obs(&self) -> Option<&gnb_sim::obs::Obs> {
        self.report.obs.as_ref()
    }
}

/// Runs `algo` over the fixed `workload` on `machine`.
///
/// # Panics
/// Panics on any [`RunError`] — for the reliable configurations behind the
/// paper's figures an incomplete run is a bug, never a measurement. Use
/// [`try_run_sim`] for fault-injection experiments where retry-budget
/// exhaustion is a legitimate outcome.
pub fn run_sim(
    workload: &SimWorkload,
    machine: &MachineConfig,
    algo: Algorithm,
    cfg: &RunConfig,
) -> RunResult {
    try_run_sim(workload, machine, algo, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs `algo` over the fixed `workload` on `machine`, returning a
/// structured [`RunError`] when the run could not complete (retry budgets
/// exhausted under fault injection, or a task-accounting bug).
pub fn try_run_sim(
    workload: &SimWorkload,
    machine: &MachineConfig,
    algo: Algorithm,
    cfg: &RunConfig,
) -> Result<RunResult, RunError> {
    let nranks = machine.nranks();
    assert_eq!(
        workload.nranks, nranks,
        "workload prepared for {} ranks, machine has {}",
        workload.nranks, nranks
    );
    let mut fault_plan = cfg.fault.plan(nranks);
    if !cfg.crash.is_empty() {
        fault_plan = fault_plan.with_crashes(cfg.crash.clone());
    }
    // The shared stable-storage checkpoint store, created only when
    // crashes are scheduled: crash-free runs take no checkpoints and stay
    // byte-identical to pre-checkpoint builds. The engine is single-
    // threaded, so the mutex never contends — it only satisfies the
    // shared-ownership type.
    // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
    let ckpt_store: Option<Arc<Mutex<CkptStore>>> = if cfg.crash.is_empty() {
        None
    } else {
        // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
        Some(Arc::new(Mutex::new(CkptStore::new(nranks))))
    };
    fn mk_engine<M>(
        nranks: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
        fault_plan: &gnb_sim::FaultPlan,
    ) -> Engine<M> {
        // Pre-size the event queue for the steady state: every rank can
        // have a handful of in-flight requests/replies plus self-timers,
        // and barrier completion fans out one event per rank. A hint that
        // is too small merely costs a reallocation; the report is
        // identical (see `Engine::with_event_capacity`).
        let mut engine = Engine::new(nranks, machine.net)
            .with_event_capacity(8 * nranks)
            .with_threads(cfg.threads);
        if cfg.trace_capacity > 0 {
            engine = engine.with_trace(cfg.trace_capacity);
        }
        if cfg.fault.is_active() || !cfg.crash.is_empty() {
            engine = engine.with_faults(fault_plan.clone());
        }
        if cfg.detect_races {
            engine = engine.with_race_detection(RACE_CAPACITY);
        }
        if cfg.obs {
            engine = engine.with_obs(gnb_sim::obs::ObsConfig::default());
        }
        engine.with_tie_break(cfg.tie_break)
    }
    // Ranks the crash schedule kills, ascending. In takeover mode their
    // work is completed by successors; their own partial counters are
    // excluded so nothing double-counts.
    let mut dead_ranks: Vec<usize> = cfg.crash.crashes.iter().map(|c| c.rank).collect();
    dead_ranks.sort_unstable();
    dead_ranks.dedup();
    /// Strategy-independent result extraction: tasks, checksum, unified
    /// recovery counters, first retry-budget exhaustion. Dead ranks
    /// contribute no task counts (their work is replayed by a successor
    /// under takeover, or lost under degrade) and no failures (their
    /// state died with them); their plan checksums count under takeover —
    /// the successor completes exactly that task set — and are excluded
    /// under degrade.
    fn collect<S: CoordinationStrategy>(
        algo: Algorithm,
        progs: &[RankRuntime<S>],
        dead: &[usize],
        response: CrashResponse,
    ) -> (u64, u64, RecoveryStats, Option<RunError>) {
        let done: u64 = progs
            .iter()
            .enumerate()
            .filter(|(r, _)| !dead.contains(r))
            .map(|(_, p)| p.tasks_done())
            .sum();
        let sum = progs
            .iter()
            .enumerate()
            .filter(|(r, _)| response == CrashResponse::Takeover || !dead.contains(r))
            .fold(0u64, |acc, (_, p)| acc.wrapping_add(p.checksum()));
        let mut recovery = RecoveryStats::default();
        for p in progs {
            recovery.absorb(p.recovery());
        }
        let failure = progs.iter().enumerate().find_map(|(r, p)| {
            if dead.contains(&r) {
                return None;
            }
            p.failure().map(|f| RunError::RetryBudgetExhausted {
                algorithm: algo,
                rank: r,
                key: f.key,
                attempts: f.attempts,
                owner: f.owner,
                crash_dead: f.crash_dead,
            })
        });
        (done, sum, recovery, failure)
    }
    let (report, tasks_done, checksum, rounds, recovery, first_failure) = match algo {
        Algorithm::Bsp => {
            let plan = Arc::new(plan_bsp(workload, machine, cfg));
            let fp = Arc::new(fault_plan.clone());
            let mut progs: Vec<_> = (0..nranks)
                .map(|r| {
                    BspStrategy::program_with_recovery(
                        Arc::clone(&plan),
                        r,
                        machine,
                        cfg,
                        Arc::clone(&fp),
                        ckpt_store.clone(),
                    )
                })
                .collect();
            let report = mk_engine(nranks, machine, cfg, &fault_plan).run(&mut progs);
            let (done, sum, recovery, failure) =
                collect(algo, &progs, &dead_ranks, cfg.crash_response);
            (report, done, sum, plan.rounds, recovery, failure)
        }
        Algorithm::Async => {
            let plan = Arc::new(plan_async(workload, machine, cfg));
            let fp = Arc::new(fault_plan.clone());
            let mut progs: Vec<_> = (0..nranks)
                .map(|r| {
                    AsyncStrategy::program_with_recovery(
                        Arc::clone(&plan),
                        r,
                        machine,
                        cfg,
                        Arc::clone(&fp),
                        ckpt_store.clone(),
                    )
                })
                .collect();
            let report = mk_engine(nranks, machine, cfg, &fault_plan).run(&mut progs);
            let (done, sum, recovery, failure) =
                collect(algo, &progs, &dead_ranks, cfg.crash_response);
            (report, done, sum, 1, recovery, failure)
        }
        Algorithm::AggAsync => {
            let plan = Arc::new(plan_async(workload, machine, cfg));
            let fp = Arc::new(fault_plan.clone());
            let mut progs: Vec<_> = (0..nranks)
                .map(|r| {
                    AggAsyncStrategy::program_with_recovery(
                        Arc::clone(&plan),
                        r,
                        machine,
                        cfg,
                        Arc::clone(&fp),
                        ckpt_store.clone(),
                    )
                })
                .collect();
            let report = mk_engine(nranks, machine, cfg, &fault_plan).run(&mut progs);
            let (done, sum, recovery, failure) =
                collect(algo, &progs, &dead_ranks, cfg.crash_response);
            (report, done, sum, 1, recovery, failure)
        }
    };
    if let Some(err) = first_failure {
        return Err(err);
    }
    let degraded = !dead_ranks.is_empty() && cfg.crash_response == CrashResponse::Degrade;
    if !degraded && tasks_done as usize != workload.total_tasks {
        return Err(RunError::TaskMismatch {
            algorithm: algo,
            done: tasks_done,
            expected: workload.total_tasks as u64,
        });
    }
    let lost_tasks = if degraded {
        (workload.total_tasks as u64).saturating_sub(tasks_done)
    } else {
        0
    };
    Ok(RunResult {
        algorithm: algo,
        nranks,
        breakdown: RuntimeBreakdown::from_report(&report),
        tasks_done,
        task_checksum: checksum,
        max_mem_peak: report.max_mem_peak(),
        mem_peaks: report.ranks.iter().map(|r| r.mem_peak).collect(),
        rounds,
        events: report.events,
        recovery,
        faults: report.faults,
        lost_tasks,
        dead_ranks,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::presets;
    use gnb_overlap::synth::{synthesize, SynthParams};

    fn small_workload(nranks: usize) -> SimWorkload {
        let preset = presets::ecoli_30x().scaled(128);
        let w = synthesize(&SynthParams::from_preset(&preset), 11);
        SimWorkload::prepare(&w.lengths, &w.tasks, &w.overlap_len, nranks)
    }

    fn machine(nodes: usize, cores: usize) -> MachineConfig {
        MachineConfig::cori_knl(nodes).with_cores_per_node(cores)
    }

    #[test]
    fn bsp_and_async_complete_identical_task_sets() {
        let m = machine(2, 4);
        let w = small_workload(m.nranks());
        let cfg = RunConfig::default();
        let bsp = run_sim(&w, &m, Algorithm::Bsp, &cfg);
        let asy = run_sim(&w, &m, Algorithm::Async, &cfg);
        assert_eq!(bsp.tasks_done, asy.tasks_done);
        assert_eq!(bsp.task_checksum, asy.task_checksum);
        assert!(bsp.runtime() > 0.0 && asy.runtime() > 0.0);
    }

    #[test]
    fn async_memory_below_bsp_single_exchange() {
        let m = machine(2, 4);
        let w = small_workload(m.nranks());
        let cfg = RunConfig::default();
        let bsp = run_sim(&w, &m, Algorithm::Bsp, &cfg);
        let asy = run_sim(&w, &m, Algorithm::Async, &cfg);
        // BSP buffers a whole round of reads; async holds at most the
        // windowed replies. The static pointer store is bigger, so compare
        // the dynamic excess over static allocations.
        let bsp_dyn: u64 = bsp.max_mem_peak;
        let asy_dyn: u64 = asy.max_mem_peak;
        // Not a strict theorem at tiny scale, but with hundreds of reads
        // per rank the exchange buffer dominates.
        assert!(
            asy_dyn < bsp_dyn * 2,
            "async {asy_dyn} should not dwarf bsp {bsp_dyn}"
        );
    }

    #[test]
    fn memory_cap_forces_rounds_and_preserves_results() {
        let mut m = machine(2, 4);
        let w = small_workload(m.nranks());
        let cfg = RunConfig::default();
        let one = run_sim(&w, &m, Algorithm::Bsp, &cfg);
        assert_eq!(one.rounds, 1);
        m.mem_per_core = 1; // floor: one read per round chunk share
        let many = run_sim(&w, &m, Algorithm::Bsp, &cfg);
        assert!(many.rounds > 1);
        assert_eq!(one.task_checksum, many.task_checksum);
        // More rounds cannot be faster.
        assert!(many.runtime() >= one.runtime());
    }

    #[test]
    fn deterministic_results() {
        let m = machine(1, 8);
        let w = small_workload(8);
        let cfg = RunConfig::default();
        let a = run_sim(&w, &m, Algorithm::Async, &cfg);
        let b = run_sim(&w, &m, Algorithm::Async, &cfg);
        assert_eq!(a.report, b.report);
    }

    #[test]
    #[should_panic(expected = "workload prepared for")]
    fn rank_mismatch_rejected() {
        let m = machine(1, 8);
        let w = small_workload(4);
        let _ = run_sim(&w, &m, Algorithm::Bsp, &RunConfig::default());
    }
}
