//! The aggregated-asynchronous coordination code — the middle ground the
//! paper's §5 asks about, between BSP's full-exchange aggregation (§3.1)
//! and plain async's one-RPC-per-read pulls (§3.2).
//!
//! Same pull-based protocol and task plan as [`crate::async_alg`]
//! (identical [`AsyncPlan`]), but requests to the same owner rank are
//! *destination-coalesced*: read ids accumulate in a per-owner batch that
//! ships as one tracked request when it reaches the aggregation threshold
//! ([`RunConfig::agg_batch`]) or when its flush timeout
//! ([`RunConfig::agg_flush_ns`]) expires, and the owner answers with one
//! reply carrying every requested read. A batch of `k` reads pays the
//! per-message cost α once instead of `k` times — exactly where plain
//! async loses to BSP at small node counts (Fig. 7) — while keeping
//! async's window-bounded memory and communication hiding.
//!
//! Flush timers ride the runtime's self-timer path
//! ([`RtCtx::after_app`]), which per the fault-injection contract is
//! never dropped, duplicated or delayed: a lossy network can delay
//! *batches*, but it cannot strand reads in a batch that never flushes.
//! Stale timers are invalidated by a per-owner generation counter.
//!
//! Determinism note: the batch *composition* state (which reads share a
//! batch) is deliberately not race-instrumented. Composition is
//! timeline-variant under equal-time tie-break perturbation — two pump
//! steps at the same virtual instant may batch in either order — but
//! result-invariant: every read is requested exactly once, task
//! checksums are plan constants, and `tasks_done` is total on every
//! completing run. The runtime still race-instruments what must be
//! tie-break-clean: batch keys on the reply/timeout path and owner-side
//! read lookups.

use crate::async_alg::{AsyncPlan, AsyncRankPlan};
use crate::driver::RunConfig;
use crate::machine::MachineConfig;
use crate::runtime::{CoordinationStrategy, RankRuntime, RtCtx, RuntimeConfig, TAKEOVER_KEY_BASE};
use gnb_sim::ckpt::{Checkpointable, CkptReader, CkptStore, CkptWriter};
use gnb_sim::engine::TimeCategory;
use gnb_sim::fault::FaultPlan;
use gnb_sim::SimTime;
use std::collections::{BTreeMap, VecDeque};
// gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
use std::sync::{Arc, Mutex};

/// Barrier ids (same split-phase/exit pair as plain async).
const BAR_REG: u64 = 0;
const BAR_EXIT: u64 = 1;

/// Batch keys live above the 32-bit read-id space, so owner-side read
/// race keys and runtime batch race keys can never collide.
const BATCH_KEY_BASE: u64 = 1 << 32;

/// Strategy-internal messages of the aggregated-async algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggApp {
    /// Self-timer: process the next unit of ready work.
    Poll,
    /// Self-timer: flush the pending batch for `owner` unless generation
    /// `gen` is stale (the batch already flushed at threshold).
    Flush {
        /// Owner rank whose pending batch should flush.
        owner: usize,
        /// Generation the timer was armed for.
        gen: u64,
    },
    /// Self-timer: serialize protocol progress to the checkpoint store
    /// and re-arm. Armed only when crashes are scheduled.
    Ckpt,
    /// Self-timer: adopt the shard of crashed rank `.0` (fires
    /// `crash_detect` after its scheduled death; this rank is its
    /// deterministic successor).
    Adopt(usize),
}

/// Deterministic flush-timer jitter: decorrelates flush instants across
/// (rank, owner, generation) so timers do not land on the exact virtual
/// instants replies arrive at (splitmix64 finalizer).
fn flush_jitter(rank: usize, owner: usize, gen: u64) -> u64 {
    let mut z = (rank as u64)
        .wrapping_shl(32)
        .wrapping_add(owner as u64)
        .wrapping_add(gen.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The strategy-facing context of the aggregated-async code.
type GCtx<'c, 'e> = RtCtx<'c, 'e, AggApp, Arc<Vec<u32>>, ()>;

/// The aggregated-async protocol state machine, hosted by
/// [`RankRuntime`]. Runs the plain-async plan ([`AsyncPlan`]) with
/// destination-coalesced request/reply batches.
pub struct AggAsyncStrategy {
    plan: Arc<AsyncPlan>,
    rank: usize,
    cfg_window: usize,
    cfg_req_bytes: u64,
    /// Aggregation threshold: a pending batch ships when it holds this
    /// many reads.
    agg_batch: usize,
    /// Flush timeout, ns: no read waits in a pending batch longer than
    /// this (plus jitter).
    agg_flush_ns: u64,

    next_req: usize,
    /// Reads requested but not yet computed-or-abandoned: batched-unsent
    /// plus sent-unreplied (the window bounds this plus `ready`).
    in_flight: usize,
    ready: VecDeque<usize>,
    next_local: usize,
    groups_done: usize,
    poll_scheduled: bool,
    entered_exit: bool,
    tasks_done: u64,

    /// Per-owner pending batch: group indices accumulating toward the
    /// threshold or the flush timeout.
    pending: BTreeMap<usize, Vec<usize>>,
    /// Per-owner flush generation: incremented on every flush, so a
    /// timer armed for an earlier generation no-ops.
    flush_gen: BTreeMap<usize, u64>,
    /// Next batch sequence number (per-rank; batch key =
    /// `BATCH_KEY_BASE + seq`).
    batch_seq: u64,
    /// Sent batches awaiting their reply, by batch key.
    batches: BTreeMap<u64, Vec<usize>>,

    /// Per-group completion bitmap (checkpointed so a successor replays
    /// only unfinished groups).
    done: Vec<bool>,
    /// Adopt timers armed but not yet fired (exit is gated on zero).
    adoptions_left: usize,
    /// Outstanding adopted re-fetches: namespaced key → (dead rank, index
    /// into the dead rank's group list).
    adopted: BTreeMap<u64, (usize, usize)>,
}

impl AggAsyncStrategy {
    /// Creates the protocol state machine for one rank.
    pub fn new(plan: Arc<AsyncPlan>, rank: usize, cfg: &RunConfig) -> AggAsyncStrategy {
        let ngroups = plan.per_rank[rank].groups.len();
        AggAsyncStrategy {
            plan,
            rank,
            cfg_window: cfg.rpc_window,
            cfg_req_bytes: cfg.req_bytes,
            agg_batch: cfg.agg_batch.max(1),
            agg_flush_ns: cfg.agg_flush_ns.max(1),
            next_req: 0,
            in_flight: 0,
            ready: VecDeque::new(),
            next_local: 0,
            groups_done: 0,
            poll_scheduled: false,
            entered_exit: false,
            tasks_done: 0,
            pending: BTreeMap::new(),
            flush_gen: BTreeMap::new(),
            batch_seq: 0,
            batches: BTreeMap::new(),
            done: vec![false; ngroups],
            adoptions_left: 0,
            adopted: BTreeMap::new(),
        }
    }

    /// Creates the full runtime-hosted rank program.
    pub fn program(
        plan: Arc<AsyncPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
    ) -> RankRuntime<AggAsyncStrategy> {
        RankRuntime::new(
            AggAsyncStrategy::new(plan, rank, cfg),
            rank,
            RuntimeConfig::from_run(machine, cfg),
        )
    }

    /// Creates the full runtime-hosted rank program with the recovery
    /// stack: a fault plan carrying the crash schedule and the shared
    /// checkpoint store. The driver uses this for every run; with no
    /// crashes scheduled it behaves exactly like [`Self::program`].
    pub fn program_with_recovery(
        plan: Arc<AsyncPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
        fault: Arc<FaultPlan>,
        // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
        ckpt: Option<Arc<Mutex<CkptStore>>>,
    ) -> RankRuntime<AggAsyncStrategy> {
        RankRuntime::with_recovery(
            AggAsyncStrategy::new(plan, rank, cfg),
            rank,
            RuntimeConfig::from_run(machine, cfg),
            fault,
            ckpt,
        )
    }

    /// Serializes protocol progress (same layout as the plain-async
    /// strategy: local cursor, group bitmap, task counter).
    fn ckpt_bytes(&self) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.usize(self.next_local);
        self.done.checkpoint(&mut w);
        w.u64(self.tasks_done);
        w.finish()
    }

    /// Decodes a checkpoint written by [`Self::ckpt_bytes`] on any rank.
    fn decode_ckpt(bytes: &[u8]) -> (usize, Vec<bool>, u64) {
        let mut r = CkptReader::new(bytes);
        let next_local = r.usize();
        let done = Vec::<bool>::restore(&mut r);
        let tasks = r.u64();
        r.finish();
        (next_local, done, tasks)
    }

    /// Adopts dead rank `dead`'s shard: restore, replay the local tail,
    /// re-fetch unfinished groups as single-read batches under namespaced
    /// keys (the owner-side batch handler serves them unchanged). The
    /// re-fetches bypass both the aggregation layer and the flow-control
    /// window — recovery traffic must not wait behind batching heuristics.
    fn adopt(&mut self, rt: &mut GCtx<'_, '_>, dead: usize) {
        rt.note_takeover(dead);
        // gnb-lint: allow(panic-path, reason = "dead is a rank id from the engine's crash plan; per_rank has exactly nranks entries by construction")
        let dead_groups = self.plan.per_rank[dead].groups.len();
        let (next_local, done, ckpt_tasks) = match rt.ckpt_restore(dead) {
            Some(bytes) => AggAsyncStrategy::decode_ckpt(&bytes),
            None => (0, vec![false; dead_groups], 0),
        };
        rt.note_recovered(ckpt_tasks);
        self.tasks_done += ckpt_tasks;
        let dplan = Arc::clone(&self.plan);
        // gnb-lint: allow(panic-path, reason = "next_local comes from a checkpoint this code wrote; it never exceeds the dead rank's chunk count")
        for &(cp, oh, n) in &dplan.per_rank[dead].local_chunks[next_local..] {
            rt.advance(oh, TimeCategory::Recovery);
            rt.advance(cp, TimeCategory::Recovery);
            self.tasks_done += n;
        }
        // gnb-lint: allow(panic-path, reason = "dead is a rank id from the engine's crash plan; per_rank has exactly nranks entries by construction")
        for (gidx, g) in dplan.per_rank[dead].groups.iter().enumerate() {
            if done.get(gidx).copied().unwrap_or(false) {
                continue;
            }
            let key = TAKEOVER_KEY_BASE + ((dead as u64) << 32) + g.read as u64;
            let dst = rt.effective_owner(g.owner as usize);
            self.adopted.insert(key, (dead, gidx));
            let bytes = self.cfg_req_bytes + 4;
            rt.send_tracked(key, dst, bytes, Arc::new(vec![g.read]));
        }
        self.adoptions_left -= 1;
    }

    fn me(&self) -> &AsyncRankPlan {
        // gnb-lint: allow(panic-path, reason = "self.rank < nranks is established at Engine construction and never changes")
        &self.plan.per_rank[self.rank]
    }

    /// Pulls reads into per-owner pending batches under the same
    /// consumption-bounded window as plain async, flushing any batch that
    /// reaches the threshold. A batch that goes from empty to non-empty
    /// arms a flush timer so sub-threshold tails still ship.
    fn pump(&mut self, rt: &mut GCtx<'_, '_>) {
        while self.in_flight + self.ready.len() < self.cfg_window
            && self.next_req < self.me().groups.len()
        {
            // gnb-lint: allow(panic-path, reason = "the loop condition bounds next_req by the same plan's groups.len()")
            let g = &self.plan.per_rank[self.rank].groups[self.next_req];
            let (owner, gidx) = (g.owner as usize, self.next_req);
            self.in_flight += 1;
            self.next_req += 1;
            let batch = self.pending.entry(owner).or_default();
            batch.push(gidx);
            let len = batch.len();
            if len >= self.agg_batch {
                self.flush(rt, owner);
            } else if len == 1 {
                let gen = *self.flush_gen.entry(owner).or_insert(0);
                let jitter = flush_jitter(self.rank, owner, gen) % (self.agg_flush_ns / 8 + 1);
                rt.after_app(
                    SimTime::from_ns(self.agg_flush_ns + jitter),
                    AggApp::Flush { owner, gen },
                );
            }
        }
    }

    /// Ships the pending batch for `owner` as one tracked request and
    /// invalidates any outstanding flush timer for it.
    fn flush(&mut self, rt: &mut GCtx<'_, '_>, owner: usize) {
        let gidxs = match self.pending.remove(&owner) {
            Some(b) if !b.is_empty() => b,
            _ => return,
        };
        *self.flush_gen.entry(owner).or_insert(0) += 1;
        let reads: Vec<u32> = gidxs
            .iter()
            .map(|&gidx| self.me().groups[gidx].read)
            .collect();
        let key = BATCH_KEY_BASE + self.batch_seq;
        self.batch_seq += 1;
        // One α for the whole batch: the request carries the batched read
        // ids (4 B each) on top of the fixed header.
        let bytes = self.cfg_req_bytes + 4 * reads.len() as u64;
        self.batches.insert(key, gidxs);
        rt.send_tracked(key, owner, bytes, Arc::new(reads));
    }

    fn ensure_poll(&mut self, rt: &mut GCtx<'_, '_>) {
        let has_work = !self.ready.is_empty() || self.next_local < self.me().local_chunks.len();
        if !self.poll_scheduled && has_work {
            // One tick later, not zero — see the plain-async rationale:
            // queued RPCs must be serviced between units of compute.
            rt.after_app(SimTime::from_ns(1), AggApp::Poll);
            self.poll_scheduled = true;
        }
    }

    fn maybe_finish(&mut self, rt: &mut GCtx<'_, '_>) {
        let me_done = self.next_local >= self.me().local_chunks.len()
            && self.groups_done == self.me().groups.len()
            && self.adoptions_left == 0
            && self.adopted.is_empty();
        if me_done && !self.entered_exit {
            self.entered_exit = true;
            rt.barrier_enter(BAR_EXIT);
        }
    }

    /// Idle ended by a foreign event (request, reply, flush timer while
    /// work is outstanding): communication we failed to hide if requests
    /// are in flight, otherwise exit-barrier synchronization.
    fn classify_foreign_idle(&self, rt: &mut GCtx<'_, '_>) {
        if self.in_flight > 0 {
            rt.classify_idle(TimeCategory::Comm);
        } else {
            rt.classify_idle(TimeCategory::Sync);
        }
    }
}

impl CoordinationStrategy for AggAsyncStrategy {
    type App = AggApp;
    type Req = Arc<Vec<u32>>;
    type Rep = ();

    fn on_start(&mut self, rt: &mut GCtx<'_, '_>) {
        rt.mem_alloc(self.me().static_bytes);
        rt.barrier_enter(BAR_REG);
        // Crash-recovery timers, armed only when crashes are scheduled so
        // crash-free runs stay event-for-event identical.
        if rt.ckpt_enabled() {
            rt.after_app(rt.ckpt_interval(), AggApp::Ckpt);
        }
        for (dead, at) in rt.planned_adoptions() {
            self.adoptions_left += 1;
            rt.after_app(at + rt.crash_detect(), AggApp::Adopt(dead));
        }
        self.pump(rt);
        self.ensure_poll(rt);
        self.maybe_finish(rt);
    }

    fn on_app(&mut self, rt: &mut GCtx<'_, '_>, _src: usize, msg: AggApp) {
        match msg {
            AggApp::Poll => {
                self.poll_scheduled = false;
                if let Some(gidx) = self.ready.pop_front() {
                    // gnb-lint: allow(panic-path, reason = "ready only ever holds group indexes minted from this rank's own plan")
                    let g = &self.plan.per_rank[self.rank].groups[gidx];
                    let (oh, cp, n, bytes) = (g.overhead, g.compute, g.tasks, g.bytes);
                    rt.advance(oh, TimeCategory::Overhead);
                    rt.advance(cp, TimeCategory::Compute);
                    rt.mem_free(bytes);
                    self.tasks_done += n;
                    self.groups_done += 1;
                    // gnb-lint: allow(panic-path, reason = "done has one slot per group of this rank's plan; gidx came from that plan")
                    self.done[gidx] = true;
                    // Consumption frees window slots: pull the next reads.
                    self.pump(rt);
                } else if self.next_local < self.me().local_chunks.len() {
                    // gnb-lint: allow(panic-path, reason = "the else-if guard bounds next_local by the same plan's local_chunks.len()")
                    let (cp, oh, n) = self.plan.per_rank[self.rank].local_chunks[self.next_local];
                    rt.advance(oh, TimeCategory::Overhead);
                    rt.advance(cp, TimeCategory::Compute);
                    self.tasks_done += n;
                    self.next_local += 1;
                }
                self.ensure_poll(rt);
                self.maybe_finish(rt);
            }
            AggApp::Flush { owner, gen } => {
                // The timer ended whatever idle preceded it; classify
                // before deciding whether it is stale.
                self.classify_foreign_idle(rt);
                if self.flush_gen.get(&owner).copied().unwrap_or(0) != gen {
                    return; // batch already flushed at threshold
                }
                self.flush(rt, owner);
            }
            AggApp::Ckpt => {
                // Waiting ended by the checkpoint timer is checkpoint
                // overhead, like the write it precedes.
                rt.classify_idle(TimeCategory::Overhead);
                if !self.entered_exit {
                    rt.ckpt_save(self.ckpt_bytes());
                    rt.after_app(rt.ckpt_interval(), AggApp::Ckpt);
                }
            }
            AggApp::Adopt(dead) => {
                rt.classify_idle(TimeCategory::Recovery);
                self.adopt(rt, dead);
                self.ensure_poll(rt);
                self.maybe_finish(rt);
            }
        }
    }

    fn on_request(
        &mut self,
        rt: &mut GCtx<'_, '_>,
        src: usize,
        key: u64,
        attempt: u32,
        reads: Arc<Vec<u32>>,
    ) {
        self.classify_foreign_idle(rt);
        // Owner-side lookup of every batched read (immutable partition
        // entries); one service unit each, one reply for all.
        let mut bytes = 4 * reads.len() as u64;
        for &read in reads.iter() {
            rt.race_read(read as u64);
            // gnb-lint: allow(panic-path, reason = "lengths is indexed by global read id; every batched read id was minted from the same plan")
            bytes += self.plan.lengths[read as usize] as u64;
        }
        rt.serve_reply(src, key, attempt, bytes, reads.len() as u64, ());
    }

    fn on_reply(&mut self, rt: &mut GCtx<'_, '_>, key: u64, _p: ()) {
        if key >= TAKEOVER_KEY_BASE {
            // An adopted shard's re-fetched read — not a batch this rank
            // composed. Run the dead rank's group as recovery work.
            let (dead, gidx) = self
                .adopted
                .remove(&key)
                // gnb-lint: allow(panic-path, reason = "the runtime ledger delivers replies only for keys this rank tracked; a miss is ledger corruption and must abort deterministically")
                .expect("reply for an adoption this rank never started");
            // gnb-lint: allow(panic-path, reason = "dead is a rank id recorded at adoption time; per_rank has exactly nranks entries")
            let g = &self.plan.per_rank[dead].groups[gidx];
            let (oh, cp, n) = (g.overhead, g.compute, g.tasks);
            rt.advance(oh, TimeCategory::Recovery);
            rt.advance(cp, TimeCategory::Recovery);
            self.tasks_done += n;
            self.maybe_finish(rt);
            return;
        }
        let gidxs = self
            .batches
            .remove(&key)
            // gnb-lint: allow(panic-path, reason = "the runtime ledger delivers replies only for keys this rank tracked; a miss is ledger corruption and must abort deterministically")
            .expect("reply for a batch this rank never sent");
        self.in_flight -= gidxs.len();
        for gidx in gidxs {
            // gnb-lint: allow(panic-path, reason = "gidx was taken from this rank's own batch map; it indexes the same plan it was minted from")
            rt.mem_alloc(self.plan.per_rank[self.rank].groups[gidx].bytes);
            self.ready.push_back(gidx);
        }
        self.ensure_poll(rt);
    }

    fn on_give_up(&mut self, rt: &mut GCtx<'_, '_>, key: u64) {
        // Non-batch keys first: a give-up must never reach the batch map
        // for a key this rank's batching layer did not mint, or the
        // unwind panics instead of degrading (adopted re-fetches are the
        // one such key class; `tests/fault_chaos.rs` pins this).
        if key >= TAKEOVER_KEY_BASE {
            self.adopted.remove(&key);
            self.maybe_finish(rt);
            return;
        }
        // The whole batch is abandoned; its tasks stay undone and the
        // driver reports RunError::RetryBudgetExhausted (or coverage loss
        // under graceful degradation). Unwind the window so the rank
        // drains its remaining work.
        let gidxs = self
            .batches
            .remove(&key)
            // gnb-lint: allow(panic-path, reason = "give-ups are raised only for keys this rank tracked; a miss is ledger corruption and must abort deterministically")
            .expect("give-up for a batch this rank never sent");
        self.in_flight -= gidxs.len();
        self.groups_done += gidxs.len();
        for &gidx in &gidxs {
            // gnb-lint: allow(panic-path, reason = "done has one slot per group of this rank's plan; gidx came from this rank's batch map")
            self.done[gidx] = true;
        }
        self.pump(rt);
        self.ensure_poll(rt);
        self.maybe_finish(rt);
    }

    fn on_barrier(&mut self, rt: &mut GCtx<'_, '_>, id: u64) {
        rt.classify_idle(TimeCategory::Sync);
        debug_assert!(id == BAR_REG || id == BAR_EXIT);
    }

    fn tasks_done(&self) -> u64 {
        self.tasks_done
    }

    /// This rank's task checksum (valid any time — a plan constant).
    fn checksum(&self) -> u64 {
        self.plan.per_rank[self.rank].checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_alg::plan_async;
    use crate::workload::SimWorkload;
    use gnb_align::Candidate;
    use gnb_sim::Engine;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    fn workload(nranks: usize) -> SimWorkload {
        let lengths: Vec<usize> = (0..16).map(|i| 1000 + 100 * i).collect();
        let tasks: Vec<Candidate> = (0..16u32)
            .flat_map(|a| ((a + 1)..16).map(move |b| cand(a, b)))
            .collect();
        let ov: Vec<u32> = tasks.iter().map(|t| 200 * (t.b - t.a)).collect();
        SimWorkload::prepare(&lengths, &tasks, &ov, nranks)
    }

    fn machine(cores: usize) -> MachineConfig {
        MachineConfig::cori_knl(1).with_cores_per_node(cores)
    }

    fn run(
        nranks: usize,
        cfg: &RunConfig,
    ) -> (
        Vec<RankRuntime<AggAsyncStrategy>>,
        gnb_sim::engine::SimReport,
    ) {
        let w = workload(nranks);
        w.validate();
        let m = machine(nranks);
        let plan = Arc::new(plan_async(&w, &m, cfg));
        let mut progs: Vec<RankRuntime<AggAsyncStrategy>> = (0..nranks)
            .map(|r| AggAsyncStrategy::program(Arc::clone(&plan), r, &m, cfg))
            .collect();
        let report = Engine::new(nranks, m.net).run(&mut progs);
        (progs, report)
    }

    #[test]
    fn all_tasks_complete_exactly_once() {
        for nranks in [1, 2, 4, 8] {
            let (progs, _) = run(nranks, &RunConfig::default());
            let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
            assert_eq!(
                done as usize,
                workload(nranks).total_tasks,
                "nranks={nranks}"
            );
        }
    }

    #[test]
    fn threshold_one_degenerates_to_plain_async_message_count() {
        // With a threshold of 1 every read ships alone: as many requests
        // as plain async, so aggregation is a strict generalisation.
        let cfg = RunConfig {
            agg_batch: 1,
            ..RunConfig::default()
        };
        let (progs, _) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(done as usize, workload(4).total_tasks);
        let batches: u64 = progs.iter().map(|p| p.strategy().batch_seq).sum();
        let groups: u64 = {
            let w = workload(4);
            let m = machine(4);
            let plan = plan_async(&w, &m, &cfg);
            plan.per_rank.iter().map(|r| r.groups.len() as u64).sum()
        };
        assert_eq!(batches, groups);
    }

    #[test]
    fn aggregation_reduces_message_count_and_events() {
        let one = RunConfig {
            agg_batch: 1,
            ..RunConfig::default()
        };
        let agg = RunConfig {
            agg_batch: 16,
            ..RunConfig::default()
        };
        let (p1, r1) = run(8, &one);
        let (p16, r16) = run(8, &agg);
        let b1: u64 = p1.iter().map(|p| p.strategy().batch_seq).sum();
        let b16: u64 = p16.iter().map(|p| p.strategy().batch_seq).sum();
        assert!(b16 < b1, "batching must coalesce: {b16} vs {b1}");
        assert!(r16.events < r1.events, "fewer messages, fewer events");
        let d1: u64 = p1.iter().map(|p| p.tasks_done()).sum();
        let d16: u64 = p16.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(d1, d16);
    }

    #[test]
    fn flush_timer_ships_subthreshold_tails() {
        // Threshold far above any per-owner group count: only flush
        // timers can ship batches, and the run must still complete.
        let cfg = RunConfig {
            agg_batch: 100_000,
            ..RunConfig::default()
        };
        let (progs, _) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(done as usize, workload(4).total_tasks);
        let batches: u64 = progs.iter().map(|p| p.strategy().batch_seq).sum();
        assert!(batches > 0, "timer-driven flushes must have fired");
    }

    #[test]
    fn window_smaller_than_batch_still_completes() {
        let cfg = RunConfig {
            rpc_window: 2,
            agg_batch: 64,
            ..RunConfig::default()
        };
        let (progs, _) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(done as usize, workload(4).total_tasks);
    }

    #[test]
    fn deterministic() {
        let (p1, r1) = run(4, &RunConfig::default());
        let (p2, r2) = run(4, &RunConfig::default());
        assert_eq!(r1, r2);
        let d1: Vec<u64> = p1.iter().map(|p| p.tasks_done()).collect();
        let d2: Vec<u64> = p2.iter().map(|p| p.tasks_done()).collect();
        assert_eq!(d1, d2);
    }

    #[test]
    fn reply_loss_recovered_by_batch_retry() {
        let cfg = RunConfig {
            rpc_drop_period: 3,
            rpc_timeout_ns: 50_000,
            ..RunConfig::default()
        };
        let (progs, report) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(
            done as usize,
            workload(4).total_tasks,
            "all tasks despite drops"
        );
        let drops: u64 = progs.iter().map(|p| p.recovery().drops_injected).sum();
        let retries: u64 = progs.iter().map(|p| p.recovery().retries).sum();
        assert!(drops > 0, "injection must actually fire");
        assert!(retries >= drops, "every dropped reply forces a retry");
        let (_, reliable) = run(4, &RunConfig::default());
        assert!(report.end_time > reliable.end_time);
    }

    #[test]
    fn reliable_network_never_retries() {
        let (progs, _) = run(4, &RunConfig::default());
        assert!(progs
            .iter()
            .all(|p| p.recovery().drops_injected == 0 && p.recovery().retries == 0));
    }
}
