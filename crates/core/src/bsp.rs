//! The bulk-synchronous coordination code (paper §3.1).
//!
//! Reads are exchanged in an irregular all-to-all (`MPI_Alltoallv` in the
//! original; the `gnb-sim` collective cost model here), then the pairwise
//! alignments are computed independently — in **multiple, dynamically
//! sized communication+computation rounds** when the full exchange does
//! not fit in per-core memory. The number of rounds is the maximum over
//! ranks of `ceil(recv_bytes / memory_budget)`, and every rank steps
//! through the rounds together (bulk-synchronous supersteps separated by
//! barriers).
//!
//! Accounting: the collective's modelled time is *visible communication*;
//! waiting at the inter-round barriers (from compute imbalance) is
//! *synchronization*; flat-array traversal and kernel invocation is
//! *overhead*.
//!
//! Recovery is runtime-owned: the superstep-level detect-and-reissue loop
//! (and its budget bookkeeping) is [`RtCtx::collective_exchange`] — this
//! module holds only the superstep state machine.

use crate::driver::RunConfig;
use crate::machine::MachineConfig;
use crate::runtime::{CoordinationStrategy, RankRuntime, RtCtx, RuntimeConfig};
use crate::workload::{task_checksum, SimWorkload};
use gnb_sim::ckpt::{CkptReader, CkptStore, CkptWriter};
use gnb_sim::coll::{alltoallv_time, CollParams, ExchangeLoad};
use gnb_sim::engine::TimeCategory;
use gnb_sim::fault::FaultPlan;
use gnb_sim::SimTime;
// gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
use std::sync::{Arc, Mutex};

/// Precomputed global plan for a BSP run.
#[derive(Debug, Clone)]
pub struct BspPlan {
    /// Number of exchange+compute supersteps.
    pub rounds: usize,
    /// Modelled collective time of each round (identical on all ranks —
    /// the exchange completes together).
    pub round_comm: Vec<SimTime>,
    /// Per-rank, per-round recv bytes / compute / overhead.
    pub per_rank: Vec<BspRankPlan>,
}

/// One rank's precomputed rounds.
#[derive(Debug, Clone, Default)]
pub struct BspRankPlan {
    /// Static allocation: this rank's input partition plus flat task store.
    pub static_bytes: u64,
    /// Exchange-buffer bytes received per round.
    pub recv_bytes: Vec<u64>,
    /// Resident exchange footprint per round (recv × buffer factor:
    /// send-side staging lives alongside the receive buffer).
    pub alloc_bytes: Vec<u64>,
    /// Alignment compute per round.
    pub compute: Vec<SimTime>,
    /// Traversal/invocation overhead per round.
    pub overhead: Vec<SimTime>,
    /// Tasks completed per round.
    pub tasks: Vec<u64>,
    /// Order-independent checksum of all tasks this rank computes.
    pub checksum: u64,
}

/// Approximate in-memory bytes per task entry in the flat store
/// (5 × u32-ish fields, as in [`gnb_overlap::store::FlatTaskStore`]).
const TASK_ENTRY_BYTES: u64 = 20;

/// Builds the BSP round plan: memory-limited round count, per-round chunk
/// assignment of remote-read groups, collective costs from per-round
/// maximum send/recv loads.
pub fn plan_bsp(w: &SimWorkload, machine: &MachineConfig, cfg: &RunConfig) -> BspPlan {
    let nranks = w.nranks;
    let cost = &cfg.cost;

    // Memory budget for a round's received reads: the available memory
    // divided by the exchange-overhead factor (send staging + receive
    // buffers + MPI internals all scale with the round's volume). A
    // single-node exchange goes through shared memory — reads are copied
    // once, with no network staging — so its overhead factor is far
    // smaller.
    let nnodes_budget = machine.nranks().div_ceil(machine.net.ranks_per_node);
    let overhead_factor = if nnodes_budget <= 1 {
        1.5f64
    } else {
        cfg.bsp_exchange_overhead.max(1.0)
    };
    let budgets: Vec<u64> = w
        .per_rank
        .iter()
        .map(|rd| {
            let static_bytes = rd.partition_bytes + rd.total_tasks() as u64 * TASK_ENTRY_BYTES;
            let avail = machine.mem_per_core.saturating_sub(static_bytes) as f64 / overhead_factor;
            // Never let a degenerate configuration zero the budget: at
            // least one maximal read must fit, or no progress is possible.
            (avail as u64).max(w.lengths.iter().copied().max().unwrap_or(1) as u64)
        })
        .collect();

    let rounds = w
        .per_rank
        .iter()
        .zip(&budgets)
        .map(|(rd, &b)| (rd.recv_bytes().div_ceil(b.max(1))).max(1) as usize)
        .max()
        .unwrap_or(1);

    // Assign each rank's groups to rounds: greedy fill toward an even
    // per-round byte share, preserving group order.
    let mut per_rank: Vec<BspRankPlan> = Vec::with_capacity(nranks);
    // send_bytes[round][rank]: bytes each owner ships per round.
    let mut send_per_round = vec![vec![0u64; nranks]; rounds];
    let mut recv_per_round_max = vec![0u64; rounds];
    // Most distinct peers any rank fetches from, per round (sparse
    // exchanges skip empty pairs; the collective model needs this).
    let mut peers_per_round_max = vec![0usize; rounds];

    for (p, rd) in w.per_rank.iter().enumerate() {
        let noise = crate::driver::os_noise_factor(p, cfg.os_noise);
        let total_recv = rd.recv_bytes();
        let share = total_recv.div_ceil(rounds as u64).max(1);
        let mut plan = BspRankPlan {
            static_bytes: rd.partition_bytes + rd.total_tasks() as u64 * TASK_ENTRY_BYTES,
            recv_bytes: vec![0; rounds],
            alloc_bytes: vec![0; rounds],
            compute: vec![SimTime::ZERO; rounds],
            overhead: vec![SimTime::ZERO; rounds],
            tasks: vec![0; rounds],
            checksum: 0,
        };

        // Local tasks run in round 0 (no communication needed).
        let mut ids: Vec<(u32, u32)> = Vec::with_capacity(rd.total_tasks());
        for (t, ov) in &rd.local {
            let cells = cost.cells(t, *ov);
            plan.compute[0] += SimTime::from_secs_f64(machine.compute_secs(cells) * noise);
            plan.overhead[0] += SimTime::from_ns(cfg.overhead_ns_per_task_bsp);
            plan.tasks[0] += 1;
            ids.push((t.a, t.b));
        }

        let mut round = 0usize;
        let mut round_owners: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for g in &rd.groups {
            if plan.recv_bytes[round] + g.bytes > share && round + 1 < rounds {
                peers_per_round_max[round] = peers_per_round_max[round].max(round_owners.len());
                round_owners.clear();
                round += 1;
            }
            round_owners.insert(g.owner);
            plan.recv_bytes[round] += g.bytes;
            send_per_round[round][g.owner as usize] += g.bytes;
            for (t, ov) in &g.tasks {
                let cells = cost.cells(t, *ov);
                plan.compute[round] += SimTime::from_secs_f64(machine.compute_secs(cells) * noise);
                plan.overhead[round] += SimTime::from_ns(cfg.overhead_ns_per_task_bsp);
                plan.tasks[round] += 1;
                ids.push((t.a, t.b));
            }
        }
        peers_per_round_max[round] = peers_per_round_max[round].max(round_owners.len());
        for (r, recv_max) in recv_per_round_max.iter_mut().enumerate().take(rounds) {
            *recv_max = (*recv_max).max(plan.recv_bytes[r]);
            plan.alloc_bytes[r] =
                (plan.recv_bytes[r] as f64 * cfg.bsp_buffer_factor.max(1.0)) as u64;
        }
        plan.checksum = task_checksum(ids);
        per_rank.push(plan);
    }

    let coll = CollParams::from_net(&machine.net);
    let nnodes = nranks.div_ceil(machine.net.ranks_per_node);
    let round_comm: Vec<SimTime> = (0..rounds)
        .map(|r| {
            let max_send = send_per_round[r].iter().copied().max().unwrap_or(0);
            alltoallv_time(
                &coll,
                &ExchangeLoad {
                    nranks,
                    nnodes,
                    max_send,
                    max_recv: recv_per_round_max[r],
                    active_peers: peers_per_round_max[r].max(1),
                    volume_scale: machine.volume_scale.max(1.0),
                },
            )
        })
        .collect();

    BspPlan {
        rounds,
        round_comm,
        per_rank,
    }
}

/// Strategy-internal messages of the BSP code: only the crash-adoption
/// self-timer (BSP otherwise exchanges purely through collectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BspApp {
    /// Self-timer: adopt the shard of crashed rank `.0` (fires
    /// `crash_detect` after its scheduled death; this rank is its
    /// deterministic successor).
    Adopt(usize),
}

/// The strategy-facing context of the BSP code.
type BCtx<'c, 'e> = RtCtx<'c, 'e, BspApp, (), ()>;

/// The bulk-synchronous superstep state machine, hosted by
/// [`RankRuntime`]. All communication is through the modelled collective
/// ([`RtCtx::collective_exchange`]); the strategy sends no point-to-point
/// messages and tracks no requests.
pub struct BspStrategy {
    plan: Arc<BspPlan>,
    rank: usize,
    tasks_done: u64,
}

impl BspStrategy {
    /// Creates the superstep state machine for one rank.
    pub fn new(plan: Arc<BspPlan>, rank: usize) -> BspStrategy {
        BspStrategy {
            plan,
            rank,
            tasks_done: 0,
        }
    }

    /// Creates the full runtime-hosted rank program. The fault plan feeds
    /// the collective detect-and-reissue loop (an inactive plan never
    /// fires).
    pub fn program(
        plan: Arc<BspPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
        fault: Arc<FaultPlan>,
    ) -> RankRuntime<BspStrategy> {
        BspStrategy::program_with_recovery(plan, rank, machine, cfg, fault, None)
    }

    /// Creates the full runtime-hosted rank program with the recovery
    /// stack: the fault plan (crash schedule included) and the shared
    /// checkpoint store. With no crashes scheduled it behaves exactly
    /// like [`Self::program`].
    pub fn program_with_recovery(
        plan: Arc<BspPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
        fault: Arc<FaultPlan>,
        // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
        ckpt: Option<Arc<Mutex<CkptStore>>>,
    ) -> RankRuntime<BspStrategy> {
        RankRuntime::with_recovery(
            BspStrategy::new(plan, rank),
            rank,
            RuntimeConfig::from_run(machine, cfg),
            fault,
            ckpt,
        )
    }
}

impl CoordinationStrategy for BspStrategy {
    type App = BspApp;
    type Req = ();
    type Rep = ();

    fn on_start(&mut self, rt: &mut BCtx<'_, '_>) {
        // gnb-lint: allow(panic-path, reason = "self.rank < nranks is established at Engine construction and never changes")
        rt.mem_alloc(self.plan.per_rank[self.rank].static_bytes);
        // Crash-adoption timers, armed only when this rank is a scheduled
        // successor (crash-free runs stay event-for-event identical).
        for (dead, at) in rt.planned_adoptions() {
            rt.after_app(at + rt.crash_detect(), BspApp::Adopt(dead));
        }
        // Enter the round-0 exchange.
        rt.barrier_enter(0);
    }

    fn on_app(&mut self, rt: &mut BCtx<'_, '_>, _src: usize, msg: BspApp) {
        let BspApp::Adopt(dead) = msg;
        // Idle ended by the adoption timer is recovery, like the replay
        // that follows.
        rt.classify_idle(TimeCategory::Recovery);
        rt.note_takeover(dead);
        let (next_round, ckpt_tasks) = match rt.ckpt_restore(dead) {
            Some(bytes) => {
                let mut r = CkptReader::new(&bytes);
                let next_round = r.usize();
                let tasks = r.u64();
                r.finish();
                (next_round, tasks)
            }
            None => (0, 0),
        };
        rt.note_recovered(ckpt_tasks);
        self.tasks_done += ckpt_tasks;
        // Replay the dead rank's remaining supersteps from the checkpoint
        // forward. The exchanges are not re-run: the reads a round needs
        // were replicated to survivors by the pre-crash collectives, so
        // the replay recomputes from checkpointed input — overhead and
        // compute only, all booked as recovery.
        let dplan = Arc::clone(&self.plan);
        // gnb-lint: allow(panic-path, reason = "dead is a rank id from the engine's crash plan; per_rank has exactly nranks entries by construction")
        let d = &dplan.per_rank[dead];
        for r in next_round..dplan.rounds {
            // gnb-lint: allow(panic-path, reason = "the replay loop is bounded by the plan's own round count; all per-round vectors have rounds entries")
            rt.advance(d.overhead[r], TimeCategory::Recovery);
            // gnb-lint: allow(panic-path, reason = "the replay loop is bounded by the plan's own round count; all per-round vectors have rounds entries")
            rt.advance(d.compute[r], TimeCategory::Recovery);
            // gnb-lint: allow(panic-path, reason = "the replay loop is bounded by the plan's own round count; all per-round vectors have rounds entries")
            self.tasks_done += d.tasks[r];
        }
    }

    fn on_barrier(&mut self, rt: &mut BCtx<'_, '_>, id: u64) {
        // Any wait before a barrier release is synchronization (compute
        // imbalance between supersteps).
        rt.classify_idle(TimeCategory::Sync);
        let round = id as usize;
        if round >= self.plan.rounds {
            return; // final barrier: run complete
        }
        // Superstep boundary checkpoint: rounds `0..id` are complete. A
        // successor restoring this replays from round `id` on.
        if rt.ckpt_enabled() {
            let mut w = CkptWriter::new();
            w.usize(round);
            w.u64(self.tasks_done);
            rt.ckpt_save(w.finish());
        }
        // gnb-lint: allow(panic-path, reason = "self.rank < nranks is established at Engine construction and never changes")
        let me = &self.plan.per_rank[self.rank];
        // The exchange itself (visible communication) plus the runtime's
        // superstep-level detect-and-reissue recovery. A dry budget means
        // the round's data never arrives: skip the compute and let the
        // driver report a structured error.
        // gnb-lint: allow(panic-path, reason = "the early return above bounds round by plan.rounds; round_comm has rounds entries")
        if !rt.collective_exchange(id, self.plan.round_comm[round]) {
            rt.barrier_enter(id + 1);
            return;
        }
        // gnb-lint: allow(panic-path, reason = "round < plan.rounds is checked at function entry; all per-round vectors have rounds entries")
        rt.mem_alloc(me.alloc_bytes[round]);
        // Compute everything associated with the received reads.
        // gnb-lint: allow(panic-path, reason = "round < plan.rounds is checked at function entry; all per-round vectors have rounds entries")
        rt.advance(me.overhead[round], TimeCategory::Overhead);
        // gnb-lint: allow(panic-path, reason = "round < plan.rounds is checked at function entry; all per-round vectors have rounds entries")
        rt.advance(me.compute[round], TimeCategory::Compute);
        // gnb-lint: allow(panic-path, reason = "round < plan.rounds is checked at function entry; all per-round vectors have rounds entries")
        self.tasks_done += me.tasks[round];
        // gnb-lint: allow(panic-path, reason = "round < plan.rounds is checked at function entry; all per-round vectors have rounds entries")
        rt.mem_free(me.alloc_bytes[round]);
        rt.barrier_enter(id + 1);
    }

    fn tasks_done(&self) -> u64 {
        self.tasks_done
    }

    /// This rank's task checksum (valid after the run).
    fn checksum(&self) -> u64 {
        self.plan.per_rank[self.rank].checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use gnb_align::Candidate;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    fn workload(nranks: usize) -> SimWorkload {
        let lengths = vec![1000usize; 16];
        let tasks: Vec<Candidate> = (0..16u32)
            .flat_map(|a| ((a + 1)..16).map(move |b| cand(a, b)))
            .collect();
        let ov: Vec<u32> = tasks.iter().map(|t| 100 * (t.a + 1)).collect();
        SimWorkload::prepare(&lengths, &tasks, &ov, nranks)
    }

    fn machine() -> MachineConfig {
        MachineConfig::cori_knl(1).with_cores_per_node(4)
    }

    #[test]
    fn plan_single_round_when_memory_ample() {
        let w = workload(4);
        let plan = plan_bsp(&w, &machine(), &RunConfig::default());
        assert_eq!(plan.rounds, 1);
        assert_eq!(plan.round_comm.len(), 1);
        // All tasks planned exactly once.
        let planned: u64 = plan
            .per_rank
            .iter()
            .map(|p| p.tasks.iter().sum::<u64>())
            .sum();
        assert_eq!(planned as usize, w.total_tasks);
    }

    #[test]
    fn plan_multi_round_when_memory_tight() {
        let w = workload(4);
        let mut m = machine();
        // Budget floor is the largest read (1000 B), so recv of ~3-4 reads
        // forces multiple rounds.
        m.mem_per_core = 1; // effectively zero after static allocations
        let plan = plan_bsp(&w, &m, &RunConfig::default());
        assert!(plan.rounds > 1, "rounds {}", plan.rounds);
        // Round recv obeys the per-round share.
        for p in &plan.per_rank {
            let total: u64 = p.recv_bytes.iter().sum();
            for &r in &p.recv_bytes {
                assert!(r <= total.div_ceil(plan.rounds as u64).max(1) + 1000);
            }
        }
        // Tasks still conserved.
        let planned: u64 = plan
            .per_rank
            .iter()
            .map(|p| p.tasks.iter().sum::<u64>())
            .sum();
        assert_eq!(planned as usize, w.total_tasks);
    }

    #[test]
    fn comm_only_mode_zeroes_compute() {
        let w = workload(4);
        let cfg = RunConfig {
            cost: CostModel::comm_only(),
            ..RunConfig::default()
        };
        let plan = plan_bsp(&w, &machine(), &cfg);
        for p in &plan.per_rank {
            for c in &p.compute {
                assert_eq!(*c, SimTime::ZERO);
            }
        }
        // Communication still modelled.
        assert!(plan.round_comm[0] > SimTime::ZERO);
    }

    #[test]
    fn checksums_cover_all_tasks() {
        let w = workload(4);
        let plan = plan_bsp(&w, &machine(), &RunConfig::default());
        let combined: u64 = plan
            .per_rank
            .iter()
            .fold(0u64, |acc, p| acc.wrapping_add(p.checksum));
        let expect = {
            let mut ids = Vec::new();
            for rd in &w.per_rank {
                for (t, _) in rd
                    .local
                    .iter()
                    .chain(rd.groups.iter().flat_map(|g| g.tasks.iter()))
                {
                    ids.push((t.a, t.b));
                }
            }
            task_checksum(ids)
        };
        assert_eq!(combined, expect);
    }
}
