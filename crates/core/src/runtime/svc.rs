//! Runtime-owned services: the per-rank request ledger, the
//! exponential-backoff retry machinery with attempt-tagged dedup, the
//! legacy owner-side reply-drop injector, and the unified recovery
//! counters — everything [`async_alg`](crate::async_alg) and
//! [`bsp`](crate::bsp) used to hand-roll separately.
//!
//! A *tracked request* is a `(key, attempt)` pair: the key names the thing
//! being fetched (a read id, a batch id) and the attempt is a per-request
//! sequence number that distinguishes a retried reply from a stale
//! duplicate. The service stores everything needed to re-issue the
//! request verbatim — destination, wire size, payload — so strategies
//! never see the retry path at all.

use crate::driver::RunConfig;
use crate::machine::MachineConfig;
use gnb_sim::ckpt::{CkptParams, CkptStore};
use gnb_sim::fault::FaultPlan;
use gnb_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
// gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
use std::sync::{Arc, Mutex};

/// How a run responds to a detected crash-stop peer failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrashResponse {
    /// Survivors deterministically adopt the dead rank's shard: its
    /// designated successor restores the last checkpoint and replays the
    /// tail, and requests addressed to the dead rank retarget to the
    /// successor once the retry budget escalates to a death verdict. Every
    /// task still completes exactly once.
    #[default]
    Takeover,
    /// Graceful degradation: the dead shard is dropped. Requests to the
    /// dead rank are abandoned without counting as run failures, and the
    /// driver reports the coverage loss instead of an error.
    Degrade,
}

/// Recovery-machinery counters aggregated per rank (summed across ranks
/// by the driver). All zero on a reliable network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Requests re-issued after a timeout.
    pub retries: u64,
    /// Duplicate replies received and discarded.
    pub dup_replies: u64,
    /// Replies deliberately dropped by the legacy owner-side injector.
    pub drops_injected: u64,
    /// Exchange rounds re-executed after a detected loss (collective
    /// strategies), summed over ranks.
    pub reissued_rounds: u64,
    /// Ownership takeovers: requests retargeted to a dead peer's successor
    /// plus shard adoptions performed by successors.
    pub takeovers: u64,
    /// Checkpoint restores performed during recovery.
    pub restores: u64,
    /// Tasks whose completion was recovered from a checkpoint (no replay
    /// needed) during takeover.
    pub recovered_tasks: u64,
}

impl RecoveryStats {
    /// Accumulates another rank's counters.
    pub fn absorb(&mut self, other: RecoveryStats) {
        self.retries += other.retries;
        self.dup_replies += other.dup_replies;
        self.drops_injected += other.drops_injected;
        self.reissued_rounds += other.reissued_rounds;
        self.takeovers += other.takeovers;
        self.restores += other.restores;
        self.recovered_tasks += other.recovered_tasks;
    }
}

/// Structured outcome of a retry budget running dry: the key that gave
/// up, after how many attempts. Surfaces as
/// [`crate::driver::RunError::RetryBudgetExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryFailure {
    /// The request key (async: read id; BSP: round; aggregated: batch id).
    pub key: u64,
    /// Total attempts made (initial issue + retries).
    pub attempts: u32,
    /// The rank the final attempt was addressed to (BSP rounds: the
    /// giving-up rank itself).
    pub owner: usize,
    /// Whether that peer was crash-dead when the budget ran dry, as
    /// opposed to merely transiently faulty.
    pub crash_dead: bool,
}

/// Tunables the runtime needs from a [`RunConfig`] + machine pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// CPU cost of injecting one message (GASNet-EX style AM injection).
    pub inject: SimTime,
    /// CPU cost of servicing one request unit (one read lookup).
    pub service: SimTime,
    /// Whether the network can lose/duplicate/delay messages — arms the
    /// per-attempt retry timers.
    pub unreliable: bool,
    /// Base retry timeout (attempt 0); later attempts back off
    /// exponentially with jitter.
    pub backoff_base: SimTime,
    /// Backoff cap: no retry waits longer than this (plus jitter).
    pub backoff_max: SimTime,
    /// Retry budget per request / re-issue budget per exchange round.
    pub max_retries: u32,
    /// Jitter seed (from the fault config, so runs stay reproducible).
    pub fault_seed: u64,
    /// Legacy failure injection (0 = off): every Nth served request's
    /// reply is lost.
    pub drop_period: u64,
    /// Crash-stop response policy (only consulted when the fault plan
    /// schedules crashes).
    pub crash_response: CrashResponse,
    /// Detection latency: how long after a crash its successor notices and
    /// starts the takeover.
    pub crash_detect: SimTime,
    /// Checkpoint cadence and I/O cost model.
    pub ckpt: CkptParams,
}

impl RuntimeConfig {
    /// Derives the runtime tunables from a run configuration.
    pub fn from_run(machine: &MachineConfig, cfg: &RunConfig) -> RuntimeConfig {
        RuntimeConfig {
            inject: SimTime::from_ns(machine.rpc_inject_ns),
            service: SimTime::from_ns(machine.rpc_service_ns),
            // Crashes make the wire unreliable too: a dead peer's replies
            // never come, and only an armed retry timer can notice.
            unreliable: cfg.rpc_drop_period > 0
                || cfg.fault.message_faults_possible()
                || !cfg.crash.is_empty(),
            backoff_base: SimTime::from_ns(cfg.rpc_timeout_ns),
            backoff_max: SimTime::from_ns(cfg.rpc_backoff_max_ns.max(cfg.rpc_timeout_ns)),
            max_retries: cfg.rpc_max_retries,
            fault_seed: cfg.fault.seed,
            drop_period: cfg.rpc_drop_period,
            crash_response: cfg.crash_response,
            crash_detect: SimTime::from_ns(cfg.crash_detect_ns),
            ckpt: cfg.ckpt,
        }
    }
}

/// One tracked request's stored state. Entries persist after completion
/// (with `arrived` set) so late duplicates are still recognised.
#[derive(Debug, Clone)]
pub(crate) struct PendingReq<Q> {
    /// Owner rank the request goes to.
    pub dst: usize,
    /// Request wire size, bytes (re-used verbatim on re-issue).
    pub bytes: u64,
    /// Current attempt number (stale-timer detection).
    pub attempt: u32,
    /// Whether the reply arrived (or the request was abandoned).
    pub arrived: bool,
    /// Request payload, cloned on re-issue.
    pub payload: Q,
}

/// The per-rank runtime service state. Owned by
/// [`RankRuntime`](super::RankRuntime); strategies reach it only through
/// the [`RtCtx`](super::RtCtx) surface.
#[derive(Debug)]
pub struct RuntimeSvc<Q> {
    pub(crate) cfg: RuntimeConfig,
    pub(crate) rank: usize,
    /// Fault plan consulted for collective-exchange losses (an inactive
    /// plan never fires). Message-level faults live in the engine.
    pub(crate) fault: Arc<FaultPlan>,
    /// Tracked requests by key.
    pub(crate) pending: BTreeMap<u64, PendingReq<Q>>,
    /// Served-request counter (drives the legacy deterministic drops).
    pub(crate) served: u64,
    /// Unified recovery counters.
    pub(crate) counters: RecoveryStats,
    /// First retry-budget exhaustion, if any (the run is then incomplete
    /// and the driver reports a structured error).
    pub(crate) failed: Option<RetryFailure>,
    /// Shared stable-storage checkpoint store (None when no crashes are
    /// scheduled — crash-free runs take no checkpoints).
    // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
    pub(crate) ckpt_store: Option<Arc<Mutex<CkptStore>>>,
    /// This rank's monotone checkpoint epoch counter.
    pub(crate) ckpt_epoch: u64,
}

impl<Q> RuntimeSvc<Q> {
    pub(crate) fn new(
        cfg: RuntimeConfig,
        rank: usize,
        fault: Arc<FaultPlan>,
        // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
        ckpt_store: Option<Arc<Mutex<CkptStore>>>,
    ) -> RuntimeSvc<Q> {
        RuntimeSvc {
            cfg,
            rank,
            fault,
            pending: BTreeMap::new(),
            served: 0,
            counters: RecoveryStats::default(),
            failed: None,
            ckpt_store,
            ckpt_epoch: 0,
        }
    }

    /// Backoff-with-jitter delay before giving up on `attempt` of the
    /// request for `key`.
    pub(crate) fn retry_delay(&self, key: u64, attempt: u32) -> SimTime {
        gnb_sim::backoff_delay(
            self.cfg.backoff_base,
            self.cfg.backoff_max,
            attempt,
            self.cfg.fault_seed ^ (self.rank as u64) << 32,
            key,
        )
    }

    /// Records the first retry-budget exhaustion.
    pub(crate) fn record_failure(
        &mut self,
        key: u64,
        attempts: u32,
        owner: usize,
        crash_dead: bool,
    ) {
        if self.failed.is_none() {
            self.failed = Some(RetryFailure {
                key,
                attempts,
                owner,
                crash_dead,
            });
        }
    }
}
