//! The coordination runtime: one rank-program shell shared by every
//! coordination strategy.
//!
//! The paper compares two coordination codes (BSP §3.1, async §3.2); its
//! §5 asks what sits between them. Before this module existed, each code
//! hand-rolled the same plumbing — typed message dispatch over the DES
//! [`Ctx`], exponential-backoff retry with attempt-tagged dedup, recovery
//! counter / [`TimeCategory`] ledger bookkeeping, race-detector state-key
//! instrumentation — so a third strategy meant a third copy of all of it.
//! Now the split is:
//!
//! * **runtime-owned** ([`RankRuntime`] + [`RuntimeSvc`]): the wire enum
//!   [`RtMsg`] and its dispatch; tracked-request issue / retry / give-up
//!   (timers armed through the never-faulted self-timer path); duplicate
//!   -reply suppression with per-attempt tags; the owner-side service
//!   cost and legacy reply-drop injector; collective detect-and-reissue
//!   recovery; idle classification of the runtime's own events (replies
//!   → `Comm`, retry timers → `Recovery`); race keys for request state;
//!   the unified [`RecoveryStats`] / [`RetryFailure`] ledger.
//! * **strategy-owned** (a [`CoordinationStrategy`] impl): the protocol
//!   state machine — what to request when, how to serve a request, what
//!   to do with an arrived payload, when to enter barriers — plus
//!   classification of idle ended by its *own* events and memory-tracker
//!   calls for state it allocates.
//!
//! Strategies talk to the engine exclusively through [`RtCtx`], which
//! wraps the raw [`Ctx`] so application messages, tracked requests and
//! replies stay typed end to end.
//!
//! # Adding a strategy
//!
//! Implement [`CoordinationStrategy`] (see [`crate::agg_async`] for a
//! complete small example): pick an `App` message type for self-timers
//! and strategy-internal messages, a `Req`/`Rep` payload pair for tracked
//! requests, drive requests with [`RtCtx::send_tracked`], serve them with
//! [`RtCtx::serve_reply`], and let the runtime deliver `on_reply` /
//! `on_give_up`. Wrap it in [`RankRuntime::new`] and add an
//! [`crate::driver::Algorithm`] arm in the driver.

mod svc;

pub use svc::{CrashResponse, RecoveryStats, RetryFailure, RuntimeConfig, RuntimeSvc};

use gnb_sim::ckpt::CkptStore;
use gnb_sim::engine::{Ctx, Program, TimeCategory};
use gnb_sim::fault::FaultPlan;
use gnb_sim::obs::InstantKind;
use gnb_sim::SimTime;
// gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
use std::sync::{Arc, Mutex};

/// Base of the namespaced key range used for takeover re-fetches: a
/// successor re-requesting an adopted shard's remote read `r` (originally
/// owned by dead rank `d`) uses key `TAKEOVER_KEY_BASE + (d << 32) + r`,
/// so adopted requests can never collide with the original rank's keys
/// (plain read ids are `u32`, batch keys sit at `1 << 32`).
pub const TAKEOVER_KEY_BASE: u64 = 1 << 40;

/// The wire/event enum every runtime-hosted strategy runs over. `A` is
/// the strategy's own message type (polls, flush timers), `Q`/`P` the
/// tracked request/reply payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtMsg<A, Q, P> {
    /// A strategy-internal message or self-timer, dispatched verbatim to
    /// [`CoordinationStrategy::on_app`].
    App(A),
    /// A tracked request (issued by [`RtCtx::send_tracked`] or a runtime
    /// retry).
    Req {
        /// Request key (read id, batch id, ...).
        key: u64,
        /// Attempt sequence number (0 = first issue).
        attempt: u32,
        /// Strategy payload.
        payload: Q,
    },
    /// A reply to a tracked request (sent by [`RtCtx::serve_reply`]).
    Rep {
        /// Echo of the request key.
        key: u64,
        /// Echo of the request's attempt number.
        attempt: u32,
        /// Strategy payload.
        payload: P,
    },
    /// Runtime self-timer guarding one attempt of a tracked request. A
    /// timer whose attempt is no longer current — the reply arrived, the
    /// request was abandoned, or a newer retry superseded it — is stale:
    /// it no-ops and is *not* re-armed, so completed requests leak no
    /// timer events into the queue.
    Timeout {
        /// The request whose reply may have been lost.
        key: u64,
        /// The attempt this timer guards.
        attempt: u32,
    },
}

/// Shorthand for the wire type of a strategy.
pub type StrategyMsg<S> = RtMsg<
    <S as CoordinationStrategy>::App,
    <S as CoordinationStrategy>::Req,
    <S as CoordinationStrategy>::Rep,
>;

/// A coordination strategy: the protocol state machine a rank runs,
/// hosted by [`RankRuntime`]. Only the protocol lives here — message
/// plumbing, retries, dedup and recovery accounting are runtime-owned.
pub trait CoordinationStrategy {
    /// Strategy-internal messages and self-timers.
    type App: Clone;
    /// Tracked-request payload (stored by the runtime, cloned on retry).
    type Req: Clone;
    /// Reply payload.
    type Rep: Clone;

    /// Called once at virtual time zero.
    fn on_start(&mut self, rt: &mut RtCtx<'_, '_, Self::App, Self::Req, Self::Rep>);

    /// A strategy message (or self-timer) arrived. The strategy owns the
    /// idle classification of its own events.
    fn on_app(
        &mut self,
        rt: &mut RtCtx<'_, '_, Self::App, Self::Req, Self::Rep>,
        src: usize,
        msg: Self::App,
    ) {
        let _ = (rt, src, msg);
        // gnb-lint: allow(panic-path, reason = "default for strategies that declare no app messages; the protocol-contract pass forces overrides wherever such traffic is actually issued")
        unreachable!("strategy declared no app messages");
    }

    /// A tracked request arrived at this rank (owner side). Classify the
    /// idle gap, declare race keys for the state read, then answer with
    /// [`RtCtx::serve_reply`].
    fn on_request(
        &mut self,
        rt: &mut RtCtx<'_, '_, Self::App, Self::Req, Self::Rep>,
        src: usize,
        key: u64,
        attempt: u32,
        payload: Self::Req,
    ) {
        let _ = (rt, src, key, attempt, payload);
        // gnb-lint: allow(panic-path, reason = "default for strategies that issue no tracked requests; the protocol-contract pass forces overrides wherever send_tracked appears")
        unreachable!("strategy declared no tracked requests");
    }

    /// The (first) reply for tracked request `key` arrived. The runtime
    /// has already deduplicated, classified the idle gap as
    /// [`TimeCategory::Comm`] and marked the request complete.
    fn on_reply(
        &mut self,
        rt: &mut RtCtx<'_, '_, Self::App, Self::Req, Self::Rep>,
        key: u64,
        payload: Self::Rep,
    ) {
        let _ = (rt, key, payload);
        // gnb-lint: allow(panic-path, reason = "default for strategies that issue no tracked requests; the protocol-contract pass forces overrides wherever send_tracked appears")
        unreachable!("strategy declared no tracked requests");
    }

    /// Tracked request `key` exhausted its retry budget and was
    /// abandoned. The runtime has recorded the [`RetryFailure`]; the
    /// strategy must unwind its own accounting so the rank still reaches
    /// its exit barrier (the driver turns the failure into a structured
    /// error).
    fn on_give_up(&mut self, rt: &mut RtCtx<'_, '_, Self::App, Self::Req, Self::Rep>, key: u64) {
        let _ = (rt, key);
        // gnb-lint: allow(panic-path, reason = "default for strategies that issue no tracked requests; the protocol-contract pass forces overrides wherever send_tracked appears")
        unreachable!("strategy declared no tracked requests");
    }

    /// A barrier this rank entered completed.
    fn on_barrier(&mut self, rt: &mut RtCtx<'_, '_, Self::App, Self::Req, Self::Rep>, id: u64);

    /// Tasks completed so far (driver verification).
    fn tasks_done(&self) -> u64;

    /// This rank's order-independent task checksum.
    fn checksum(&self) -> u64;
}

/// The strategy-facing engine surface: a typed wrapper over the DES
/// [`Ctx`] plus the runtime services.
pub struct RtCtx<'c, 'e, A, Q, P> {
    ctx: &'c mut Ctx<'e, RtMsg<A, Q, P>>,
    svc: &'c mut RuntimeSvc<Q>,
}

impl<'c, 'e, A: Clone, Q: Clone, P: Clone> RtCtx<'c, 'e, A, Q, P> {
    // ---- passthroughs to the DES context ----

    /// Current virtual time on this rank.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Total number of ranks.
    pub fn nranks(&self) -> usize {
        self.ctx.nranks()
    }

    /// Consumes `dt` of CPU, booked under `cat` (see [`Ctx::advance`]).
    pub fn advance(&mut self, dt: SimTime, cat: TimeCategory) {
        self.ctx.advance(dt, cat);
    }

    /// Books the pending idle gap under `cat` (see [`Ctx::classify_idle`]).
    pub fn classify_idle(&mut self, cat: TimeCategory) {
        self.ctx.classify_idle(cat);
    }

    /// The as-yet-unclassified idle gap for this handler.
    pub fn idle_gap(&self) -> SimTime {
        self.ctx.idle_gap()
    }

    /// Enters barrier `id` (see [`Ctx::barrier_enter`]).
    pub fn barrier_enter(&mut self, id: u64) {
        self.ctx.barrier_enter(id);
    }

    /// Records `bytes` allocated on this rank.
    pub fn mem_alloc(&mut self, bytes: u64) {
        self.ctx.mem_alloc(bytes);
    }

    /// Records `bytes` freed on this rank.
    pub fn mem_free(&mut self, bytes: u64) {
        self.ctx.mem_free(bytes);
    }

    /// Current allocation on this rank.
    pub fn mem_current(&self) -> u64 {
        self.ctx.mem_current()
    }

    /// Declares that this handler reads logical state `key` (race
    /// detector; see [`Ctx::race_read`]).
    pub fn race_read(&mut self, key: u64) {
        self.ctx.race_read(key);
    }

    /// Declares that this handler writes logical state `key`.
    pub fn race_write(&mut self, key: u64) {
        self.ctx.race_write(key);
    }

    /// Sends a strategy message to `dst` through the network model.
    pub fn send_app(&mut self, dst: usize, bytes: u64, msg: A) {
        self.ctx.send(dst, bytes, RtMsg::App(msg));
    }

    /// Arms a strategy self-timer. Self-timers go straight to the event
    /// queue — per the fault-injection contract they are never dropped,
    /// duplicated or delayed, whatever the fault plan does to the wire.
    pub fn after_app(&mut self, delay: SimTime, msg: A) {
        self.ctx.after(delay, RtMsg::App(msg));
    }

    // ---- runtime services ----

    /// Whether the network can lose/duplicate/delay messages (strategies
    /// may batch differently on a reliable wire).
    pub fn unreliable(&self) -> bool {
        self.svc.cfg.unreliable
    }

    /// Unified recovery counters so far (this rank).
    pub fn recovery(&self) -> RecoveryStats {
        self.svc.counters
    }

    // ---- crash awareness and checkpointing ----

    /// The configured crash-stop response policy.
    pub fn crash_response(&self) -> CrashResponse {
        self.svc.cfg.crash_response
    }

    /// Whether `rank` is crash-dead at this rank's current virtual time.
    pub fn crashed_by_now(&self, rank: usize) -> bool {
        !self.svc.fault.crash.is_empty() && self.svc.fault.crash.crashed_by(rank, self.ctx.now())
    }

    /// The deterministic takeover successor of `dead`.
    pub fn successor_of(&self, dead: usize) -> usize {
        self.svc.fault.crash.successor(dead, self.ctx.nranks())
    }

    /// `owner` if alive for the whole run, else its takeover successor.
    /// Routing adopted re-fetches through this keeps them off ranks that
    /// will themselves die.
    pub fn effective_owner(&self, owner: usize) -> usize {
        if self.svc.fault.crash.crash_of(owner).is_some() {
            self.successor_of(owner)
        } else {
            owner
        }
    }

    /// Detection latency between a crash and its successor acting on it.
    pub fn crash_detect(&self) -> SimTime {
        self.svc.cfg.crash_detect
    }

    /// The crashes this rank is the designated successor for, as
    /// `(dead_rank, crash_time)` pairs in deterministic order. Empty when
    /// no crashes are scheduled or the response policy is
    /// [`CrashResponse::Degrade`].
    pub fn planned_adoptions(&self) -> Vec<(usize, SimTime)> {
        if self.svc.fault.crash.is_empty() || self.svc.cfg.crash_response != CrashResponse::Takeover
        {
            return Vec::new();
        }
        let me = self.svc.rank;
        let nranks = self.ctx.nranks();
        self.svc
            .fault
            .crash
            .crashes
            .iter()
            .filter(|c| self.svc.fault.crash.successor(c.rank, nranks) == me)
            .map(|c| (c.rank, c.at))
            .collect()
    }

    /// Whether periodic checkpointing is on (crashes scheduled and a
    /// store installed). Crash-free runs never checkpoint, so their
    /// traces and ledgers stay byte-identical to pre-checkpoint builds.
    pub fn ckpt_enabled(&self) -> bool {
        self.svc.ckpt_store.is_some() && !self.svc.fault.crash.is_empty()
    }

    /// The checkpoint cadence.
    pub fn ckpt_interval(&self) -> SimTime {
        SimTime::from_ns(self.svc.cfg.ckpt.interval_ns)
    }

    /// Writes `bytes` as this rank's next checkpoint epoch, booking the
    /// modelled stable-storage I/O as [`TimeCategory::Overhead`] (the
    /// fault-free cost of running with checkpoints on). No-op without a
    /// store.
    pub fn ckpt_save(&mut self, bytes: Vec<u8>) {
        let Some(store) = &self.svc.ckpt_store else {
            return;
        };
        let cost = self.svc.cfg.ckpt.io_cost(bytes.len());
        self.ctx.advance(cost, TimeCategory::Overhead);
        let epoch = self.svc.ckpt_epoch;
        self.svc.ckpt_epoch += 1;
        // gnb-lint: allow(panic-path, reason = "single-threaded simulation: the ckpt store mutex can never be poisoned because no thread panics while holding it")
        store.lock().expect("ckpt store poisoned").record(
            self.svc.rank,
            epoch,
            self.ctx.now(),
            bytes,
        );
    }

    /// Reads `dead`'s latest checkpoint from stable storage, booking the
    /// I/O as [`TimeCategory::Recovery`] and emitting a
    /// [`InstantKind::Restore`] instant. `None` when the dead rank never
    /// completed a checkpoint (the successor then replays from scratch).
    pub fn ckpt_restore(&mut self, dead: usize) -> Option<Vec<u8>> {
        let store = self.svc.ckpt_store.as_ref()?;
        let bytes = store
            .lock()
            // gnb-lint: allow(panic-path, reason = "single-threaded simulation: the ckpt store mutex can never be poisoned because no thread panics while holding it")
            .expect("ckpt store poisoned")
            .latest(dead)
            .map(|rec| rec.bytes.clone())?;
        let cost = self.svc.cfg.ckpt.io_cost(bytes.len());
        self.ctx.advance(cost, TimeCategory::Recovery);
        self.svc.counters.restores += 1;
        self.ctx.obs_instant(InstantKind::Restore, dead as u64);
        Some(bytes)
    }

    /// Records that this rank adopted dead rank `dead`'s shard.
    pub fn note_takeover(&mut self, dead: usize) {
        self.svc.counters.takeovers += 1;
        self.ctx.obs_instant(InstantKind::Takeover, dead as u64);
    }

    /// Records `n` task completions recovered from a checkpoint (work the
    /// takeover did *not* have to replay).
    pub fn note_recovered(&mut self, n: u64) {
        self.svc.counters.recovered_tasks += n;
    }

    /// Issues tracked request `key` to `dst`: books the injection CPU
    /// cost as [`TimeCategory::Overhead`], sends `bytes` on the wire and
    /// — iff the network is unreliable — arms the attempt-0 retry timer
    /// through the never-faulted self-timer path. The runtime stores
    /// `(dst, bytes, payload)` and re-issues verbatim on every timeout
    /// until the reply arrives or the retry budget
    /// ([`RuntimeConfig::max_retries`]) runs dry.
    ///
    /// # Panics
    /// Panics if `key` is already tracked: keys name requests for the
    /// whole run (late duplicate replies must stay recognisable).
    pub fn send_tracked(&mut self, key: u64, dst: usize, bytes: u64, payload: Q) {
        let prev = self.svc.pending.insert(
            key,
            svc::PendingReq {
                dst,
                bytes,
                attempt: 0,
                arrived: false,
                payload: payload.clone(),
            },
        );
        assert!(prev.is_none(), "tracked request key {key} re-used");
        self.issue(key, 0, dst, bytes, payload);
    }

    /// The shared issue path (initial sends and retries): injection CPU,
    /// the wire send, and the per-attempt retry timer. Retries re-book
    /// the whole path as recovery via a ledger scope.
    fn issue(&mut self, key: u64, attempt: u32, dst: usize, bytes: u64, payload: Q) {
        self.ctx
            .advance(self.svc.cfg.inject, TimeCategory::Overhead);
        let req = RtMsg::Req {
            key,
            attempt,
            payload,
        };
        if self.svc.cfg.unreliable {
            let delay = self.svc.retry_delay(key, attempt);
            self.ctx
                .send_with_timer(dst, bytes, req, delay, RtMsg::Timeout { key, attempt });
        } else {
            self.ctx.send(dst, bytes, req);
        }
    }

    /// Serves one tracked request (owner side): books `units` of service
    /// CPU — as [`TimeCategory::Recovery`] when the request is a retry,
    /// since servicing it again is fault-induced work — runs the legacy
    /// reply-drop injector, and ships `bytes` of reply back to `src`.
    /// Declare the race keys of the state being read *before* calling.
    pub fn serve_reply(
        &mut self,
        src: usize,
        key: u64,
        attempt: u32,
        bytes: u64,
        units: u64,
        payload: P,
    ) {
        let cat = if attempt > 0 {
            TimeCategory::Recovery
        } else {
            TimeCategory::Overhead
        };
        self.ctx
            .advance(SimTime::from_ns(self.svc.cfg.service.as_ns() * units), cat);
        self.svc.served += 1;
        if self.svc.cfg.drop_period > 0 && self.svc.served.is_multiple_of(self.svc.cfg.drop_period)
        {
            // Failure injection: the reply is lost on the wire.
            self.svc.counters.drops_injected += 1;
            self.ctx.obs_instant(InstantKind::InjectedDrop, key);
            return;
        }
        self.ctx.send(
            src,
            bytes,
            RtMsg::Rep {
                key,
                attempt,
                payload,
            },
        );
    }

    /// Runs one collective exchange with superstep-level detect-and-
    /// reissue recovery: the exchange itself is booked as visible
    /// communication; every re-execution after a detected loss (the
    /// fault plan's verdict is rank-independent, so all ranks re-execute
    /// together without extra coordination) is booked as recovery.
    /// Returns `false` — with the [`RetryFailure`] recorded — when the
    /// re-issue budget runs dry and the round's data never arrives.
    pub fn collective_exchange(&mut self, round: u64, comm: SimTime) -> bool {
        self.ctx.advance(comm, TimeCategory::Comm);
        let mut attempt = 0u32;
        while self.svc.fault.bsp_round_lost(round, attempt) {
            if attempt >= self.svc.cfg.max_retries {
                self.svc
                    .record_failure(round, attempt + 1, self.svc.rank, false);
                self.ctx.obs_instant(InstantKind::GiveUp, round);
                return false;
            }
            attempt += 1;
            self.svc.counters.reissued_rounds += 1;
            self.ctx.obs_instant(InstantKind::Retry, round);
            self.ctx.advance(comm, TimeCategory::Recovery);
        }
        true
    }

    // ---- runtime-internal dispatch (called by RankRuntime) ----

    /// Reply preamble: race key, attempt-tagged dedup, idle
    /// classification, arrival marking. Returns `true` when the strategy
    /// should see the payload.
    fn accept_reply(&mut self, key: u64) -> bool {
        // Reply receipt updates the request's arrival state; a duplicate
        // reply landing at the same virtual time as the original would be
        // resolved by queue tie-break alone — exactly what the race
        // detector exists to flag.
        self.ctx.race_write(key);
        let entry = self
            .svc
            .pending
            .get_mut(&key)
            // gnb-lint: allow(panic-path, reason = "pending entries outlive their wire traffic by construction: the engine only routes replies the send path registered")
            .expect("reply for a request this rank never issued");
        if entry.arrived {
            // Duplicate: a wire-duplicated copy or a retry that raced the
            // original reply. The AM handler still ran — book its cost as
            // recovery and discard. Any attempt number is acceptable: the
            // payload is the same.
            self.svc.counters.dup_replies += 1;
            self.ctx.obs_instant(InstantKind::DupReply, key);
            self.ctx.classify_idle(TimeCategory::Recovery);
            self.ctx
                .advance(self.svc.cfg.service, TimeCategory::Recovery);
            return false;
        }
        // Idle that a reply terminates is unhidden communication.
        self.ctx.classify_idle(TimeCategory::Comm);
        entry.arrived = true;
        true
    }

    /// Timeout dispatch: stale-timer detection, retry re-issue with
    /// backoff, budget-exhaustion bookkeeping. Returns `true` when the
    /// request was abandoned and the strategy must unwind (`on_give_up`).
    fn expire(&mut self, key: u64, attempt: u32) -> bool {
        // Idle ended by a retry timer is time lost to (suspected) faults,
        // whatever the timer's fate below.
        self.ctx.classify_idle(TimeCategory::Recovery);
        // The stale-check below reads/writes the same arrival and attempt
        // state a reply writes: a timer firing at the very instant the
        // reply arrives is tie-break-resolved.
        self.ctx.race_write(key);
        let entry = self
            .svc
            .pending
            .get_mut(&key)
            // gnb-lint: allow(panic-path, reason = "pending entries outlive their timers by construction: every armed timer key was registered by the send path")
            .expect("timeout for a request this rank never issued");
        if entry.arrived || attempt != entry.attempt {
            // Stale timer: the reply arrived (or a newer attempt owns the
            // request). No-op, and crucially do NOT re-arm — completed
            // requests must not keep timers circulating in the queue.
            return false;
        }
        if attempt >= self.svc.cfg.max_retries {
            let dst = entry.dst;
            // Budget escalation doubles as the failure detector: only a
            // peer that is actually crash-dead at this rank's clock gets
            // the crash-stop verdict; a transiently-faulty live peer still
            // produces a structured run error below.
            let crash_dead = !self.svc.fault.crash.is_empty()
                && self.svc.fault.crash.crashed_by(dst, self.ctx.now());
            if crash_dead {
                match self.svc.cfg.crash_response {
                    CrashResponse::Takeover => {
                        // Ownership takeover: retarget the request at the
                        // dead rank's deterministic successor with a fresh
                        // attempt budget. All prior timers for this key
                        // have fired (attempts are sequential) and any
                        // reply from the dead rank was doomed by the
                        // engine, so resetting the attempt tag is safe.
                        let succ = self.svc.fault.crash.successor(dst, self.ctx.nranks());
                        entry.dst = succ;
                        entry.attempt = 0;
                        let (bytes, payload) = (entry.bytes, entry.payload.clone());
                        self.svc.counters.takeovers += 1;
                        self.ctx.obs_instant(InstantKind::Takeover, key);
                        let prev = self.ctx.ledger_scope(Some(TimeCategory::Recovery));
                        self.issue(key, 0, succ, bytes, payload);
                        self.ctx.ledger_scope(prev);
                        return false;
                    }
                    CrashResponse::Degrade => {
                        // Graceful degradation: abandon the request without
                        // recording a run failure — the strategy unwinds
                        // and the driver reports coverage loss instead.
                        entry.arrived = true;
                        self.ctx.obs_instant(InstantKind::GiveUp, key);
                        return true;
                    }
                }
            }
            // Retry budget exhausted: give up on this request so the run
            // terminates with a structured error instead of retrying (or
            // hanging) forever. The strategy unwinds; its tasks stay
            // undone, which the driver turns into
            // RunError::RetryBudgetExhausted.
            entry.arrived = true;
            self.svc.record_failure(key, attempt + 1, dst, false);
            self.ctx.obs_instant(InstantKind::GiveUp, key);
            return true;
        }
        // Reply presumed lost: re-issue with the next attempt number and
        // arm a fresh (backed-off) timer for it. The whole path — the
        // injection cost send_tracked books as overhead — is recovery
        // work here, so it runs under a ledger scope.
        let next = attempt + 1;
        entry.attempt = next;
        self.svc.counters.retries += 1;
        self.ctx.obs_instant(InstantKind::Retry, key);
        let (dst, bytes, payload) = (entry.dst, entry.bytes, entry.payload.clone());
        let prev = self.ctx.ledger_scope(Some(TimeCategory::Recovery));
        self.issue(key, next, dst, bytes, payload);
        self.ctx.ledger_scope(prev);
        false
    }
}

/// The rank program shell: hosts one [`CoordinationStrategy`] over the
/// runtime services and implements the DES [`Program`] for it.
pub struct RankRuntime<S: CoordinationStrategy> {
    strategy: S,
    svc: RuntimeSvc<S::Req>,
}

impl<S: CoordinationStrategy> RankRuntime<S> {
    /// Hosts `strategy` on rank `rank` with an inactive collective fault
    /// plan (message-level faults live in the engine and need no plan
    /// here).
    pub fn new(strategy: S, rank: usize, cfg: RuntimeConfig) -> RankRuntime<S> {
        RankRuntime::with_fault_plan(strategy, rank, cfg, Arc::new(FaultPlan::default()))
    }

    /// Hosts `strategy` with a fault plan for collective-exchange
    /// detect-and-reissue ([`RtCtx::collective_exchange`]).
    pub fn with_fault_plan(
        strategy: S,
        rank: usize,
        cfg: RuntimeConfig,
        fault: Arc<FaultPlan>,
    ) -> RankRuntime<S> {
        RankRuntime::with_recovery(strategy, rank, cfg, fault, None)
    }

    /// Hosts `strategy` with a full recovery stack: a fault plan (crash
    /// schedule included) and the shared stable-storage checkpoint store.
    pub fn with_recovery(
        strategy: S,
        rank: usize,
        cfg: RuntimeConfig,
        fault: Arc<FaultPlan>,
        // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
        ckpt_store: Option<Arc<Mutex<CkptStore>>>,
    ) -> RankRuntime<S> {
        RankRuntime {
            strategy,
            svc: RuntimeSvc::new(cfg, rank, fault, ckpt_store),
        }
    }

    /// The hosted strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Tasks completed by the hosted strategy.
    pub fn tasks_done(&self) -> u64 {
        self.strategy.tasks_done()
    }

    /// The hosted strategy's task checksum.
    pub fn checksum(&self) -> u64 {
        self.strategy.checksum()
    }

    /// Unified recovery counters (this rank).
    pub fn recovery(&self) -> RecoveryStats {
        self.svc.counters
    }

    /// First retry-budget exhaustion, if any.
    pub fn failure(&self) -> Option<RetryFailure> {
        self.svc.failed
    }
}

impl<S: CoordinationStrategy> Program<StrategyMsg<S>> for RankRuntime<S> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, StrategyMsg<S>>) {
        let mut rt = RtCtx {
            ctx,
            svc: &mut self.svc,
        };
        self.strategy.on_start(&mut rt);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StrategyMsg<S>>, src: usize, msg: StrategyMsg<S>) {
        let mut rt = RtCtx {
            ctx,
            svc: &mut self.svc,
        };
        match msg {
            RtMsg::App(m) => self.strategy.on_app(&mut rt, src, m),
            RtMsg::Req {
                key,
                attempt,
                payload,
            } => self
                .strategy
                .on_request(&mut rt, src, key, attempt, payload),
            RtMsg::Rep {
                key,
                attempt: _,
                payload,
            } => {
                if rt.accept_reply(key) {
                    self.strategy.on_reply(&mut rt, key, payload);
                }
            }
            RtMsg::Timeout { key, attempt } => {
                if rt.expire(key, attempt) {
                    self.strategy.on_give_up(&mut rt, key);
                }
            }
        }
    }

    fn on_barrier(&mut self, ctx: &mut Ctx<'_, StrategyMsg<S>>, id: u64) {
        let mut rt = RtCtx {
            ctx,
            svc: &mut self.svc,
        };
        self.strategy.on_barrier(&mut rt, id);
    }
}
