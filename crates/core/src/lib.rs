//! Many-to-many long-read alignment with bulk-synchronous and asynchronous
//! distributed coordination — the ICPP 2021 study's contribution.
//!
//! Two coordination strategies compute the same fixed task assignment:
//!
//! * [`bsp`] — the bulk-synchronous code (paper §3.1): memory-limited,
//!   dynamically sized exchange–compute supersteps built on an
//!   `alltoallv` cost model, maximising bandwidth utilisation and message
//!   aggregation;
//! * [`async_alg`] — the asynchronous code (paper §3.2): a pull-based
//!   one-RPC-per-remote-read algorithm with callbacks, a bounded
//!   outstanding-request window, split-phase barrier overlap, and a single
//!   exit barrier, maximising injection speed and communication hiding.
//!
//! Both run as rank programs on the `gnb-sim` discrete-event machine (the
//! Cori-KNL substitute) for the scaling study, while [`pipeline`] provides
//! the real shared-memory execution path a downstream user runs on a
//! multicore host. [`driver`] wires workloads, machines, and algorithms
//! into the experiment runs behind every figure of the paper.
//!
//! ```
//! use gnb_core::driver::{run_sim, Algorithm, RunConfig};
//! use gnb_core::machine::MachineConfig;
//! use gnb_core::workload::SimWorkload;
//! use gnb_genome::presets;
//! use gnb_overlap::synth::{synthesize, SynthParams};
//!
//! let preset = presets::ecoli_30x().scaled(256);
//! let w = synthesize(&SynthParams::from_preset(&preset), 7);
//! let machine = MachineConfig::cori_knl(1).with_cores_per_node(8);
//! let workload = SimWorkload::prepare(&w.lengths, &w.tasks, &w.overlap_len, machine.nranks());
//! let bsp = run_sim(&workload, &machine, Algorithm::Bsp, &RunConfig::default());
//! let asy = run_sim(&workload, &machine, Algorithm::Async, &RunConfig::default());
//! // Both coordination codes complete exactly the same tasks.
//! assert_eq!(bsp.tasks_done, asy.tasks_done);
//! assert_eq!(bsp.task_checksum, asy.task_checksum);
//! ```

#![warn(missing_docs)]

pub mod agg_async;
pub mod async_alg;
pub mod breakdown;
pub mod bsp;
pub mod cost;
pub mod driver;
pub mod kmer_stage;
pub mod machine;
pub mod pipeline;
pub mod prelude_stage;
pub mod runtime;
pub mod workload;

pub use breakdown::RuntimeBreakdown;
pub use cost::CostModel;
pub use driver::{run_sim, try_run_sim, Algorithm, RecoveryStats, RunConfig, RunError, RunResult};
pub use machine::MachineConfig;
pub use pipeline::{run_pipeline, PipelineParams, PipelineResult};
pub use workload::SimWorkload;
