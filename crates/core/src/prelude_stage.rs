//! DiBELLA prelude stages: the memory model that sets minimum node counts.
//!
//! The alignment study treats the task graph as fixed input, but the paper
//! notes that the *pipeline's earlier stages* bound the machine size from
//! below: "the initial stages of the DiBELLA pipeline, including the
//! analysis necessary to compute alignment tasks, cannot complete with
//! fewer than (4, 8] Cori KNL nodes" for Human CCS (§4.4), and DiBELLA is
//! cited for "the challenge of working dataset size explosion" (§3).
//!
//! The explosion is the k-mer analysis working set: every input base spawns
//! a k-mer occurrence record — packed k-mer, read id, position, plus hash
//! table overhead — tens of bytes of working set per input byte. This
//! module models that footprint and derives the minimum node count, which
//! the experiment harness uses to start the Human CCS sweeps at 8 nodes
//! exactly as the paper does.

use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// Working-set model of DiBELLA's k-mer analysis stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreludeModel {
    /// Working-set bytes per input base during distributed k-mer counting
    /// and candidate discovery (occurrence records + table overhead +
    /// exchange buffers). Fitted so Human CCS (~12.7 Gbp input) needs
    /// more than 4 and at most 8 Cori KNL nodes, as the paper states.
    pub bytes_per_base: f64,
    /// Fraction of a node's application memory usable by the stage
    /// (leaving room for the partition itself and the runtime).
    pub usable_fraction: f64,
}

impl Default for PreludeModel {
    fn default() -> Self {
        PreludeModel {
            bytes_per_base: 45.0,
            usable_fraction: 0.9,
        }
    }
}

impl PreludeModel {
    /// Total working-set bytes for `input_bases` of reads.
    pub fn working_set(&self, input_bases: u64) -> u64 {
        (input_bases as f64 * self.bytes_per_base) as u64
    }

    /// Minimum number of nodes of `machine` that can hold the stage.
    pub fn min_nodes(&self, input_bases: u64, machine: &MachineConfig) -> usize {
        let per_node =
            (machine.mem_per_core * machine.cores_per_node as u64) as f64 * self.usable_fraction;
        let need = self.working_set(input_bases) as f64;
        (need / per_node).ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knl() -> MachineConfig {
        MachineConfig::cori_knl(1)
    }

    #[test]
    fn human_ccs_needs_between_5_and_8_nodes() {
        // Paper §4.4: minimum node count for Human CCS is in (4, 8].
        let input: u64 = 1_148_839 * 11_060; // reads x mean length
        let m = PreludeModel::default();
        let min = m.min_nodes(input, &knl());
        assert!(min > 4 && min <= 8, "paper: (4, 8] nodes; model says {min}");
    }

    #[test]
    fn ecoli_fits_one_node() {
        // Both E. coli workloads run from a single node in the paper.
        let m = PreludeModel::default();
        let ecoli30: u64 = 16_890 * 8_244;
        let ecoli100: u64 = 91_394 * 5_079;
        assert_eq!(m.min_nodes(ecoli30, &knl()), 1);
        assert_eq!(m.min_nodes(ecoli100, &knl()), 1);
    }

    #[test]
    fn working_set_scales_linearly() {
        let m = PreludeModel::default();
        assert_eq!(m.working_set(2_000), 2 * m.working_set(1_000));
        assert_eq!(m.working_set(0), 0);
    }

    #[test]
    fn min_nodes_monotone_in_input() {
        let m = PreludeModel::default();
        let mut last = 0;
        for gb in [1u64, 4, 16, 64] {
            let n = m.min_nodes(gb * 1_000_000_000, &knl());
            assert!(n >= last);
            last = n;
        }
        assert!(last > 1);
    }

    #[test]
    fn more_memory_fewer_nodes() {
        let m = PreludeModel::default();
        let input = 12_700_000_000u64;
        let small = knl();
        let mut big = knl();
        big.mem_per_core *= 4;
        assert!(m.min_nodes(input, &big) < m.min_nodes(input, &small));
    }
}
