//! The asynchronous coordination code (paper §3.2).
//!
//! A pull-based SPMD algorithm over RPCs (UPC++ in the original; typed
//! messages on the `gnb-sim` engine here):
//!
//! * tasks are indexed under the remote read they need;
//! * each rank issues one asynchronous request per distinct remote read —
//!   bounded by an outstanding-request window (§4.3 discusses tuning
//!   "limits on outgoing requests") — and attaches a callback: when read
//!   `b` arrives, all alignments involving `b` run as they are dequeued;
//! * a split-phase barrier overlaps local-local task computation with read
//!   registration; a single exit barrier keeps every rank's partition
//!   available (ranks keep servicing lookups after finishing their own
//!   work) until all tasks complete;
//! * at most the windowed replies are buffered, so memory stays flat
//!   (Fig. 11: <256 MB/core at every scale).
//!
//! Accounting: idle time that ends with a reply is *visible communication*
//! (latency the compute failed to hide); idle that ends with the exit
//! barrier or a foreign request while this rank has no outstanding
//! requests is *synchronization*; RPC injection/servicing and
//! pointer-based store traversal are *overhead*.
//!
//! Recovery: when the network is unreliable (legacy `rpc_drop_period` or a
//! [`gnb_sim::fault::FaultPlan`] with message faults), every request
//! attempt arms one timeout timer with exponential backoff + jitter
//! ([`gnb_sim::backoff_delay`]); a fired timer re-issues the request up to
//! `rpc_max_retries` times and then gives up with a structured
//! [`RecoveryFailure`]. Retry injection, retried-request servicing,
//! duplicate-reply handling and timer-ended idle are booked under
//! [`TimeCategory::Recovery`], keeping the paper's four base categories
//! fault-free-comparable.

use crate::cost::CostModel;
use crate::driver::RunConfig;
use crate::machine::MachineConfig;
use crate::workload::{task_checksum, SimWorkload};
use gnb_sim::engine::{Ctx, Program, TimeCategory};
use gnb_sim::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;

/// Barrier ids.
const BAR_REG: u64 = 0;
const BAR_EXIT: u64 = 1;

/// Messages of the asynchronous algorithm.
///
/// Requests and replies carry the request's attempt number — a
/// per-request sequence number that lets the requester tell a retried
/// reply from a stale duplicate and lets the owner book retry servicing
/// as recovery work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncMsg {
    /// Self-timer: process the next unit of ready work (the polling the
    /// paper notes UPC++ requires).
    Poll,
    /// Request for a remote read.
    Req {
        /// The read being fetched.
        read: u32,
        /// Attempt sequence number (0 = first issue).
        attempt: u32,
    },
    /// Reply carrying a read (payload bytes are modelled on the wire).
    Rep {
        /// The read that arrived.
        read: u32,
        /// Echo of the request's attempt number.
        attempt: u32,
    },
    /// Self-timer: retry check for one attempt of an outstanding request
    /// (armed once per attempt whenever the network is unreliable). A
    /// timer whose attempt is no longer current — the reply arrived, the
    /// group was abandoned, or a newer retry superseded it — is stale: it
    /// no-ops and is *not* re-armed, so completed requests leak no timer
    /// events into the queue.
    Timeout {
        /// The read whose reply may have been lost.
        read: u32,
        /// The attempt this timer guards.
        attempt: u32,
    },
}

/// Structured outcome of a retry budget running dry: the request that gave
/// up, after how many attempts. Surfaces as
/// [`crate::driver::RunError::RetryBudgetExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryFailure {
    /// The remote read that could not be fetched.
    pub read: u32,
    /// Total attempts made (initial send + retries).
    pub attempts: u32,
}

/// Precomputed per-rank inputs for the async code.
#[derive(Debug, Clone)]
pub struct AsyncPlan {
    /// One entry per rank.
    pub per_rank: Vec<AsyncRankPlan>,
    /// Read lengths (reply payload sizes), shared.
    pub lengths: Arc<Vec<u32>>,
}

/// A remote-read group with modelled costs.
#[derive(Debug, Clone)]
pub struct AsyncGroup {
    /// Remote read id.
    pub read: u32,
    /// Owner rank of the read.
    pub owner: u32,
    /// Read bytes (the reply size).
    pub bytes: u64,
    /// Alignment compute for the group's tasks.
    pub compute: SimTime,
    /// Traversal/invocation overhead for the group's tasks.
    pub overhead: SimTime,
    /// Task count.
    pub tasks: u64,
}

/// One rank's precomputed async inputs.
#[derive(Debug, Clone, Default)]
pub struct AsyncRankPlan {
    /// Partition + pointer-store bytes held for the whole run.
    pub static_bytes: u64,
    /// Local-local work, chunked for polling granularity:
    /// `(compute, overhead, tasks)`.
    pub local_chunks: Vec<(SimTime, SimTime, u64)>,
    /// Remote groups in read order.
    pub groups: Vec<AsyncGroup>,
    /// Order-independent checksum of this rank's tasks.
    pub checksum: u64,
}

/// Approximate bytes per task node in the pointer-based store (boxed node
/// plus map/vec overhead, cf. [`gnb_overlap::store::PointerTaskStore`]).
const TASK_NODE_BYTES: u64 = 48;

/// Local tasks per poll chunk (polling granularity).
const LOCAL_CHUNK: usize = 32;

/// Builds the async plan from the shared fixed workload.
pub fn plan_async(w: &SimWorkload, machine: &MachineConfig, cfg: &RunConfig) -> AsyncPlan {
    let cost: &CostModel = &cfg.cost;
    let per_rank = w
        .per_rank
        .iter()
        .enumerate()
        .map(|(p, rd)| {
            let noise = crate::driver::os_noise_factor(p, cfg.os_noise);
            let mut ids: Vec<(u32, u32)> = Vec::with_capacity(rd.total_tasks());
            let mut local_chunks = Vec::new();
            for chunk in rd.local.chunks(LOCAL_CHUNK) {
                let mut compute = SimTime::ZERO;
                for (t, ov) in chunk {
                    compute +=
                        SimTime::from_secs_f64(machine.compute_secs(cost.cells(t, *ov)) * noise);
                    ids.push((t.a, t.b));
                }
                let overhead =
                    SimTime::from_ns(cfg.overhead_ns_per_task_async * chunk.len() as u64);
                local_chunks.push((compute, overhead, chunk.len() as u64));
            }
            let groups = rd
                .groups
                .iter()
                .map(|g| {
                    let mut compute = SimTime::ZERO;
                    for (t, ov) in &g.tasks {
                        compute += SimTime::from_secs_f64(
                            machine.compute_secs(cost.cells(t, *ov)) * noise,
                        );
                        ids.push((t.a, t.b));
                    }
                    AsyncGroup {
                        read: g.read,
                        owner: g.owner,
                        bytes: g.bytes,
                        compute,
                        overhead: SimTime::from_ns(
                            cfg.overhead_ns_per_task_async * g.tasks.len() as u64,
                        ),
                        tasks: g.tasks.len() as u64,
                    }
                })
                .collect();
            AsyncRankPlan {
                static_bytes: rd.partition_bytes + rd.total_tasks() as u64 * TASK_NODE_BYTES,
                local_chunks,
                groups,
                checksum: task_checksum(ids),
            }
        })
        .collect();
    AsyncPlan {
        per_rank,
        lengths: Arc::new(w.lengths.clone()),
    }
}

/// One asynchronous rank.
pub struct AsyncRank {
    plan: Arc<AsyncPlan>,
    rank: usize,
    cfg_window: usize,
    cfg_req_bytes: u64,
    rpc_inject: SimTime,
    rpc_service: SimTime,

    next_req: usize,
    in_flight: usize,
    ready: VecDeque<usize>,
    next_local: usize,
    groups_done: usize,
    poll_scheduled: bool,
    entered_exit: bool,
    /// Failure injection (0 = off): every Nth served request's reply lost.
    drop_period: u64,
    /// Whether the network can lose/duplicate/delay messages — arms the
    /// per-attempt retry timers.
    unreliable: bool,
    /// Base retry timeout (attempt 0); later attempts back off
    /// exponentially with jitter.
    backoff_base: SimTime,
    /// Backoff cap.
    backoff_max: SimTime,
    /// Retry budget per request (retries after the initial send).
    max_retries: u32,
    /// Jitter seed (from the fault config, so runs stay reproducible).
    fault_seed: u64,
    /// Served-request counter (drives deterministic drops).
    served: u64,
    /// Per-group arrival flags (guards against duplicate replies).
    arrived: Vec<bool>,
    /// Per-group current attempt number (stale-timer detection).
    attempts: Vec<u32>,
    /// First retry-budget exhaustion, if any (the run is then incomplete
    /// and the driver reports a structured error).
    pub failed: Option<RecoveryFailure>,
    /// Replies this rank deliberately dropped (owner side).
    pub drops_injected: u64,
    /// Requests this rank re-issued after a timeout.
    pub retries: u64,
    /// Duplicate replies this rank received and discarded.
    pub dup_replies: u64,
    /// Tasks completed (exposed for verification).
    pub tasks_done: u64,
}

impl AsyncRank {
    /// Creates the rank program.
    pub fn new(
        plan: Arc<AsyncPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
    ) -> Self {
        let ngroups = plan.per_rank[rank].groups.len();
        AsyncRank {
            plan,
            rank,
            cfg_window: cfg.rpc_window,
            cfg_req_bytes: cfg.req_bytes,
            rpc_inject: SimTime::from_ns(machine.rpc_inject_ns),
            rpc_service: SimTime::from_ns(machine.rpc_service_ns),
            next_req: 0,
            in_flight: 0,
            ready: VecDeque::new(),
            next_local: 0,
            groups_done: 0,
            poll_scheduled: false,
            entered_exit: false,
            drop_period: cfg.rpc_drop_period,
            unreliable: cfg.rpc_drop_period > 0 || cfg.fault.message_faults_possible(),
            backoff_base: SimTime::from_ns(cfg.rpc_timeout_ns),
            backoff_max: SimTime::from_ns(cfg.rpc_backoff_max_ns.max(cfg.rpc_timeout_ns)),
            max_retries: cfg.rpc_max_retries,
            fault_seed: cfg.fault.seed,
            served: 0,
            arrived: vec![false; ngroups],
            attempts: vec![0; ngroups],
            failed: None,
            drops_injected: 0,
            retries: 0,
            dup_replies: 0,
            tasks_done: 0,
        }
    }

    /// Backoff-with-jitter delay before giving up on `attempt` of the
    /// request for `read`.
    fn retry_delay(&self, read: u32, attempt: u32) -> SimTime {
        gnb_sim::backoff_delay(
            self.backoff_base,
            self.backoff_max,
            attempt,
            self.fault_seed ^ (self.rank as u64) << 32,
            read as u64,
        )
    }

    /// This rank's task checksum (valid any time).
    pub fn checksum(&self) -> u64 {
        self.plan.per_rank[self.rank].checksum
    }

    fn me(&self) -> &AsyncRankPlan {
        &self.plan.per_rank[self.rank]
    }

    fn issue_requests(&mut self, ctx: &mut Ctx<'_, AsyncMsg>) {
        // Flow control by consumption: the window bounds requests in
        // flight *plus* replies buffered but not yet computed, so per-rank
        // memory stays window-bounded (the paper's "no more than 1 remote
        // read in-memory at any given time in order to make progress",
        // generalised to a tunable window).
        while self.in_flight + self.ready.len() < self.cfg_window
            && self.next_req < self.me().groups.len()
        {
            let g = &self.plan.per_rank[self.rank].groups[self.next_req];
            let (owner, read) = (g.owner as usize, g.read);
            // Injection costs CPU (GASNet-EX style AM injection).
            ctx.advance(self.rpc_inject, TimeCategory::Overhead);
            ctx.send(
                owner,
                self.cfg_req_bytes,
                AsyncMsg::Req { read, attempt: 0 },
            );
            if self.unreliable {
                ctx.after(
                    self.retry_delay(read, 0),
                    AsyncMsg::Timeout { read, attempt: 0 },
                );
            }
            self.in_flight += 1;
            self.next_req += 1;
        }
    }

    fn ensure_poll(&mut self, ctx: &mut Ctx<'_, AsyncMsg>) {
        let has_work = !self.ready.is_empty() || self.next_local < self.me().local_chunks.len();
        if !self.poll_scheduled && has_work {
            // One tick later, not zero: requests and replies that queued up
            // while this rank was computing must be serviced *before* the
            // next unit of compute — this is the "application-level
            // polling" between tasks that UPC++ requires (§3.2). A zero
            // delay would let the poll chain starve queued RPCs.
            ctx.after(SimTime::from_ns(1), AsyncMsg::Poll);
            self.poll_scheduled = true;
        }
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_, AsyncMsg>) {
        let me_done = self.next_local >= self.me().local_chunks.len()
            && self.groups_done == self.me().groups.len();
        if me_done && !self.entered_exit {
            self.entered_exit = true;
            ctx.barrier_enter(BAR_EXIT);
        }
    }

    fn group_index(&self, read: u32) -> usize {
        self.me()
            .groups
            .binary_search_by_key(&read, |g| g.read)
            .expect("reply for a read this rank never requested")
    }

    /// Classify an idle gap that was ended by a *foreign* event: if we
    /// still have requests in flight we were hiding (failing to hide)
    /// communication; otherwise we are done and waiting at the exit
    /// barrier — synchronization.
    fn classify_foreign_idle(&self, ctx: &mut Ctx<'_, AsyncMsg>) {
        if self.in_flight > 0 {
            ctx.classify_idle(TimeCategory::Comm);
        } else {
            ctx.classify_idle(TimeCategory::Sync);
        }
    }
}

impl Program<AsyncMsg> for AsyncRank {
    fn on_start(&mut self, ctx: &mut Ctx<'_, AsyncMsg>) {
        ctx.mem_alloc(self.me().static_bytes);
        // Split-phase barrier: enter the registration phase, then overlap
        // local work and request issue while others register.
        ctx.barrier_enter(BAR_REG);
        self.issue_requests(ctx);
        self.ensure_poll(ctx);
        self.maybe_finish(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, AsyncMsg>, src: usize, msg: AsyncMsg) {
        match msg {
            AsyncMsg::Req { read, attempt } => {
                self.classify_foreign_idle(ctx);
                // Owner-side lookup of the (immutable) partition entry.
                ctx.race_read(read as u64);
                // Service the lookup and ship the read back. Servicing a
                // retried request is fault-induced work: recovery, not the
                // algorithm's own overhead.
                let cat = if attempt > 0 {
                    TimeCategory::Recovery
                } else {
                    TimeCategory::Overhead
                };
                ctx.advance(self.rpc_service, cat);
                self.served += 1;
                if self.drop_period > 0 && self.served.is_multiple_of(self.drop_period) {
                    // Failure injection: the reply is lost on the wire.
                    self.drops_injected += 1;
                    return;
                }
                let bytes = self.plan.lengths[read as usize] as u64;
                ctx.send(src, bytes, AsyncMsg::Rep { read, attempt });
            }
            AsyncMsg::Rep { read, attempt: _ } => {
                // Reply receipt updates the group's arrival state; a
                // duplicate reply landing at the same virtual time as the
                // original would be resolved by queue tie-break alone —
                // exactly what the race detector exists to flag.
                ctx.race_write(read as u64);
                let gidx = self.group_index(read);
                if self.arrived[gidx] {
                    // Duplicate: a wire-duplicated copy or a retry that
                    // raced the original reply. The AM handler still ran —
                    // book its cost as recovery and discard. Any attempt
                    // number is acceptable: the payload is the same read.
                    self.dup_replies += 1;
                    ctx.classify_idle(TimeCategory::Recovery);
                    ctx.advance(self.rpc_service, TimeCategory::Recovery);
                    return;
                }
                // Idle that a reply terminates is unhidden communication.
                ctx.classify_idle(TimeCategory::Comm);
                self.arrived[gidx] = true;
                ctx.mem_alloc(self.plan.per_rank[self.rank].groups[gidx].bytes);
                self.in_flight -= 1;
                self.ready.push_back(gidx);
                self.ensure_poll(ctx);
            }
            AsyncMsg::Timeout { read, attempt } => {
                // Idle ended by a retry timer is time lost to (suspected)
                // faults, whatever the timer's fate below.
                ctx.classify_idle(TimeCategory::Recovery);
                // The stale-check below reads/writes the same arrival and
                // attempt state a reply writes: a timer firing at the very
                // instant the reply arrives is tie-break-resolved.
                ctx.race_write(read as u64);
                let gidx = self.group_index(read);
                if self.arrived[gidx] || attempt != self.attempts[gidx] {
                    // Stale timer: the reply arrived (or a newer attempt
                    // owns the request). No-op, and crucially do NOT
                    // re-arm — completed requests must not keep timers
                    // circulating in the event queue.
                    return;
                }
                if attempt >= self.max_retries {
                    // Retry budget exhausted: give up on this read so the
                    // run terminates with a structured error instead of
                    // retrying (or hanging) forever. The group is
                    // abandoned; its tasks stay undone, which the driver
                    // turns into RunError::RetryBudgetExhausted.
                    if self.failed.is_none() {
                        self.failed = Some(RecoveryFailure {
                            read,
                            attempts: attempt + 1,
                        });
                    }
                    self.arrived[gidx] = true;
                    self.in_flight -= 1;
                    self.groups_done += 1;
                    self.issue_requests(ctx);
                    self.ensure_poll(ctx);
                    self.maybe_finish(ctx);
                    return;
                }
                // Reply presumed lost: re-issue with the next attempt
                // number and arm a fresh (backed-off) timer for it.
                let next = attempt + 1;
                self.attempts[gidx] = next;
                self.retries += 1;
                let owner = self.plan.per_rank[self.rank].groups[gidx].owner as usize;
                ctx.advance(self.rpc_inject, TimeCategory::Recovery);
                ctx.send(
                    owner,
                    self.cfg_req_bytes,
                    AsyncMsg::Req {
                        read,
                        attempt: next,
                    },
                );
                ctx.after(
                    self.retry_delay(read, next),
                    AsyncMsg::Timeout {
                        read,
                        attempt: next,
                    },
                );
            }
            AsyncMsg::Poll => {
                self.poll_scheduled = false;
                if let Some(gidx) = self.ready.pop_front() {
                    let g = &self.plan.per_rank[self.rank].groups[gidx];
                    let (oh, cp, n, bytes) = (g.overhead, g.compute, g.tasks, g.bytes);
                    ctx.advance(oh, TimeCategory::Overhead);
                    ctx.advance(cp, TimeCategory::Compute);
                    ctx.mem_free(bytes);
                    self.tasks_done += n;
                    self.groups_done += 1;
                    // Consumption frees a window slot: pull the next read.
                    self.issue_requests(ctx);
                } else if self.next_local < self.me().local_chunks.len() {
                    let (cp, oh, n) = self.plan.per_rank[self.rank].local_chunks[self.next_local];
                    ctx.advance(oh, TimeCategory::Overhead);
                    ctx.advance(cp, TimeCategory::Compute);
                    self.tasks_done += n;
                    self.next_local += 1;
                }
                self.ensure_poll(ctx);
                self.maybe_finish(ctx);
            }
        }
    }

    fn on_barrier(&mut self, ctx: &mut Ctx<'_, AsyncMsg>, id: u64) {
        // Waiting that ends at a barrier is synchronization time (split
        // phase or exit).
        ctx.classify_idle(TimeCategory::Sync);
        debug_assert!(id == BAR_REG || id == BAR_EXIT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_align::Candidate;
    use gnb_sim::Engine;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    fn workload(nranks: usize) -> SimWorkload {
        let lengths: Vec<usize> = (0..16).map(|i| 1000 + 100 * i).collect();
        let tasks: Vec<Candidate> = (0..16u32)
            .flat_map(|a| ((a + 1)..16).map(move |b| cand(a, b)))
            .collect();
        let ov: Vec<u32> = tasks.iter().map(|t| 200 * (t.b - t.a)).collect();
        SimWorkload::prepare(&lengths, &tasks, &ov, nranks)
    }

    fn machine(cores: usize) -> MachineConfig {
        MachineConfig::cori_knl(1).with_cores_per_node(cores)
    }

    fn run(nranks: usize, cfg: &RunConfig) -> (Vec<AsyncRank>, gnb_sim::engine::SimReport) {
        let w = workload(nranks);
        w.validate();
        let m = machine(nranks);
        let plan = Arc::new(plan_async(&w, &m, cfg));
        let mut progs: Vec<AsyncRank> = (0..nranks)
            .map(|r| AsyncRank::new(Arc::clone(&plan), r, &m, cfg))
            .collect();
        let report = Engine::new(nranks, m.net).run(&mut progs);
        (progs, report)
    }

    #[test]
    fn all_tasks_complete_exactly_once() {
        for nranks in [1, 2, 4, 8] {
            let (progs, _) = run(nranks, &RunConfig::default());
            let done: u64 = progs.iter().map(|p| p.tasks_done).sum();
            assert_eq!(
                done as usize,
                workload(nranks).total_tasks,
                "nranks={nranks}"
            );
        }
    }

    #[test]
    fn single_rank_never_communicates() {
        let (progs, report) = run(1, &RunConfig::default());
        assert_eq!(progs[0].tasks_done as usize, workload(1).total_tasks);
        assert_eq!(
            report.ranks[0].ledger[TimeCategory::Comm as usize],
            SimTime::ZERO
        );
    }

    #[test]
    fn window_of_one_still_completes() {
        let cfg = RunConfig {
            rpc_window: 1,
            ..RunConfig::default()
        };
        let (progs, _) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done).sum();
        assert_eq!(done as usize, workload(4).total_tasks);
    }

    #[test]
    fn memory_stays_bounded_by_window() {
        let cfg = RunConfig {
            rpc_window: 2,
            ..RunConfig::default()
        };
        let (_, report) = run(4, &cfg);
        let w = workload(4);
        for (r, rank) in report.ranks.iter().enumerate() {
            let static_bytes = plan_async(&w, &machine(4), &cfg).per_rank[r].static_bytes;
            // Peak = static + at most (window + queued) replies; with
            // window 2 the dynamic excess is tiny.
            assert!(
                rank.mem_peak <= static_bytes + 3 * 2600,
                "rank {r} peak {} static {static_bytes}",
                rank.mem_peak
            );
        }
    }

    #[test]
    fn comm_only_run_has_visible_latency_but_no_compute() {
        // Zero compute AND zero per-task overhead: nothing can hide the
        // round trips, so the wait becomes visible communication. (With
        // the default 45 µs/task overhead, sub-µs intra-node RTTs are
        // fully hidden — which is itself correct behaviour.)
        let cfg = RunConfig {
            cost: CostModel::comm_only(),
            overhead_ns_per_task_async: 0,
            rpc_window: 1, // serialise round trips
            ..RunConfig::default()
        };
        let (_, report) = run(4, &cfg);
        let compute: f64 = report.category_mean(TimeCategory::Compute);
        assert_eq!(compute, 0.0);
        let comm: f64 = report.category_mean(TimeCategory::Comm);
        assert!(comm > 0.0, "with zero compute nothing hides the latency");
    }

    #[test]
    fn compute_hides_communication() {
        // With compute present the same workload exposes a smaller comm
        // *fraction* than the latency-only run.
        let heavy = RunConfig {
            cost: CostModel {
                cells_per_overlap_bp: 500.0,
                fp_cells: 1e6,
                ..CostModel::default()
            },
            ..RunConfig::default()
        };
        let (_, rep_heavy) = run(4, &heavy);
        let only = RunConfig {
            cost: CostModel::comm_only(),
            overhead_ns_per_task_async: 0,
            rpc_window: 1,
            ..RunConfig::default()
        };
        let (_, rep_only) = run(4, &only);
        let frac_heavy =
            rep_heavy.category_mean(TimeCategory::Comm) / rep_heavy.end_time.as_secs_f64();
        let frac_only =
            rep_only.category_mean(TimeCategory::Comm) / rep_only.end_time.as_secs_f64();
        assert!(
            frac_heavy < frac_only * 0.5,
            "visible comm fraction {frac_heavy} vs comm-only {frac_only}"
        );
    }

    #[test]
    fn deterministic() {
        let (p1, r1) = run(4, &RunConfig::default());
        let (p2, r2) = run(4, &RunConfig::default());
        assert_eq!(r1, r2);
        let d1: Vec<u64> = p1.iter().map(|p| p.tasks_done).collect();
        let d2: Vec<u64> = p2.iter().map(|p| p.tasks_done).collect();
        assert_eq!(d1, d2);
    }

    #[test]
    fn reply_loss_recovered_by_retry() {
        let cfg = RunConfig {
            rpc_drop_period: 3, // drop every third reply
            rpc_timeout_ns: 50_000,
            ..RunConfig::default()
        };
        let (progs, report) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done).sum();
        assert_eq!(
            done as usize,
            workload(4).total_tasks,
            "all tasks despite drops"
        );
        let drops: u64 = progs.iter().map(|p| p.drops_injected).sum();
        let retries: u64 = progs.iter().map(|p| p.retries).sum();
        assert!(drops > 0, "injection must actually fire");
        assert!(retries >= drops, "every dropped reply forces a retry");
        // And the lossy run is slower than the reliable one.
        let (_, reliable) = run(4, &RunConfig::default());
        assert!(report.end_time > reliable.end_time);
    }

    #[test]
    fn reliable_network_never_retries() {
        let (progs, _) = run(4, &RunConfig::default());
        assert!(progs
            .iter()
            .all(|p| p.drops_injected == 0 && p.retries == 0));
    }
}
