//! The asynchronous coordination code (paper §3.2).
//!
//! A pull-based SPMD algorithm over RPCs (UPC++ in the original; tracked
//! requests on the [`crate::runtime`] layer here):
//!
//! * tasks are indexed under the remote read they need;
//! * each rank issues one asynchronous request per distinct remote read —
//!   bounded by an outstanding-request window (§4.3 discusses tuning
//!   "limits on outgoing requests") — and attaches a callback: when read
//!   `b` arrives, all alignments involving `b` run as they are dequeued;
//! * a split-phase barrier overlaps local-local task computation with read
//!   registration; a single exit barrier keeps every rank's partition
//!   available (ranks keep servicing lookups after finishing their own
//!   work) until all tasks complete;
//! * at most the windowed replies are buffered, so memory stays flat
//!   (Fig. 11: <256 MB/core at every scale).
//!
//! Accounting: idle time that ends with a reply is *visible communication*
//! (latency the compute failed to hide); idle that ends with the exit
//! barrier or a foreign request while this rank has no outstanding
//! requests is *synchronization*; RPC injection/servicing and
//! pointer-based store traversal are *overhead*.
//!
//! Recovery is runtime-owned: retry timers, exponential backoff,
//! duplicate-reply dedup and give-up bookkeeping all live in
//! [`crate::runtime`] — this module holds only the protocol state machine
//! (what to request, what to do with an arrived read, when to finish).

use crate::cost::CostModel;
use crate::driver::RunConfig;
use crate::machine::MachineConfig;
use crate::runtime::{CoordinationStrategy, RankRuntime, RtCtx, RuntimeConfig, TAKEOVER_KEY_BASE};
use crate::workload::{task_checksum, SimWorkload};
use gnb_sim::ckpt::{Checkpointable, CkptReader, CkptStore, CkptWriter};
use gnb_sim::engine::TimeCategory;
use gnb_sim::fault::FaultPlan;
use gnb_sim::SimTime;
use std::collections::{BTreeMap, VecDeque};
// gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
use std::sync::{Arc, Mutex};

/// Barrier ids.
const BAR_REG: u64 = 0;
const BAR_EXIT: u64 = 1;

/// Strategy-internal messages of the asynchronous algorithm. Requests and
/// replies are runtime-tracked ([`crate::runtime::RtMsg`]); only the poll
/// self-timer is the strategy's own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncApp {
    /// Self-timer: process the next unit of ready work (the polling the
    /// paper notes UPC++ requires).
    Poll,
    /// Self-timer: serialize protocol progress to the checkpoint store
    /// and re-arm. Armed only when crashes are scheduled.
    Ckpt,
    /// Self-timer: adopt the shard of crashed rank `.0` (fires
    /// `crash_detect` after its scheduled death; this rank is its
    /// deterministic successor).
    Adopt(usize),
}

/// Precomputed per-rank inputs for the async code.
#[derive(Debug, Clone)]
pub struct AsyncPlan {
    /// One entry per rank.
    pub per_rank: Vec<AsyncRankPlan>,
    /// Read lengths (reply payload sizes), shared.
    pub lengths: Arc<Vec<u32>>,
}

/// A remote-read group with modelled costs.
#[derive(Debug, Clone)]
pub struct AsyncGroup {
    /// Remote read id.
    pub read: u32,
    /// Owner rank of the read.
    pub owner: u32,
    /// Read bytes (the reply size).
    pub bytes: u64,
    /// Alignment compute for the group's tasks.
    pub compute: SimTime,
    /// Traversal/invocation overhead for the group's tasks.
    pub overhead: SimTime,
    /// Task count.
    pub tasks: u64,
}

/// One rank's precomputed async inputs.
#[derive(Debug, Clone, Default)]
pub struct AsyncRankPlan {
    /// Partition + pointer-store bytes held for the whole run.
    pub static_bytes: u64,
    /// Local-local work, chunked for polling granularity:
    /// `(compute, overhead, tasks)`.
    pub local_chunks: Vec<(SimTime, SimTime, u64)>,
    /// Remote groups in read order.
    pub groups: Vec<AsyncGroup>,
    /// Order-independent checksum of this rank's tasks.
    pub checksum: u64,
}

/// Approximate bytes per task node in the pointer-based store (boxed node
/// plus map/vec overhead, cf. [`gnb_overlap::store::PointerTaskStore`]).
const TASK_NODE_BYTES: u64 = 48;

/// Local tasks per poll chunk (polling granularity).
const LOCAL_CHUNK: usize = 32;

/// Builds the async plan from the shared fixed workload.
pub fn plan_async(w: &SimWorkload, machine: &MachineConfig, cfg: &RunConfig) -> AsyncPlan {
    let cost: &CostModel = &cfg.cost;
    let per_rank = w
        .per_rank
        .iter()
        .enumerate()
        .map(|(p, rd)| {
            let noise = crate::driver::os_noise_factor(p, cfg.os_noise);
            let mut ids: Vec<(u32, u32)> = Vec::with_capacity(rd.total_tasks());
            let mut local_chunks = Vec::new();
            for chunk in rd.local.chunks(LOCAL_CHUNK) {
                let mut compute = SimTime::ZERO;
                for (t, ov) in chunk {
                    compute +=
                        SimTime::from_secs_f64(machine.compute_secs(cost.cells(t, *ov)) * noise);
                    ids.push((t.a, t.b));
                }
                let overhead =
                    SimTime::from_ns(cfg.overhead_ns_per_task_async * chunk.len() as u64);
                local_chunks.push((compute, overhead, chunk.len() as u64));
            }
            let groups = rd
                .groups
                .iter()
                .map(|g| {
                    let mut compute = SimTime::ZERO;
                    for (t, ov) in &g.tasks {
                        compute += SimTime::from_secs_f64(
                            machine.compute_secs(cost.cells(t, *ov)) * noise,
                        );
                        ids.push((t.a, t.b));
                    }
                    AsyncGroup {
                        read: g.read,
                        owner: g.owner,
                        bytes: g.bytes,
                        compute,
                        overhead: SimTime::from_ns(
                            cfg.overhead_ns_per_task_async * g.tasks.len() as u64,
                        ),
                        tasks: g.tasks.len() as u64,
                    }
                })
                .collect();
            AsyncRankPlan {
                static_bytes: rd.partition_bytes + rd.total_tasks() as u64 * TASK_NODE_BYTES,
                local_chunks,
                groups,
                checksum: task_checksum(ids),
            }
        })
        .collect();
    AsyncPlan {
        per_rank,
        lengths: Arc::new(w.lengths.clone()),
    }
}

/// The strategy-facing context of the async code.
type ACtx<'c, 'e> = RtCtx<'c, 'e, AsyncApp, (), ()>;

/// The asynchronous protocol state machine, hosted by [`RankRuntime`].
pub struct AsyncStrategy {
    plan: Arc<AsyncPlan>,
    rank: usize,
    cfg_window: usize,
    cfg_req_bytes: u64,

    next_req: usize,
    in_flight: usize,
    ready: VecDeque<usize>,
    next_local: usize,
    groups_done: usize,
    poll_scheduled: bool,
    entered_exit: bool,
    tasks_done: u64,

    /// Per-group completion bitmap (checkpointed so a successor replays
    /// only unfinished groups).
    done: Vec<bool>,
    /// Adopt timers armed but not yet fired (exit is gated on zero).
    adoptions_left: usize,
    /// Outstanding adopted re-fetches: namespaced key → (dead rank, index
    /// into the dead rank's group list).
    adopted: BTreeMap<u64, (usize, usize)>,
}

impl AsyncStrategy {
    /// Creates the protocol state machine for one rank.
    pub fn new(plan: Arc<AsyncPlan>, rank: usize, cfg: &RunConfig) -> AsyncStrategy {
        let ngroups = plan.per_rank[rank].groups.len();
        AsyncStrategy {
            plan,
            rank,
            cfg_window: cfg.rpc_window,
            cfg_req_bytes: cfg.req_bytes,
            next_req: 0,
            in_flight: 0,
            ready: VecDeque::new(),
            next_local: 0,
            groups_done: 0,
            poll_scheduled: false,
            entered_exit: false,
            tasks_done: 0,
            done: vec![false; ngroups],
            adoptions_left: 0,
            adopted: BTreeMap::new(),
        }
    }

    /// Creates the full runtime-hosted rank program.
    pub fn program(
        plan: Arc<AsyncPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
    ) -> RankRuntime<AsyncStrategy> {
        RankRuntime::new(
            AsyncStrategy::new(plan, rank, cfg),
            rank,
            RuntimeConfig::from_run(machine, cfg),
        )
    }

    /// Creates the full runtime-hosted rank program with the recovery
    /// stack: a fault plan carrying the crash schedule and the shared
    /// checkpoint store. The driver uses this for every run; with no
    /// crashes scheduled it behaves exactly like [`Self::program`].
    pub fn program_with_recovery(
        plan: Arc<AsyncPlan>,
        rank: usize,
        machine: &MachineConfig,
        cfg: &RunConfig,
        fault: Arc<FaultPlan>,
        // gnb-lint: allow(thread-primitives, reason = "shared checkpoint-store handle predating the parallel engine: the serial engine takes the lock uncontended, and parallel-mode ckpt effects are serialised through the coordinator replay")
        ckpt: Option<Arc<Mutex<CkptStore>>>,
    ) -> RankRuntime<AsyncStrategy> {
        RankRuntime::with_recovery(
            AsyncStrategy::new(plan, rank, cfg),
            rank,
            RuntimeConfig::from_run(machine, cfg),
            fault,
            ckpt,
        )
    }

    /// Serializes protocol progress: the local-chunk cursor, the group
    /// completion bitmap and the task counter. A successor restoring this
    /// replays only what the checkpoint does not cover.
    fn ckpt_bytes(&self) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.usize(self.next_local);
        self.done.checkpoint(&mut w);
        w.u64(self.tasks_done);
        w.finish()
    }

    /// Decodes a checkpoint written by [`Self::ckpt_bytes`] on any rank.
    fn decode_ckpt(bytes: &[u8]) -> (usize, Vec<bool>, u64) {
        let mut r = CkptReader::new(bytes);
        let next_local = r.usize();
        let done = Vec::<bool>::restore(&mut r);
        let tasks = r.u64();
        r.finish();
        (next_local, done, tasks)
    }

    fn me(&self) -> &AsyncRankPlan {
        // gnb-lint: allow(panic-path, reason = "self.rank < nranks is established at Engine construction and never changes")
        &self.plan.per_rank[self.rank]
    }

    fn issue_requests(&mut self, rt: &mut ACtx<'_, '_>) {
        // Flow control by consumption: the window bounds requests in
        // flight *plus* replies buffered but not yet computed, so per-rank
        // memory stays window-bounded (the paper's "no more than 1 remote
        // read in-memory at any given time in order to make progress",
        // generalised to a tunable window).
        while self.in_flight + self.ready.len() < self.cfg_window
            && self.next_req < self.me().groups.len()
        {
            // gnb-lint: allow(panic-path, reason = "the loop condition bounds next_req by the same plan's groups.len()")
            let g = &self.plan.per_rank[self.rank].groups[self.next_req];
            let (owner, read) = (g.owner as usize, g.read);
            rt.send_tracked(read as u64, owner, self.cfg_req_bytes, ());
            self.in_flight += 1;
            self.next_req += 1;
        }
    }

    fn ensure_poll(&mut self, rt: &mut ACtx<'_, '_>) {
        let has_work = !self.ready.is_empty() || self.next_local < self.me().local_chunks.len();
        if !self.poll_scheduled && has_work {
            // One tick later, not zero: requests and replies that queued up
            // while this rank was computing must be serviced *before* the
            // next unit of compute — this is the "application-level
            // polling" between tasks that UPC++ requires (§3.2). A zero
            // delay would let the poll chain starve queued RPCs.
            rt.after_app(SimTime::from_ns(1), AsyncApp::Poll);
            self.poll_scheduled = true;
        }
    }

    fn maybe_finish(&mut self, rt: &mut ACtx<'_, '_>) {
        let me_done = self.next_local >= self.me().local_chunks.len()
            && self.groups_done == self.me().groups.len()
            && self.adoptions_left == 0
            && self.adopted.is_empty();
        if me_done && !self.entered_exit {
            self.entered_exit = true;
            rt.barrier_enter(BAR_EXIT);
        }
    }

    /// Adopts dead rank `dead`'s shard: restore its last checkpoint,
    /// replay the local-task tail, and re-fetch its unfinished remote
    /// groups under namespaced keys. All replay work is booked as
    /// [`TimeCategory::Recovery`]; the re-fetches deliberately bypass the
    /// flow-control window (recovery traffic must not starve behind the
    /// successor's own backlog).
    fn adopt(&mut self, rt: &mut ACtx<'_, '_>, dead: usize) {
        rt.note_takeover(dead);
        // gnb-lint: allow(panic-path, reason = "dead is a rank id from the engine's crash plan; per_rank has exactly nranks entries by construction")
        let dead_groups = self.plan.per_rank[dead].groups.len();
        let (next_local, done, ckpt_tasks) = match rt.ckpt_restore(dead) {
            Some(bytes) => AsyncStrategy::decode_ckpt(&bytes),
            None => (0, vec![false; dead_groups], 0),
        };
        rt.note_recovered(ckpt_tasks);
        self.tasks_done += ckpt_tasks;
        let dplan = Arc::clone(&self.plan);
        // gnb-lint: allow(panic-path, reason = "next_local comes from a checkpoint this code wrote; it never exceeds the dead rank's chunk count")
        for &(cp, oh, n) in &dplan.per_rank[dead].local_chunks[next_local..] {
            rt.advance(oh, TimeCategory::Recovery);
            rt.advance(cp, TimeCategory::Recovery);
            self.tasks_done += n;
        }
        // gnb-lint: allow(panic-path, reason = "dead is a rank id from the engine's crash plan; per_rank has exactly nranks entries by construction")
        for (gidx, g) in dplan.per_rank[dead].groups.iter().enumerate() {
            if done.get(gidx).copied().unwrap_or(false) {
                continue;
            }
            let key = TAKEOVER_KEY_BASE + ((dead as u64) << 32) + g.read as u64;
            let dst = rt.effective_owner(g.owner as usize);
            self.adopted.insert(key, (dead, gidx));
            rt.send_tracked(key, dst, self.cfg_req_bytes, ());
        }
        self.adoptions_left -= 1;
    }

    fn group_index(&self, read: u32) -> usize {
        self.me()
            .groups
            .binary_search_by_key(&read, |g| g.read)
            // gnb-lint: allow(panic-path, reason = "the runtime ledger only routes replies for keys this rank tracked; every tracked key is a read of this rank's plan, so the search hit is a protocol invariant")
            .expect("reply for a read this rank never requested")
    }

    /// Classify an idle gap that was ended by a *foreign* event: if we
    /// still have requests in flight we were hiding (failing to hide)
    /// communication; otherwise we are done and waiting at the exit
    /// barrier — synchronization.
    fn classify_foreign_idle(&self, rt: &mut ACtx<'_, '_>) {
        if self.in_flight > 0 {
            rt.classify_idle(TimeCategory::Comm);
        } else {
            rt.classify_idle(TimeCategory::Sync);
        }
    }
}

impl CoordinationStrategy for AsyncStrategy {
    type App = AsyncApp;
    type Req = ();
    type Rep = ();

    fn on_start(&mut self, rt: &mut ACtx<'_, '_>) {
        rt.mem_alloc(self.me().static_bytes);
        // Split-phase barrier: enter the registration phase, then overlap
        // local work and request issue while others register.
        rt.barrier_enter(BAR_REG);
        // Crash-recovery timers, armed only when crashes are scheduled so
        // crash-free runs stay event-for-event identical.
        if rt.ckpt_enabled() {
            rt.after_app(rt.ckpt_interval(), AsyncApp::Ckpt);
        }
        for (dead, at) in rt.planned_adoptions() {
            self.adoptions_left += 1;
            rt.after_app(at + rt.crash_detect(), AsyncApp::Adopt(dead));
        }
        self.issue_requests(rt);
        self.ensure_poll(rt);
        self.maybe_finish(rt);
    }

    fn on_app(&mut self, rt: &mut ACtx<'_, '_>, _src: usize, msg: AsyncApp) {
        match msg {
            AsyncApp::Poll => {
                self.poll_scheduled = false;
                if let Some(gidx) = self.ready.pop_front() {
                    // gnb-lint: allow(panic-path, reason = "ready only ever holds group indexes minted from this rank's own plan")
                    let g = &self.plan.per_rank[self.rank].groups[gidx];
                    let (oh, cp, n, bytes) = (g.overhead, g.compute, g.tasks, g.bytes);
                    rt.advance(oh, TimeCategory::Overhead);
                    rt.advance(cp, TimeCategory::Compute);
                    rt.mem_free(bytes);
                    self.tasks_done += n;
                    self.groups_done += 1;
                    // gnb-lint: allow(panic-path, reason = "done has one slot per group of this rank's plan; gidx came from that plan")
                    self.done[gidx] = true;
                    // Consumption frees a window slot: pull the next read.
                    self.issue_requests(rt);
                } else if self.next_local < self.me().local_chunks.len() {
                    // gnb-lint: allow(panic-path, reason = "the else-if guard bounds next_local by the same plan's local_chunks.len()")
                    let (cp, oh, n) = self.plan.per_rank[self.rank].local_chunks[self.next_local];
                    rt.advance(oh, TimeCategory::Overhead);
                    rt.advance(cp, TimeCategory::Compute);
                    self.tasks_done += n;
                    self.next_local += 1;
                }
                self.ensure_poll(rt);
                self.maybe_finish(rt);
            }
            AsyncApp::Ckpt => {
                // Waiting ended by the checkpoint timer is checkpoint
                // overhead, like the write it precedes.
                rt.classify_idle(TimeCategory::Overhead);
                if !self.entered_exit {
                    rt.ckpt_save(self.ckpt_bytes());
                    rt.after_app(rt.ckpt_interval(), AsyncApp::Ckpt);
                }
            }
            AsyncApp::Adopt(dead) => {
                rt.classify_idle(TimeCategory::Recovery);
                self.adopt(rt, dead);
                self.ensure_poll(rt);
                self.maybe_finish(rt);
            }
        }
    }

    fn on_request(&mut self, rt: &mut ACtx<'_, '_>, src: usize, key: u64, attempt: u32, _p: ()) {
        self.classify_foreign_idle(rt);
        // Adopted re-fetches namespace the read id into the takeover key
        // range; masking recovers it (a no-op for plain read-id keys).
        let read = (key & 0xFFFF_FFFF) as usize;
        // Owner-side lookup of the (immutable) partition entry.
        rt.race_read(read as u64);
        // One lookup unit; the reply ships the read itself.
        // gnb-lint: allow(panic-path, reason = "lengths is indexed by global read id; the requested read id was minted from the same plan")
        let bytes = self.plan.lengths[read] as u64;
        rt.serve_reply(src, key, attempt, bytes, 1, ());
    }

    fn on_reply(&mut self, rt: &mut ACtx<'_, '_>, key: u64, _p: ()) {
        if key >= TAKEOVER_KEY_BASE {
            // An adopted shard's re-fetched read: run the dead rank's
            // group as recovery work.
            let (dead, gidx) = self
                .adopted
                .remove(&key)
                // gnb-lint: allow(panic-path, reason = "the runtime ledger delivers replies only for keys this rank tracked; a miss is ledger corruption and must abort deterministically")
                .expect("reply for an adoption this rank never started");
            // gnb-lint: allow(panic-path, reason = "dead is a rank id recorded at adoption time; per_rank has exactly nranks entries")
            let g = &self.plan.per_rank[dead].groups[gidx];
            let (oh, cp, n) = (g.overhead, g.compute, g.tasks);
            rt.advance(oh, TimeCategory::Recovery);
            rt.advance(cp, TimeCategory::Recovery);
            self.tasks_done += n;
            self.maybe_finish(rt);
            return;
        }
        let gidx = self.group_index(key as u32);
        // gnb-lint: allow(panic-path, reason = "gidx came from group_index over this rank's own plan")
        rt.mem_alloc(self.plan.per_rank[self.rank].groups[gidx].bytes);
        self.in_flight -= 1;
        self.ready.push_back(gidx);
        self.ensure_poll(rt);
    }

    fn on_give_up(&mut self, rt: &mut ACtx<'_, '_>, key: u64) {
        if key >= TAKEOVER_KEY_BASE {
            // An adopted re-fetch was abandoned (only possible when
            // message faults exhaust a budget against a live peer — the
            // runtime has recorded the failure). Unwind so the rank still
            // exits.
            self.adopted.remove(&key);
            self.maybe_finish(rt);
            return;
        }
        // The group is abandoned; its tasks stay undone, which the driver
        // turns into RunError::RetryBudgetExhausted (or reports as
        // coverage loss under graceful degradation). Unwind the window so
        // the rank still drains its remaining work and reaches the exit
        // barrier.
        let gidx = self.group_index(key as u32);
        // gnb-lint: allow(panic-path, reason = "done has one slot per group of this rank's plan; gidx came from group_index over that plan")
        self.done[gidx] = true;
        self.in_flight -= 1;
        self.groups_done += 1;
        self.issue_requests(rt);
        self.ensure_poll(rt);
        self.maybe_finish(rt);
    }

    fn on_barrier(&mut self, rt: &mut ACtx<'_, '_>, id: u64) {
        // Waiting that ends at a barrier is synchronization time (split
        // phase or exit).
        rt.classify_idle(TimeCategory::Sync);
        debug_assert!(id == BAR_REG || id == BAR_EXIT);
    }

    fn tasks_done(&self) -> u64 {
        self.tasks_done
    }

    /// This rank's task checksum (valid any time).
    fn checksum(&self) -> u64 {
        self.plan.per_rank[self.rank].checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_align::Candidate;
    use gnb_sim::Engine;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    fn workload(nranks: usize) -> SimWorkload {
        let lengths: Vec<usize> = (0..16).map(|i| 1000 + 100 * i).collect();
        let tasks: Vec<Candidate> = (0..16u32)
            .flat_map(|a| ((a + 1)..16).map(move |b| cand(a, b)))
            .collect();
        let ov: Vec<u32> = tasks.iter().map(|t| 200 * (t.b - t.a)).collect();
        SimWorkload::prepare(&lengths, &tasks, &ov, nranks)
    }

    fn machine(cores: usize) -> MachineConfig {
        MachineConfig::cori_knl(1).with_cores_per_node(cores)
    }

    fn run(
        nranks: usize,
        cfg: &RunConfig,
    ) -> (Vec<RankRuntime<AsyncStrategy>>, gnb_sim::engine::SimReport) {
        let w = workload(nranks);
        w.validate();
        let m = machine(nranks);
        let plan = Arc::new(plan_async(&w, &m, cfg));
        let mut progs: Vec<RankRuntime<AsyncStrategy>> = (0..nranks)
            .map(|r| AsyncStrategy::program(Arc::clone(&plan), r, &m, cfg))
            .collect();
        let report = Engine::new(nranks, m.net).run(&mut progs);
        (progs, report)
    }

    #[test]
    fn all_tasks_complete_exactly_once() {
        for nranks in [1, 2, 4, 8] {
            let (progs, _) = run(nranks, &RunConfig::default());
            let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
            assert_eq!(
                done as usize,
                workload(nranks).total_tasks,
                "nranks={nranks}"
            );
        }
    }

    #[test]
    fn single_rank_never_communicates() {
        let (progs, report) = run(1, &RunConfig::default());
        assert_eq!(progs[0].tasks_done() as usize, workload(1).total_tasks);
        assert_eq!(
            report.ranks[0].ledger[TimeCategory::Comm as usize],
            SimTime::ZERO
        );
    }

    #[test]
    fn window_of_one_still_completes() {
        let cfg = RunConfig {
            rpc_window: 1,
            ..RunConfig::default()
        };
        let (progs, _) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(done as usize, workload(4).total_tasks);
    }

    #[test]
    fn memory_stays_bounded_by_window() {
        let cfg = RunConfig {
            rpc_window: 2,
            ..RunConfig::default()
        };
        let (_, report) = run(4, &cfg);
        let w = workload(4);
        for (r, rank) in report.ranks.iter().enumerate() {
            let static_bytes = plan_async(&w, &machine(4), &cfg).per_rank[r].static_bytes;
            // Peak = static + at most (window + queued) replies; with
            // window 2 the dynamic excess is tiny.
            assert!(
                rank.mem_peak <= static_bytes + 3 * 2600,
                "rank {r} peak {} static {static_bytes}",
                rank.mem_peak
            );
        }
    }

    #[test]
    fn comm_only_run_has_visible_latency_but_no_compute() {
        // Zero compute AND zero per-task overhead: nothing can hide the
        // round trips, so the wait becomes visible communication. (With
        // the default 45 µs/task overhead, sub-µs intra-node RTTs are
        // fully hidden — which is itself correct behaviour.)
        let cfg = RunConfig {
            cost: CostModel::comm_only(),
            overhead_ns_per_task_async: 0,
            rpc_window: 1, // serialise round trips
            ..RunConfig::default()
        };
        let (_, report) = run(4, &cfg);
        let compute: f64 = report.category_mean(TimeCategory::Compute);
        assert_eq!(compute, 0.0);
        let comm: f64 = report.category_mean(TimeCategory::Comm);
        assert!(comm > 0.0, "with zero compute nothing hides the latency");
    }

    #[test]
    fn compute_hides_communication() {
        // With compute present the same workload exposes a smaller comm
        // *fraction* than the latency-only run.
        let heavy = RunConfig {
            cost: CostModel {
                cells_per_overlap_bp: 500.0,
                fp_cells: 1e6,
                ..CostModel::default()
            },
            ..RunConfig::default()
        };
        let (_, rep_heavy) = run(4, &heavy);
        let only = RunConfig {
            cost: CostModel::comm_only(),
            overhead_ns_per_task_async: 0,
            rpc_window: 1,
            ..RunConfig::default()
        };
        let (_, rep_only) = run(4, &only);
        let frac_heavy =
            rep_heavy.category_mean(TimeCategory::Comm) / rep_heavy.end_time.as_secs_f64();
        let frac_only =
            rep_only.category_mean(TimeCategory::Comm) / rep_only.end_time.as_secs_f64();
        assert!(
            frac_heavy < frac_only * 0.5,
            "visible comm fraction {frac_heavy} vs comm-only {frac_only}"
        );
    }

    #[test]
    fn deterministic() {
        let (p1, r1) = run(4, &RunConfig::default());
        let (p2, r2) = run(4, &RunConfig::default());
        assert_eq!(r1, r2);
        let d1: Vec<u64> = p1.iter().map(|p| p.tasks_done()).collect();
        let d2: Vec<u64> = p2.iter().map(|p| p.tasks_done()).collect();
        assert_eq!(d1, d2);
    }

    #[test]
    fn reply_loss_recovered_by_retry() {
        let cfg = RunConfig {
            rpc_drop_period: 3, // drop every third reply
            rpc_timeout_ns: 50_000,
            ..RunConfig::default()
        };
        let (progs, report) = run(4, &cfg);
        let done: u64 = progs.iter().map(|p| p.tasks_done()).sum();
        assert_eq!(
            done as usize,
            workload(4).total_tasks,
            "all tasks despite drops"
        );
        let drops: u64 = progs.iter().map(|p| p.recovery().drops_injected).sum();
        let retries: u64 = progs.iter().map(|p| p.recovery().retries).sum();
        assert!(drops > 0, "injection must actually fire");
        assert!(retries >= drops, "every dropped reply forces a retry");
        // And the lossy run is slower than the reliable one.
        let (_, reliable) = run(4, &RunConfig::default());
        assert!(report.end_time > reliable.end_time);
    }

    #[test]
    fn reliable_network_never_retries() {
        let (progs, _) = run(4, &RunConfig::default());
        assert!(progs
            .iter()
            .all(|p| p.recovery().drops_injected == 0 && p.recovery().retries == 0));
    }
}
