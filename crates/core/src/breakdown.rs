//! Runtime breakdowns: the paper's four-way split of where time goes,
//! plus a recovery category for runs under fault injection.
//!
//! Every comparative figure in the paper (Figs. 3, 4, 8, 9, 10) is a
//! stacked breakdown of *Computation (Alignment)*, *Computation
//! (Overhead)*, *Communication*, and *Synchronization*. This module turns a
//! simulation report into that breakdown, with per-category cross-rank
//! summaries and normalised fractions. Fault-injected runs add a fifth
//! component, *Recovery* — retry injection, duplicate-reply handling,
//! straggler-induced CPU inflation, stall freezes and re-issued exchange
//! rounds — which is identically zero in the fault-free runs behind the
//! paper's figures.

use gnb_sim::engine::{SimReport, TimeCategory};
use gnb_sim::Summary;
use serde::{Deserialize, Serialize};

/// A five-way runtime breakdown plus the overall (virtual) runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeBreakdown {
    /// Seed-and-extend alignment compute, per rank (seconds).
    pub compute: Summary,
    /// Data-structure traversal / kernel invocation overhead.
    pub overhead: Summary,
    /// Visible (unhidden) communication latency.
    pub comm: Summary,
    /// Synchronization (barrier / imbalance) waiting.
    pub sync: Summary,
    /// Fault-recovery time: retries, duplicate replies, straggler excess,
    /// stalls, re-issued rounds (zero without fault injection).
    pub recovery: Summary,
    /// Idle time the program never classified (should be ~0).
    pub unclassified: Summary,
    /// End-to-end runtime in seconds (the max finish across ranks).
    pub total: f64,
}

impl RuntimeBreakdown {
    /// Extracts the breakdown from a simulation report.
    pub fn from_report(report: &SimReport) -> RuntimeBreakdown {
        RuntimeBreakdown {
            compute: report.category_summary(TimeCategory::Compute),
            overhead: report.category_summary(TimeCategory::Overhead),
            comm: report.category_summary(TimeCategory::Comm),
            sync: report.category_summary(TimeCategory::Sync),
            recovery: report.category_summary(TimeCategory::Recovery),
            unclassified: Summary::of(
                report
                    .ranks
                    .iter()
                    .map(|r| r.unclassified_idle.as_secs_f64()),
            ),
            total: report.end_time.as_secs_f64(),
        }
    }

    /// Mean-per-rank fractions of the total runtime, in category order
    /// `(compute, overhead, comm, sync, recovery)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        if self.total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        (
            self.compute.mean / self.total,
            self.overhead.mean / self.total,
            self.comm.mean / self.total,
            self.sync.mean / self.total,
            self.recovery.mean / self.total,
        )
    }

    /// Fraction of the runtime that is visible communication (the paper's
    /// headline comparison quantity in §4.4).
    pub fn comm_fraction(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.comm.mean / self.total
        }
    }

    /// Fraction of the runtime spent on fault recovery (the degradation
    /// measure of the fault-injection experiments).
    pub fn recovery_fraction(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.recovery.mean / self.total
        }
    }

    /// Compute load imbalance: max/mean of per-rank compute seconds
    /// (Fig. 5's right axis).
    pub fn compute_imbalance(&self) -> f64 {
        self.compute.imbalance()
    }

    /// A TSV row: total and the five mean components (seconds).
    pub fn tsv_row(&self) -> String {
        format!(
            "{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
            self.total,
            self.compute.mean,
            self.overhead.mean,
            self.comm.mean,
            self.sync.mean,
            self.recovery.mean
        )
    }

    /// Header matching [`Self::tsv_row`].
    pub fn tsv_header() -> &'static str {
        "total_s\tcompute_s\toverhead_s\tcomm_s\tsync_s\trecovery_s"
    }

    /// One aligned console row for a labelled breakdown — the shared
    /// format the multi-series experiment binaries print one line per
    /// coordination strategy with (see [`Self::console_header`]).
    pub fn console_row(&self, label: &str) -> String {
        format!(
            "{:<9} | {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            label,
            self.total,
            self.compute.mean,
            self.overhead.mean,
            self.comm.mean,
            self.sync.mean,
            self.recovery.mean
        )
    }

    /// Header matching [`Self::console_row`], with `label` naming the
    /// first column (e.g. `"algo"`).
    pub fn console_header(label: &str) -> String {
        format!(
            "{:<9} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            label, "total(s)", "align", "ovhd", "comm", "sync", "recov"
        )
    }
}

impl std::fmt::Display for RuntimeBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (c, o, m, s, r) = self.fractions();
        write!(
            f,
            "total {:.3}s | align {:.3}s ({:.1}%) | overhead {:.3}s ({:.1}%) | comm {:.3}s ({:.1}%) | sync {:.3}s ({:.1}%)",
            self.total,
            self.compute.mean,
            c * 100.0,
            self.overhead.mean,
            o * 100.0,
            self.comm.mean,
            m * 100.0,
            self.sync.mean,
            s * 100.0,
        )?;
        if self.recovery.mean > 0.0 {
            write!(
                f,
                " | recovery {:.3}s ({:.1}%)",
                self.recovery.mean,
                r * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_sim::engine::RankReport;
    use gnb_sim::fault::FaultStats;
    use gnb_sim::SimTime;

    fn report() -> SimReport {
        let mk = |c: u64, o: u64, m: u64, s: u64| RankReport {
            finish: SimTime::from_ns(c + o + m + s),
            ledger: [
                SimTime::from_ns(c),
                SimTime::from_ns(o),
                SimTime::from_ns(m),
                SimTime::from_ns(s),
                SimTime::ZERO,
            ],
            unclassified_idle: SimTime::ZERO,
            mem_peak: 0,
        };
        SimReport {
            end_time: SimTime::from_ns(4_000_000_000),
            ranks: vec![
                mk(2_000_000_000, 100_000_000, 400_000_000, 1_500_000_000),
                mk(3_900_000_000, 100_000_000, 0, 0),
            ],
            events: 2,
            trace: None,
            faults: FaultStats::default(),
            races: None,
            obs: None,
        }
    }

    #[test]
    fn extraction() {
        let b = RuntimeBreakdown::from_report(&report());
        assert!((b.total - 4.0).abs() < 1e-9);
        assert!((b.compute.mean - 2.95).abs() < 1e-9);
        assert!((b.compute.max - 3.9).abs() < 1e-9);
        assert!((b.sync.mean - 0.75).abs() < 1e-9);
        assert_eq!(b.recovery.mean, 0.0);
    }

    #[test]
    fn fractions_sum_sensible() {
        let b = RuntimeBreakdown::from_report(&report());
        let (c, o, m, s, r) = b.fractions();
        let sum = c + o + m + s + r;
        assert!(sum > 0.9 && sum <= 1.0 + 1e-9, "sum {sum}");
        assert!((b.comm_fraction() - 0.05).abs() < 1e-9);
        assert_eq!(b.recovery_fraction(), 0.0);
    }

    #[test]
    fn recovery_extracted_and_shown() {
        let mut rep = report();
        rep.ranks[0].ledger[4] = SimTime::from_ns(800_000_000);
        let b = RuntimeBreakdown::from_report(&rep);
        assert!((b.recovery.mean - 0.4).abs() < 1e-9);
        assert!((b.recovery_fraction() - 0.1).abs() < 1e-9);
        let shown = format!("{b}");
        assert!(shown.contains("recovery"), "{shown}");
        // Fault-free display stays in the paper's four-way format.
        let clean = format!("{}", RuntimeBreakdown::from_report(&report()));
        assert!(!clean.contains("recovery"), "{clean}");
    }

    #[test]
    fn imbalance() {
        let b = RuntimeBreakdown::from_report(&report());
        assert!((b.compute_imbalance() - 3.9 / 2.95).abs() < 1e-9);
    }

    #[test]
    fn zero_total() {
        let r = SimReport {
            end_time: SimTime::ZERO,
            ranks: vec![],
            events: 0,
            trace: None,
            faults: FaultStats::default(),
            races: None,
            obs: None,
        };
        let b = RuntimeBreakdown::from_report(&r);
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0, 0.0, 0.0));
        assert_eq!(b.comm_fraction(), 0.0);
        assert_eq!(b.recovery_fraction(), 0.0);
    }

    #[test]
    fn tsv_row_matches_header() {
        let b = RuntimeBreakdown::from_report(&report());
        assert_eq!(b.tsv_row().split('\t').count(), 6);
        assert_eq!(
            RuntimeBreakdown::tsv_header().split('\t').count(),
            b.tsv_row().split('\t').count()
        );
        let shown = format!("{b}");
        assert!(shown.contains("total"));
    }
}
