//! Property-based tests for workload preparation, the BSP round planner,
//! and the cost model.

use gnb_align::Candidate;
use gnb_core::bsp::plan_bsp;
use gnb_core::driver::RunConfig;
use gnb_core::workload::SimWorkload;
use gnb_core::{CostModel, MachineConfig};
use proptest::prelude::*;

fn arb_tasks(nreads: usize, max_tasks: usize) -> impl Strategy<Value = Vec<(Candidate, u32)>> {
    let n = nreads as u32;
    proptest::collection::vec((0..n, 0..n, 0u32..20_000, any::<bool>()), 0..max_tasks).prop_map(
        |raw| {
            let mut v: Vec<(Candidate, u32)> = raw
                .into_iter()
                .filter(|(a, b, _, _)| a != b)
                .map(|(x, y, ov, s)| {
                    (
                        Candidate {
                            a: x.min(y),
                            b: x.max(y),
                            a_pos: 0,
                            b_pos: 0,
                            same_strand: s,
                        },
                        ov,
                    )
                })
                .collect();
            v.sort_by_key(|(c, _)| (c.a, c.b));
            v.dedup_by_key(|(c, _)| (c.a, c.b));
            v
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Preparation conserves tasks, preserves the ownership invariant, and
    /// balances counts tightly, for arbitrary task graphs and rank counts.
    #[test]
    fn prepare_invariants(
        lens in proptest::collection::vec(100usize..20_000, 4..80),
        nranks in 1usize..12,
        seed_tasks in arb_tasks(80, 400),
    ) {
        let tasks: Vec<Candidate> = seed_tasks
            .iter()
            .filter(|(c, _)| (c.b as usize) < lens.len())
            .map(|(c, _)| *c)
            .collect();
        let ovs: Vec<u32> = seed_tasks
            .iter()
            .filter(|(c, _)| (c.b as usize) < lens.len())
            .map(|(_, ov)| *ov)
            .collect();
        let w = SimWorkload::prepare(&lens, &tasks, &ovs, nranks);
        w.validate(); // ownership + conservation (panics on violation)
        // Count balance: max - min <= small bound for the greedy.
        let counts: Vec<usize> = w.per_rank.iter().map(|r| r.total_tasks()).collect();
        let max = *counts.iter().max().unwrap_or(&0);
        let min = *counts.iter().min().unwrap_or(&0);
        // Greedy least-loaded with two choices per task cannot be worse
        // than one endpoint-forced task per step beyond optimal spread;
        // allow generous slack for degenerate ownership patterns.
        prop_assert!(max - min <= (tasks.len() / nranks).max(8) , "max {max} min {min}");
        // Exchange symmetry.
        let recv: u64 = w.recv_bytes().iter().sum();
        let send: u64 = w.send_bytes.iter().sum();
        prop_assert_eq!(recv, send);
    }

    /// The BSP planner conserves tasks and bytes across rounds for any
    /// memory budget, and rounds shrink as memory grows.
    #[test]
    fn bsp_plan_conserves(
        lens in proptest::collection::vec(500usize..8_000, 8..40),
        mem_mb in 1u64..64,
    ) {
        let n = lens.len() as u32;
        let tasks: Vec<Candidate> = (0..n)
            .flat_map(|a| ((a + 1)..n.min(a + 6)).map(move |b| Candidate {
                a, b, a_pos: 0, b_pos: 0, same_strand: true,
            }))
            .collect();
        let ovs = vec![1_000u32; tasks.len()];
        let mut machine = MachineConfig::cori_knl(2).with_cores_per_node(4);
        machine.mem_per_core = mem_mb << 20;
        let w = SimWorkload::prepare(&lens, &tasks, &ovs, machine.nranks());
        let cfg = RunConfig::default();
        let plan = plan_bsp(&w, &machine, &cfg);
        // Tasks conserved across rounds.
        let planned: u64 = plan.per_rank.iter().map(|p| p.tasks.iter().sum::<u64>()).sum();
        prop_assert_eq!(planned as usize, w.total_tasks);
        // Bytes conserved across rounds.
        for (p, rd) in plan.per_rank.iter().zip(&w.per_rank) {
            prop_assert_eq!(p.recv_bytes.iter().sum::<u64>(), rd.recv_bytes());
        }
        // A machine with plenty of memory plans a single round.
        let mut big = machine;
        big.mem_per_core = 8 << 30;
        let single = plan_bsp(&w, &big, &cfg);
        prop_assert_eq!(single.rounds, 1);
        prop_assert!(plan.rounds >= 1);
    }

    /// Cost model: monotone in overlap length, bounded jitter, and
    /// comm-only zeroes everything.
    #[test]
    fn cost_model_properties(a in 0u32..10_000, b in 0u32..10_000, ov in 1u32..100_000) {
        prop_assume!(a != b);
        let t = Candidate { a: a.min(b), b: a.max(b) + 1, a_pos: 0, b_pos: 0, same_strand: true };
        let m = CostModel::default();
        let c1 = m.cells(&t, ov);
        let c2 = m.cells(&t, ov.saturating_mul(2));
        prop_assert!(c2 >= c1, "monotone in overlap");
        let nominal = m.base_cells + m.cells_per_overlap_bp * ov as f64;
        prop_assert!(c1 >= nominal * (1.0 - m.jitter) - 1e-6);
        prop_assert!(c1 <= nominal * (1.0 + m.jitter) + 1e-6);
        prop_assert_eq!(CostModel::comm_only().cells(&t, ov), 0.0);
    }
}
