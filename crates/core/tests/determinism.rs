//! Determinism suite for the three coordination codes (DESIGN.md
//! "Determinism contract"): the virtual-time race detector must report
//! zero conflicts on fault-free default configurations, and fault-free
//! results must be invariant under the equal-time tie-break perturbation.

use gnb_core::driver::{run_sim, Algorithm, RunConfig};
use gnb_core::machine::MachineConfig;
use gnb_core::workload::SimWorkload;
use gnb_genome::presets;
use gnb_overlap::synth::{synthesize, SynthParams};
use gnb_sim::TieBreak;

fn workload(nranks: usize) -> SimWorkload {
    let preset = presets::ecoli_30x().scaled(128);
    let w = synthesize(&SynthParams::from_preset(&preset), 11);
    SimWorkload::prepare(&w.lengths, &w.tasks, &w.overlap_len, nranks)
}

fn machine(nodes: usize, cores: usize) -> MachineConfig {
    MachineConfig::cori_knl(nodes).with_cores_per_node(cores)
}

#[test]
fn fault_free_default_configs_report_zero_races() {
    let m = machine(2, 4);
    let w = workload(m.nranks());
    let cfg = RunConfig {
        detect_races: true,
        ..RunConfig::default()
    };
    for algo in Algorithm::ALL {
        let res = run_sim(&w, &m, algo, &cfg);
        let races = res.races().expect("detection enabled");
        assert!(races.is_clean(), "{algo}: {:?}", races.records);
        // The async runs are instrumented, so coverage must be non-zero.
        if algo != Algorithm::Bsp {
            assert!(
                races.groups_checked > 0,
                "{algo}: instrumentation never fired"
            );
        }
    }
}

#[test]
fn race_detection_does_not_change_results() {
    let m = machine(2, 4);
    let w = workload(m.nranks());
    for algo in Algorithm::ALL {
        let plain = run_sim(&w, &m, algo, &RunConfig::default());
        let detected = run_sim(
            &w,
            &m,
            algo,
            &RunConfig {
                detect_races: true,
                ..RunConfig::default()
            },
        );
        assert_eq!(plain.tasks_done, detected.tasks_done, "{algo}");
        assert_eq!(plain.task_checksum, detected.task_checksum, "{algo}");
        assert_eq!(plain.breakdown, detected.breakdown, "{algo}");
        assert_eq!(plain.events, detected.events, "{algo}");
    }
}

#[test]
fn fault_free_checksums_invariant_under_tie_break_perturbation() {
    let m = machine(2, 4);
    let w = workload(m.nranks());
    for algo in Algorithm::ALL {
        let run = |tb: TieBreak| {
            run_sim(
                &w,
                &m,
                algo,
                &RunConfig {
                    tie_break: tb,
                    ..RunConfig::default()
                },
            )
        };
        let fifo = run(TieBreak::Fifo);
        let lifo = run(TieBreak::Lifo);
        // Results must be invariant; timing-dependent observables (peak
        // buffered replies, idle tails) legitimately shift with the
        // consumption order of genuinely concurrent events.
        assert_eq!(fifo.tasks_done, lifo.tasks_done, "{algo}");
        assert_eq!(fifo.task_checksum, lifo.task_checksum, "{algo}");
        assert_eq!(fifo.rounds, lifo.rounds, "{algo}");
    }
}

#[test]
fn faulty_runs_with_detection_still_complete_and_stay_deterministic() {
    // Reply loss exercises the instrumented retry/duplicate paths with
    // detection on; whatever conflicts surface must be identical across
    // repeat runs (the detector itself is deterministic).
    let m = machine(2, 4);
    let w = workload(m.nranks());
    let cfg = RunConfig {
        rpc_drop_period: 10,
        rpc_timeout_ns: 100_000,
        detect_races: true,
        ..RunConfig::default()
    };
    for algo in [Algorithm::Async, Algorithm::AggAsync] {
        let a = run_sim(&w, &m, algo, &cfg);
        let b = run_sim(&w, &m, algo, &cfg);
        assert_eq!(a.tasks_done as usize, w.total_tasks, "{algo}");
        assert!(
            a.recovery.retries > 0,
            "{algo}: injection must actually fire"
        );
        assert_eq!(
            a.races().map(|r| r.records.clone()),
            b.races().map(|r| r.records.clone()),
            "{algo}"
        );
    }
}
