//! Calibration: the analytic cost model versus the real X-drop kernel.
//!
//! The simulator charges `CostModel::cells(task, overlap)` per task; this
//! test runs the *real* string pipeline on a small workload, measures the
//! actual DP cells each alignment consumed, and checks that the model's
//! scaling law (cells ≈ base + band·overlap for true overlaps; small
//! near-constant cost for false positives) matches the kernel within a
//! modest factor.

use gnb_core::pipeline::{run_pipeline, PipelineParams};
use gnb_core::CostModel;
use gnb_genome::presets;

#[test]
fn cost_model_tracks_real_kernel() {
    let preset = presets::ecoli_30x().scaled(512);
    let reads = preset.generate(77);
    let params = PipelineParams::new(preset.coverage, preset.errors.total_rate());
    let res = run_pipeline(&reads, &params);
    assert!(res.tasks.len() > 50, "need tasks: {}", res.tasks.len());

    let model = CostModel::default();

    // True-overlap samples come from the real pipeline.
    let mut true_pts: Vec<(f64, f64)> = Vec::new(); // (overlap, cells)
    for (rec, &ov) in res.outcome.records.iter().zip(&res.overlaps) {
        if ov >= 1000 {
            true_pts.push((ov as f64, rec.cells as f64));
        }
    }
    assert!(true_pts.len() > 10, "need true samples: {}", true_pts.len());

    // False-positive samples: a clean small genome yields no FP candidates
    // through the pipeline, so construct what an FP candidate *is* —
    // unrelated sequences sharing only a planted exact seed — and measure
    // the kernel on those.
    let fp_cells: Vec<f64> = (0..30u64)
        .map(|i| {
            let mk = |salt: u64| -> Vec<u8> {
                (0..8000u64)
                    .map(|j| {
                        let mut z = (j ^ (salt << 32)).wrapping_add(0x9E37_79B9_7F4A_7C15);
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        b"ACGT"[((z ^ (z >> 31)) & 3) as usize]
                    })
                    .collect()
            };
            let mut a = mk(2 * i);
            let mut b = mk(2 * i + 1);
            let seed: Vec<u8> = mk(1000 + i)[..params.k].to_vec();
            a[3000..3000 + params.k].copy_from_slice(&seed);
            b[4000..4000 + params.k].copy_from_slice(&seed);
            let cand = gnb_align::Candidate {
                a: 0,
                b: 1,
                a_pos: 3000,
                b_pos: 4000,
                same_strand: true,
            };
            let rec = gnb_align::align_candidate(
                &a,
                &b,
                &cand,
                params.k,
                &params.align.scoring,
                params.align.x,
                &params.align.criteria,
            );
            assert!(!rec.accepted, "an FP must not be accepted");
            rec.cells as f64
        })
        .collect();

    // False positives: mean measured cost within 5x of the model's.
    let fp_mean = fp_cells.iter().sum::<f64>() / fp_cells.len() as f64;
    let model_fp = model.fp_cells + model.base_cells;
    assert!(
        fp_mean / model_fp < 5.0 && model_fp / fp_mean < 5.0,
        "fp cells: measured {fp_mean:.0} vs model {model_fp:.0}"
    );

    // True overlaps: fitted cells-per-bp slope within 3x of the model's.
    let slope = {
        let sx: f64 = true_pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = true_pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = true_pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = true_pts.iter().map(|(x, y)| x * y).sum();
        let n = true_pts.len() as f64;
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    };
    assert!(
        slope > 0.0,
        "true-overlap cost must grow with overlap: slope {slope}"
    );
    let ratio = slope / model.cells_per_overlap_bp;
    assert!(
        (0.33..3.0).contains(&ratio),
        "cells/bp: measured {slope:.1} vs model {} (ratio {ratio:.2})",
        model.cells_per_overlap_bp
    );

    // And the headline asymmetry: a long true overlap costs orders of
    // magnitude more than a false positive.
    let long_mean = {
        let long: Vec<f64> = true_pts
            .iter()
            .filter(|(x, _)| *x > 3000.0)
            .map(|(_, y)| *y)
            .collect();
        assert!(!long.is_empty());
        long.iter().sum::<f64>() / long.len() as f64
    };
    assert!(
        long_mean > 10.0 * fp_mean,
        "long true {long_mean:.0} should dwarf fp {fp_mean:.0}"
    );
}

#[test]
fn host_cell_rate_feeds_knl_scaling() {
    // The machine preset's cells/sec should be within two orders of
    // magnitude of the measured host rate (KNL is slower than any modern
    // x86, but not 1000x slower).
    let host = gnb_align::calibrate::measure_cell_rate(1_000_000);
    let knl = gnb_core::machine::MachineConfig::cori_knl(1).cells_per_sec;
    let ratio = host.host_cells_per_sec / knl;
    assert!(
        (0.1..1000.0).contains(&ratio),
        "host {:.2e} vs knl {knl:.2e}",
        host.host_cells_per_sec
    );
}
