//! Fixture-driven rule tests for `gnb-lint`, plus the workspace-clean
//! gate: the repository itself must audit clean.

use gnb_analyze::rules::Rule;
use gnb_analyze::walk::{scan_source, scan_workspace};
use gnb_analyze::{Finding, Level};
use std::path::Path;

/// Loads a fixture and scans it as if it lived in the determinism core
/// (all rules apply).
fn scan_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    scan_source(&format!("crates/sim/src/{name}"), &src)
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unordered_collections_bad_and_clean() {
    let bad = scan_fixture("unordered_bad.rs");
    assert!(bad.len() >= 4, "uses + ctors all flagged: {bad:?}");
    assert!(bad.iter().all(|f| f.rule == Rule::UnorderedCollections));
    assert!(bad.iter().all(|f| f.level == Level::Deny));
    // Spans: the first finding is the `use ... HashMap` on line 2.
    assert_eq!((bad[0].line, bad[0].col), (2, 23), "{:?}", bad[0]);
    assert!(scan_fixture("unordered_clean.rs").is_empty());
}

#[test]
fn wall_clock_bad_and_clean() {
    let bad = scan_fixture("wall_clock_bad.rs");
    assert_eq!(rules_of(&bad), vec![Rule::WallClock; 3], "{bad:?}");
    // `Instant::now()` inside `measure` sits on line 5.
    assert!(bad.iter().any(|f| f.line == 5), "{bad:?}");
    assert!(scan_fixture("wall_clock_clean.rs").is_empty());
}

#[test]
fn ambient_env_bad_and_clean() {
    let bad = scan_fixture("ambient_env_bad.rs");
    assert!(!bad.is_empty());
    assert!(bad.iter().all(|f| f.rule == Rule::AmbientEnv), "{bad:?}");
    assert!(scan_fixture("ambient_env_clean.rs").is_empty());
}

#[test]
fn ambient_rng_bad_and_clean() {
    let bad = scan_fixture("ambient_rng_bad.rs");
    assert_eq!(rules_of(&bad), vec![Rule::AmbientRng; 3], "{bad:?}");
    assert!(scan_fixture("ambient_rng_clean.rs").is_empty());
}

#[test]
fn float_fold_bad_and_clean() {
    let bad = scan_fixture("float_fold_bad.rs");
    assert_eq!(rules_of(&bad), vec![Rule::FloatFoldOrder], "{bad:?}");
    // Deny inside the determinism core (the fixture scans as
    // `crates/sim/src/`): accumulation order there *is* the result.
    assert_eq!(bad[0].level, Level::Deny);
    assert_eq!(bad[0].line, 3);
    assert!(scan_fixture("float_fold_clean.rs").is_empty());
}

#[test]
fn float_fold_out_of_scope_outside_the_core() {
    // Fold order only bakes into *published* results inside the core;
    // elsewhere the rule is not scanned at all.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/float_fold_bad.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    assert!(scan_source("crates/align/src/float_fold_bad.rs", &src).is_empty());
}

#[test]
fn annotations_bad_and_clean() {
    let bad = scan_fixture("annotation_bad.rs");
    assert_eq!(rules_of(&bad), vec![Rule::BadAnnotation; 4], "{bad:?}");
    // Malformed annotations are always deny: they look like waivers but
    // waive nothing, which is worse than no annotation at all.
    assert!(bad.iter().all(|f| f.level == Level::Deny));
    assert!(scan_fixture("annotation_clean.rs").is_empty());
}

#[test]
fn fixtures_outside_core_scope_skip_hot_path_rules() {
    // The same unordered-collections fixture is fine in a non-core crate.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/unordered_bad.rs");
    let src = std::fs::read_to_string(path).unwrap();
    assert!(scan_source("crates/genome/src/x.rs", &src).is_empty());
}

#[test]
fn workspace_audits_clean_under_deny_all() {
    // The acceptance gate CI enforces: the repository's own sources carry
    // zero findings even with warn-level rules promoted to deny.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut report = scan_workspace(&root).expect("scan workspace");
    report.deny_all();
    assert!(
        report.files_scanned > 50,
        "walk found only {} files",
        report.files_scanned
    );
    assert_eq!(
        report.deny_count(),
        0,
        "workspace must lint clean:\n{}",
        report.render_human()
    );
}

#[test]
fn json_report_round_trips_fixture_findings() {
    let bad = scan_fixture("wall_clock_bad.rs");
    let report = gnb_analyze::Report {
        root: "fixtures".into(),
        files_scanned: 1,
        findings: bad,
    };
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"wall-clock\""), "{json}");
    assert!(json.contains("\"deny_findings\": 3"), "{json}");
}
