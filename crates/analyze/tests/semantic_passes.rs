//! End-to-end fixture tests for the parser-backed semantic passes: the
//! full `scan_sources` pipeline (lex → parse → index → passes → waivers
//! → IDs) over deliberately broken sources placed at determinism-core
//! paths, exactly as `scan_workspace` would see them.

use gnb_analyze::rules::Rule;
use gnb_analyze::walk::scan_sources;
use gnb_analyze::{Level, Report};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Scans a fixture as if it lived in `crates/core/src/` (semantic scope).
fn scan_core(name: &str) -> Report {
    scan_sources(&[(format!("crates/core/src/{name}"), fixture(name))])
}

#[test]
fn strategy_dropping_on_give_up_is_denied() {
    let report = scan_core("strategy_no_give_up.rs");
    let contract: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::ProtocolContract)
        .collect();
    assert!(
        contract
            .iter()
            .any(|f| f.message.contains("on_give_up") && f.message.contains("send_tracked")),
        "missing give-up hook must be reported:\n{}",
        report.render_human()
    );
    // The acceptance gate: this escapes no one — it is deny out of the
    // box, not something `--deny-all` has to promote.
    assert!(contract.iter().all(|f| f.level == Level::Deny));
}

#[test]
fn panic_reachable_from_give_up_is_denied_with_chain() {
    let report = scan_core("panic_on_recovery.rs");
    let panics: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PanicPath)
        .collect();
    assert!(
        panics
            .iter()
            .any(|f| f.message.contains("unwrap") && f.message.contains("retarget")),
        "the unwrap inside the helper must be attributed through the call \
         chain:\n{}",
        report.render_human()
    );
    assert!(panics.iter().all(|f| f.level == Level::Deny));
}

#[test]
fn stale_waiver_is_denied() {
    let report = scan_core("unused_waiver.rs");
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::UnusedWaiver)
        .collect();
    assert_eq!(stale.len(), 1, "{}", report.render_human());
    assert_eq!(stale[0].level, Level::Deny);
    assert!(stale[0].message.contains("wall-clock"));
}

#[test]
fn semantic_passes_skip_non_semantic_paths() {
    // The same broken strategy in a crate outside the semantic scope is
    // not audited: the passes reason about the runtime's own protocol.
    let report = scan_sources(&[(
        "crates/genome/src/strategy_no_give_up.rs".to_string(),
        fixture("strategy_no_give_up.rs"),
    )]);
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule != Rule::ProtocolContract && f.rule != Rule::PanicPath),
        "{}",
        report.render_human()
    );
}

#[test]
fn finding_ids_survive_line_shifts() {
    // Prepending a comment block shifts every line; the IDs must not move
    // with them, or the baseline ratchet would churn on every refactor.
    let src = fixture("strategy_no_give_up.rs");
    let shifted = format!("// one\n// two\n// three\n{src}");
    let a = scan_core("strategy_no_give_up.rs");
    let b = scan_sources(&[(
        "crates/core/src/strategy_no_give_up.rs".to_string(),
        shifted,
    )]);
    let ids = |r: &Report| {
        let mut v: Vec<String> = r.findings.iter().map(|f| f.id.clone()).collect();
        v.sort();
        v
    };
    assert!(!a.findings.is_empty());
    assert_eq!(ids(&a), ids(&b));
}

#[test]
fn waiver_clears_a_semantic_finding() {
    // A reasoned waiver on the flagged line silences exactly that
    // finding — and only that finding.
    let src = fixture("panic_on_recovery.rs");
    let waived = src.replace(
        "        self.owners.get(key as usize).copied().unwrap()",
        "        // gnb-lint: allow(panic-path, reason = \"fixture: waiver plumbing test\")\n        \
         self.owners.get(key as usize).copied().unwrap()",
    );
    assert_ne!(src, waived, "the replace target must exist");
    let report = scan_sources(&[("crates/core/src/panic_on_recovery.rs".to_string(), waived)]);
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::PanicPath),
        "{}",
        report.render_human()
    );
}
