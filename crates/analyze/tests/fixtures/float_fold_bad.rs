// Fixture: order-sensitive float accumulation.
fn total(costs: &[f64]) -> f64 {
    costs.iter().fold(0.0, |acc, c| acc + c)
}
