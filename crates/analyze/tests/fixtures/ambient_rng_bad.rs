// Fixture: ambient-rng violations.
fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let seeded_from_os = rand::rngs::StdRng::from_entropy();
    let _ = seeded_from_os;
    let x: f64 = rand::random();
    let _ = &mut rng;
    x
}
