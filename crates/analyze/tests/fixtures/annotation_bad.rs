// Fixture: malformed waivers are findings themselves.
// gnb-lint: allow(no-such-rule, reason = "unknown rule name")
fn a() {}

// gnb-lint: allow(wall-clock)
fn b() {}

// gnb-lint: allow(wall-clock, reason = "")
fn c() {}

// gnb-lint: deny(wall-clock)
fn d() {}
