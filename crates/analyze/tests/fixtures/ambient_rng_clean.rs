// Fixture: explicit seeding is deterministic and passes.
use rand::{rngs::StdRng, Rng, SeedableRng};

fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen::<f64>()
}
