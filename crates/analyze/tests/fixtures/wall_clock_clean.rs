// Fixture: virtual time passes; waived Instant uses pass (both forms).
fn measure(now_ns: u64, dt_ns: u64) -> u64 {
    now_ns + dt_ns
}

// gnb-lint: allow(wall-clock, reason = "fixture exercises the line-above form")
fn calibrated() -> std::time::Instant {
    std::time::Instant::now() // gnb-lint: allow(wall-clock, reason = "same-line form")
}
