// Fixture: ambient-env violations.
fn configured() -> Option<String> {
    std::env::var("GNB_SECRET_KNOB").ok()
}

fn arguments() -> Vec<String> {
    use std::env;
    env::args().collect()
}
