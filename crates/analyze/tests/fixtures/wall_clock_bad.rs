// Fixture: wall-clock violations.
use std::time::Instant;

fn measure() -> u128 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    t0.elapsed().as_nanos()
}
