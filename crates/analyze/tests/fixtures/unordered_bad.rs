// Fixture: unordered-collections violations (scanned as if in crates/sim/src/).
use std::collections::HashMap;
use std::collections::HashSet;

fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_default() += 1;
    }
    seen.len() + counts.len()
}
