// Fixture: order-insensitive float reductions pass.
fn peak(costs: &[f64]) -> f64 {
    costs.iter().cloned().fold(0.0, f64::max)
}

fn floor(costs: &[f64]) -> f64 {
    costs.iter().cloned().fold(1.0, f64::min)
}

fn count(items: &[u64]) -> u64 {
    items.iter().fold(0, |acc, x| acc + x)
}
