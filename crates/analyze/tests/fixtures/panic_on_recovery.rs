//! Deliberately broken: the give-up path calls a helper that unwraps,
//! so exhausting a retry budget aborts the run instead of degrading.

pub struct Fragile {
    owners: Vec<usize>,
}

impl Fragile {
    fn retarget(&mut self, key: u64) -> usize {
        self.owners.get(key as usize).copied().unwrap()
    }
}

impl CoordinationStrategy for Fragile {
    fn on_start(&mut self, rt: &mut BCtx<'_, '_>) {
        rt.send_tracked(1, 0, 64, ());
    }

    fn on_reply(&mut self, rt: &mut BCtx<'_, '_>, key: u64, _p: ()) {
        rt.note_reply(key);
    }

    fn on_give_up(&mut self, rt: &mut BCtx<'_, '_>, key: u64) {
        let dst = self.retarget(key);
        rt.resend(dst);
    }

    fn on_barrier(&mut self, _rt: &mut BCtx<'_, '_>, _id: u64) {}
}
