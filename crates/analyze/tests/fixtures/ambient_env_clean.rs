// Fixture: configuration arrives as data, not ambient process state.
pub struct Opts {
    pub knob: Option<String>,
}

fn configured(opts: &Opts) -> Option<&str> {
    opts.knob.as_deref()
}
