//! Deliberately broken: issues tracked requests but never unwinds an
//! abandoned one — the `on_give_up` override is missing, so the trait
//! default's `unreachable!` fires mid-recovery.

pub struct Broken {
    in_flight: usize,
}

impl CoordinationStrategy for Broken {
    fn on_start(&mut self, rt: &mut BCtx<'_, '_>) {
        self.in_flight += 1;
        rt.send_tracked(1, 0, 64, ());
    }

    fn on_reply(&mut self, rt: &mut BCtx<'_, '_>, key: u64, _p: ()) {
        self.in_flight -= 1;
        rt.note_reply(key);
    }

    fn on_barrier(&mut self, _rt: &mut BCtx<'_, '_>, _id: u64) {}
}
