// Fixture: well-formed waivers, same line and line above.
// gnb-lint: allow(wall-clock, reason = "fixture exercises the line-above form")
fn a() -> std::time::Instant {
    std::time::Instant::now() // gnb-lint: allow(wall-clock, reason = "same-line form")
}
