//! A stale waiver: the line it decorates no longer trips any rule.

pub fn settled() -> u64 {
    // gnb-lint: allow(wall-clock, reason = "was a real clock read before the refactor")
    42
}
