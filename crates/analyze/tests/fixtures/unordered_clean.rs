// Fixture: ordered collections pass; a commented HashMap and one in a
// string literal must not trip the lexer-aware scanner.
use std::collections::{BTreeMap, BTreeSet};

// A HashMap would be wrong here.
fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_default() += 1;
    }
    let _msg = "HashSet in a string is fine";
    seen.len() + counts.len()
}
