//! The workspace symbol index: a flattened view of every parsed file's
//! functions, impls, enums and consts, plus a conservative name-resolved
//! call graph with BFS reachability.
//!
//! Resolution is purely by name (optionally qualified by the impl type),
//! which is the right trade for an auditor with no type information: a
//! false edge makes the panic-path audit *more* conservative, never less.
//! The one place name resolution would explode — ubiquitous std method
//! names like `new`, `len`, `push` — is handled by [`SKIP_RESOLVE`]: those
//! names never create edges, because a call to `Vec::push` must not drag
//! every `push` method in the workspace onto the recovery path.

use crate::parser::{Ast, BodyFacts, ImplBlock};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method/function names too common to resolve by name: edges through
/// them are dropped. Workspace functions deliberately avoid these names
/// for anything protocol-relevant.
pub const SKIP_RESOLVE: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "cmp",
    "eq",
    "ne",
    "hash",
    "fmt",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "to_string",
    "to_vec",
    "to_owned",
    "take",
    "replace",
    "extend",
    "clear",
    "sort",
    "sort_by",
    "sort_by_key",
    "binary_search",
    "entry",
    "or_insert",
    "or_default",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "and_then",
    "or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_str",
    "as_slice",
    "as_bytes",
    "split",
    "trim",
    "parse",
    "write",
    "read",
    "flush",
    "drain",
    "retain",
    "count",
    "sum_by",
    "abs",
    "floor",
    "ceil",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "min_by",
    "max_by",
    "rev",
    "enumerate",
    "zip",
    "chain",
    "flat_map",
    "flatten",
    "any",
    "all",
    "find",
    "position",
    "first",
    "last",
    "keys",
    "values",
    "values_mut",
    "range",
    "starts_with",
    "ends_with",
    "send",
    "recv",
];

/// One function in the index.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Repo-relative path of the defining file.
    pub path: String,
    /// The impl/trait self type this fn belongs to (`None` for free fns).
    pub owner: Option<String>,
    /// The trait being implemented, if the owning block is
    /// `impl Trait for Ty`.
    pub trait_name: Option<String>,
    /// Function name.
    pub name: String,
    /// Whether the fn is test-only (`#[cfg(test)]` module or `#[test]`).
    pub cfg_test: bool,
    /// 1-based line of the name.
    pub line: u32,
    /// 1-based column of the name.
    pub col: u32,
    /// Body facts (`None` for bodyless trait declarations).
    pub facts: Option<BodyFacts>,
}

/// One impl block (or trait definition) in the index.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Repo-relative path of the defining file.
    pub path: String,
    /// Self type (or trait name for trait definitions).
    pub self_ty: String,
    /// Implemented trait, if any.
    pub trait_name: Option<String>,
    /// Whether this is a trait definition.
    pub is_trait_def: bool,
    /// `type Name = Value;` bindings.
    pub assoc_types: Vec<(String, String)>,
    /// Indices into [`SymbolIndex::fns`] for this block's methods.
    pub fn_ids: Vec<usize>,
    /// Whether the block is test-only.
    pub cfg_test: bool,
    /// 1-based line of the block head.
    pub line: u32,
}

/// One evaluated constant in the index.
#[derive(Debug, Clone)]
pub struct ConstInfo {
    /// Repo-relative path of the defining file.
    pub path: String,
    /// Constant name.
    pub name: String,
    /// Folded integer value, when the initializer was a literal expression.
    pub value: Option<u128>,
    /// 1-based line of the name.
    pub line: u32,
    /// 1-based column of the name.
    pub col: u32,
}

/// The workspace symbol index.
#[derive(Debug, Clone, Default)]
pub struct SymbolIndex {
    /// Every function, flattened.
    pub fns: Vec<FnInfo>,
    /// Every impl block / trait definition.
    pub impls: Vec<ImplInfo>,
    /// Enum name → variant names (first definition wins on collision).
    pub enums: BTreeMap<String, Vec<String>>,
    /// Every `const` / `static` item.
    pub consts: Vec<ConstInfo>,
    /// fn name → fn ids (non-test only), for call resolution.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolIndex {
    /// Builds the index from parsed files: `(repo-relative path, ast)`.
    pub fn build(files: &[(String, Ast)]) -> SymbolIndex {
        let mut ix = SymbolIndex::default();
        for (path, ast) in files {
            // Impl blocks with their methods (also covers trait defs).
            collect(&ast.items, path, &mut ix, false);
        }
        for (id, f) in ix.fns.iter().enumerate() {
            if !f.cfg_test {
                ix.by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        return ix;

        fn collect(items: &[crate::parser::Item], path: &str, ix: &mut SymbolIndex, in_test: bool) {
            use crate::parser::Item;
            for it in items {
                match it {
                    Item::Fn(f) => ix.fns.push(fn_info(path, None, f, in_test)),
                    Item::Impl(b) => {
                        let mut fn_ids = Vec::new();
                        for f in &b.fns {
                            fn_ids.push(ix.fns.len());
                            ix.fns.push(fn_info(path, Some(b), f, in_test));
                        }
                        ix.impls.push(ImplInfo {
                            path: path.to_string(),
                            self_ty: b.self_ty.clone(),
                            trait_name: b.trait_name.clone(),
                            is_trait_def: b.is_trait_def,
                            assoc_types: b.assoc_types.clone(),
                            fn_ids,
                            cfg_test: b.cfg_test || in_test,
                            line: b.line,
                        });
                    }
                    Item::Enum(e) => {
                        ix.enums
                            .entry(e.name.clone())
                            .or_insert_with(|| e.variants.clone());
                    }
                    Item::Const(c) => ix.consts.push(ConstInfo {
                        path: path.to_string(),
                        name: c.name.clone(),
                        value: c.value,
                        line: c.line,
                        col: c.col,
                    }),
                    Item::Mod(m) => collect(&m.items, path, ix, in_test || m.cfg_test),
                }
            }
        }

        fn fn_info(
            path: &str,
            block: Option<&ImplBlock>,
            f: &crate::parser::FnItem,
            in_test: bool,
        ) -> FnInfo {
            FnInfo {
                path: path.to_string(),
                owner: block.map(|b| b.self_ty.clone()),
                trait_name: block.and_then(|b| b.trait_name.clone()),
                name: f.name.clone(),
                cfg_test: f.cfg_test || in_test || block.map(|b| b.cfg_test).unwrap_or(false),
                line: f.line,
                col: f.col,
                facts: f.facts.clone(),
            }
        }
    }

    /// Resolves one call site to candidate fn ids by name (qualifier
    /// narrows to impls of that type when it matches any). Names in
    /// [`SKIP_RESOLVE`] resolve to nothing.
    pub fn resolve(&self, name: &str, qualifier: Option<&str>) -> Vec<usize> {
        if SKIP_RESOLVE.contains(&name) {
            return Vec::new();
        }
        let cands = match self.by_name.get(name) {
            Some(c) => c,
            None => return Vec::new(),
        };
        if let Some(q) = qualifier {
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    let owner = self.fns[id].owner.as_deref();
                    owner == Some(q) || q == "Self"
                })
                .collect();
            if !narrowed.is_empty() {
                return narrowed;
            }
        }
        cands.clone()
    }

    /// BFS over the call graph from `roots` (fn ids), restricted to
    /// functions whose defining file satisfies `in_scope`. Returns
    /// reached-fn id → predecessor fn id (roots map to themselves).
    pub fn reachable(
        &self,
        roots: &[usize],
        in_scope: impl Fn(&str) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if pred.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let f = &self.fns[id];
            let facts = match &f.facts {
                Some(facts) => facts,
                None => continue,
            };
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            for call in &facts.calls {
                for t in self.resolve(&call.name, call.qualifier.as_deref()) {
                    targets.insert(t);
                }
            }
            for t in targets {
                let tf = &self.fns[t];
                if tf.cfg_test || !in_scope(&tf.path) {
                    continue;
                }
                if pred.insert(t, id).is_none() {
                    queue.push_back(t);
                }
            }
        }
        pred
    }

    /// A short `root → … → fn` chain for a reached fn, for messages.
    pub fn chain(&self, pred: &BTreeMap<usize, usize>, mut id: usize) -> String {
        let mut names = vec![self.qualified(id)];
        let mut hops = 0;
        while let Some(&p) = pred.get(&id) {
            if p == id || hops > 6 {
                break;
            }
            names.push(self.qualified(p));
            id = p;
            hops += 1;
        }
        names.reverse();
        names.join(" -> ")
    }

    /// `Owner::name` or `name` for a fn id.
    pub fn qualified(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.owner {
            Some(o) => format!("{}::{}", o, f.name),
            None => f.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn build(srcs: &[(&str, &str)]) -> SymbolIndex {
        let files: Vec<(String, Ast)> = srcs
            .iter()
            .map(|(p, s)| (p.to_string(), parse(&lex(s))))
            .collect();
        SymbolIndex::build(&files)
    }

    #[test]
    fn resolves_by_name_and_qualifier() {
        let ix = build(&[(
            "crates/core/src/a.rs",
            "impl Svc { fn route(&self) {} }\n\
             impl Other { fn route(&self) {} }\n\
             fn free() { Svc::route(); }",
        )]);
        assert_eq!(ix.resolve("route", Some("Svc")).len(), 1);
        assert_eq!(ix.resolve("route", None).len(), 2);
        assert!(ix.resolve("push", None).is_empty()); // SKIP_RESOLVE
    }

    #[test]
    fn reachability_walks_calls_and_skips_tests() {
        let ix = build(&[(
            "crates/core/src/a.rs",
            "fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() { data.unwrap(); }\n\
             fn island() {}\n\
             #[cfg(test)]\n\
             mod tests { fn mid() {} }",
        )]);
        let root = ix.fns.iter().position(|f| f.name == "root").unwrap();
        let reached = ix.reachable(&[root], |_| true);
        let names: Vec<&str> = reached.keys().map(|&id| ix.fns[id].name.as_str()).collect();
        assert!(names.contains(&"root"));
        assert!(names.contains(&"mid"));
        assert!(names.contains(&"leaf"));
        assert!(!names.contains(&"island"));
        // The test-mod `mid` is never a resolution target.
        assert!(reached.keys().all(|&id| !ix.fns[id].cfg_test));
        let leaf = ix.fns.iter().position(|f| f.name == "leaf").unwrap();
        assert_eq!(ix.chain(&reached, leaf), "root -> mid -> leaf");
    }

    #[test]
    fn scope_filter_stops_traversal() {
        let ix = build(&[
            ("crates/core/src/a.rs", "fn root() { outside(); }"),
            ("crates/align/src/b.rs", "fn outside() { deeper(); }"),
        ]);
        let root = ix.fns.iter().position(|f| f.name == "root").unwrap();
        let reached = ix.reachable(&[root], |p| p.starts_with("crates/core/"));
        assert_eq!(reached.len(), 1); // root only
    }
}
