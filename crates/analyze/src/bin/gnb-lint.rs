//! `gnb-lint` — the static determinism auditor.
//!
//! ```text
//! gnb-lint [--root <dir>] [--format human|json] [--deny-all] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` deny-level findings, `2` usage or I/O error.
//! See the README ("Determinism lint") for the JSON schema and the
//! annotation syntax.

use gnb_analyze::rules::AUDIT_RULES;
use gnb_analyze::walk::scan_workspace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    list_rules: bool,
}

fn usage() -> &'static str {
    "gnb-lint: static determinism auditor for the gnb workspace\n\
     \n\
     USAGE: gnb-lint [--root <dir>] [--format human|json] [--deny-all] [--list-rules]\n\
     \n\
     --root <dir>    workspace root to scan (default: nearest ancestor with a\n\
     \x20               [workspace] Cargo.toml, else the current directory)\n\
     --format <fmt>  report format: human (default) or json\n\
     --deny-all      treat warn-level findings (float-fold-order) as deny\n\
     --list-rules    print the determinism contract and exit\n\
     \n\
     EXIT CODES: 0 clean, 1 deny-level findings, 2 usage/I-O error\n"
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        json: false,
        deny_all: false,
        list_rules: false,
    };
    // The auditor's own CLI necessarily reads the process arguments.
    // gnb-lint: allow(ambient-env, reason = "CLI argument parsing is this binary's input")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let v = args.get(i + 1).ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
                i += 2;
            }
            "--format" => {
                let v = args.get(i + 1).ok_or("--format needs a value")?;
                opts.json = match v.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
                i += 2;
            }
            "--deny-all" => {
                opts.deny_all = true;
                i += 1;
            }
            "--list-rules" => {
                opts.list_rules = true;
                i += 1;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> PathBuf {
    // gnb-lint: allow(ambient-env, reason = "cwd discovery for default --root only")
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..6 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => break,
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("gnb-lint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        println!("The gnb determinism contract (see DESIGN.md):\n");
        for r in AUDIT_RULES {
            let lvl = match r.default_level() {
                gnb_analyze::Level::Deny => "deny",
                gnb_analyze::Level::Warn => "warn",
            };
            println!("  {:<22} [{}] {}", r.name(), lvl, r.describe());
        }
        println!(
            "\nWaiver syntax (same line or the line above):\n  \
             // gnb-lint: allow(<rule>, reason = \"<why this site is deterministic>\")"
        );
        return ExitCode::SUCCESS;
    }
    let root = opts.root.unwrap_or_else(find_root);
    if !Path::new(&root).is_dir() {
        eprintln!("gnb-lint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let mut report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnb-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.deny_all {
        report.deny_all();
    }
    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.deny_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
