//! `gnb-lint` — the static determinism auditor.
//!
//! ```text
//! gnb-lint [--root <dir>] [--format human|json] [--deny-all] [--list-rules]
//!          [--baseline <file>] [--write-baseline <file>]
//! ```
//!
//! Exit codes: `0` clean, `1` deny-level findings (or a baseline ratchet
//! violation), `2` usage or I/O error. See the README ("Determinism lint")
//! and the `gnb_analyze::report` module docs for the JSON schema, the
//! stable-ID scheme and the annotation syntax.
//!
//! With `--baseline`, the exit code reflects the **ratchet** instead of
//! the raw finding count: findings whose IDs are all in the baseline are
//! accepted debt, a finding missing from the baseline is new (exit 1), and
//! a baseline entry that no longer fires is stale (exit 1 — shrink the
//! baseline with `--write-baseline` so the ratchet only tightens).

use gnb_analyze::report::Baseline;
use gnb_analyze::rules::AUDIT_RULES;
use gnb_analyze::walk::scan_workspace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    list_rules: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> &'static str {
    "gnb-lint: static determinism auditor for the gnb workspace\n\
     \n\
     USAGE: gnb-lint [--root <dir>] [--format human|json] [--deny-all] [--list-rules]\n\
     \x20              [--baseline <file>] [--write-baseline <file>]\n\
     \n\
     --root <dir>            workspace root to scan (default: nearest ancestor with a\n\
     \x20                       [workspace] Cargo.toml, else the current directory)\n\
     --format <fmt>          report format: human (default) or json\n\
     --deny-all              treat warn-level findings (float-fold-order outside the\n\
     \x20                       determinism core) as deny\n\
     --baseline <file>       ratchet: exit 1 on findings not in <file> and on stale\n\
     \x20                       entries (fixed findings must shrink the baseline)\n\
     --write-baseline <file> write the current findings as the new baseline and exit 0\n\
     --list-rules            print the determinism contract and exit\n\
     \n\
     EXIT CODES: 0 clean, 1 deny-level findings / ratchet violation, 2 usage/I-O error\n"
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        json: false,
        deny_all: false,
        list_rules: false,
        baseline: None,
        write_baseline: None,
    };
    // The auditor's own CLI necessarily reads the process arguments.
    // gnb-lint: allow(ambient-env, reason = "CLI argument parsing is this binary's input")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let v = args.get(i + 1).ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
                i += 2;
            }
            "--format" => {
                let v = args.get(i + 1).ok_or("--format needs a value")?;
                opts.json = match v.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
                i += 2;
            }
            "--baseline" => {
                let v = args.get(i + 1).ok_or("--baseline needs a value")?;
                opts.baseline = Some(PathBuf::from(v));
                i += 2;
            }
            "--write-baseline" => {
                let v = args.get(i + 1).ok_or("--write-baseline needs a value")?;
                opts.write_baseline = Some(PathBuf::from(v));
                i += 2;
            }
            "--deny-all" => {
                opts.deny_all = true;
                i += 1;
            }
            "--list-rules" => {
                opts.list_rules = true;
                i += 1;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> PathBuf {
    // gnb-lint: allow(ambient-env, reason = "cwd discovery for default --root only")
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..6 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => break,
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("gnb-lint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        println!("The gnb determinism contract (see DESIGN.md):\n");
        for r in AUDIT_RULES {
            let lvl = match r.default_level() {
                gnb_analyze::Level::Deny => "deny",
                gnb_analyze::Level::Warn => "warn",
            };
            println!("  {:<22} [{}] {}", r.name(), lvl, r.describe());
        }
        println!(
            "\nWaiver syntax (same line or the line above):\n  \
             // gnb-lint: allow(<rule>, reason = \"<why this site is deterministic>\")"
        );
        return ExitCode::SUCCESS;
    }
    let root = opts.root.unwrap_or_else(find_root);
    if !Path::new(&root).is_dir() {
        eprintln!("gnb-lint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let mut report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gnb-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.deny_all {
        report.deny_all();
    }
    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, report.render_baseline()) {
            eprintln!("gnb-lint: cannot write baseline `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "gnb-lint: wrote baseline `{}` ({} finding(s))",
            path.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gnb-lint: cannot read baseline `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("gnb-lint: bad baseline `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let (new, stale) = baseline.diff(&report);
        for f in &new {
            eprintln!(
                "gnb-lint: NEW finding (not in baseline): {} {}:{}:{} {}",
                f.id,
                f.path,
                f.line,
                f.col,
                f.rule.name()
            );
        }
        for id in &stale {
            eprintln!(
                "gnb-lint: stale baseline entry {id} — the finding was fixed; \
                 shrink the baseline with --write-baseline"
            );
        }
        return if new.is_empty() && stale.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if report.deny_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
