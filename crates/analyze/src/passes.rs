//! The semantic passes: checks that need the parser and symbol index
//! rather than a token window.
//!
//! * [`protocol_pass`] — the coordination-protocol contract. The paper's
//!   BSP-vs-async comparison is only meaningful because every strategy
//!   implements the same request/reply/give-up protocol; this pass makes
//!   the contract mechanical: a strategy that issues tracked requests must
//!   really handle `on_reply` *and* `on_give_up` (a default
//!   `unreachable!` body does not count), every message variant armed via
//!   `after`/`after_app`/`send_with_timer` must have a handler arm in some
//!   `on_app`/`on_message`, protocol-enum matches must not discard payload
//!   variants behind a wildcard arm (without a wildcard, rustc itself
//!   proves exhaustiveness), and the key-namespace constants that keep
//!   read ids, batch keys and takeover keys disjoint must actually be
//!   disjoint.
//! * [`panic_pass`] — the panic-path audit. Functions reachable from the
//!   recovery hooks (`on_give_up`, takeover/restore) and engine dispatch
//!   are exactly the code the chaos suites exercise mid-crash; a panic
//!   there turns an injected fault into a test-process abort. The pass
//!   walks the call graph from those roots and denies `unwrap`/`expect`/
//!   `panic!`/`unreachable!`/`todo!`/`unimplemented!` and index
//!   expressions, each waivable with a reasoned annotation.
//!
//! Waiver hygiene (the third pass) lives in [`crate::walk`], because it
//! needs the post-suppression state of every other rule.

use crate::index::SymbolIndex;
use crate::parser::BodyFacts;
use crate::rules::{Finding, Level, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// The trait whose impls form the protocol surface.
const STRATEGY_TRAIT: &str = "CoordinationStrategy";
/// The engine-facing dispatch trait.
const PROGRAM_TRAIT: &str = "Program";
/// The runtime transport envelope enum.
const RT_MSG: &str = "RtMsg";

/// Macro names that panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Method names that panic on the sad path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

fn finding(rule: Rule, path: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule,
        level: Level::Deny,
        path: path.to_string(),
        line,
        col,
        message,
        id: String::new(),
    }
}

/// Whether a hook body actually does something: a missing body, an empty
/// one, or a lone `unreachable!`/`todo!`/`unimplemented!` is trivial.
fn nontrivial(facts: Option<&BodyFacts>) -> bool {
    match facts {
        None => false,
        Some(f) => {
            if f.tokens == 0 {
                return false;
            }
            let only_bail = f
                .macros
                .iter()
                .any(|m| matches!(m.name.as_str(), "unreachable" | "todo" | "unimplemented"))
                && f.calls.is_empty();
            !only_bail
        }
    }
}

/// The coordination-protocol contract checker. `audit` selects the files
/// whose definitions are checked (handlers are searched index-wide).
pub fn protocol_pass(ix: &SymbolIndex, audit: impl Fn(&str) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();

    // Protocol enums: the transport envelope plus every strategy's `App`
    // associated type.
    let mut protocol_enums: BTreeSet<String> = BTreeSet::new();
    protocol_enums.insert(RT_MSG.to_string());
    for b in &ix.impls {
        if b.trait_name.as_deref() == Some(STRATEGY_TRAIT) && !b.cfg_test {
            for (name, value) in &b.assoc_types {
                if name == "App" {
                    protocol_enums.insert(value.clone());
                }
            }
        }
    }

    // --- strategy hook contract -------------------------------------
    for b in &ix.impls {
        if b.trait_name.as_deref() != Some(STRATEGY_TRAIT)
            || b.is_trait_def
            || b.cfg_test
            || !audit(&b.path)
        {
            continue;
        }
        // Does this strategy issue tracked requests? Look at every
        // non-test fn in the same file (strategies keep their inherent
        // helpers beside the trait impl).
        let issues = ix
            .fns
            .iter()
            .filter(|f| f.path == b.path && !f.cfg_test)
            .filter_map(|f| f.facts.as_ref())
            .flat_map(|f| f.calls.iter())
            .any(|c| c.name == "send_tracked");
        if !issues {
            continue;
        }
        for hook in ["on_reply", "on_give_up"] {
            let found = b
                .fn_ids
                .iter()
                .map(|&id| &ix.fns[id])
                .find(|f| f.name == hook);
            match found {
                None => out.push(finding(
                    Rule::ProtocolContract,
                    &b.path,
                    b.line,
                    1,
                    format!(
                        "`{}` issues tracked requests (send_tracked) but does not \
                         override `{hook}`; the trait default panics, so a timeout \
                         or reply would abort the run",
                        b.self_ty
                    ),
                )),
                Some(f) if !nontrivial(f.facts.as_ref()) => out.push(finding(
                    Rule::ProtocolContract,
                    &b.path,
                    f.line,
                    f.col,
                    format!(
                        "`{}::{hook}` is trivial (empty or unconditional bail) but \
                         this strategy issues tracked requests; replies/give-ups \
                         would be dropped or abort",
                        b.self_ty
                    ),
                )),
                Some(_) => {}
            }
        }
    }

    // --- armed timer variants need a handler arm ---------------------
    // A variant is handled when some `on_app`/`on_message` body references
    // it beyond its own arming calls (match arm, let-destructure).
    let mut handled: BTreeMap<(String, String), i64> = BTreeMap::new();
    for f in &ix.fns {
        if f.cfg_test || !(f.name == "on_app" || f.name == "on_message") {
            continue;
        }
        if let Some(facts) = &f.facts {
            for p in &facts.paths {
                *handled
                    .entry((p.ty.clone(), p.variant.clone()))
                    .or_insert(0) += 1;
            }
            for p in &facts.armed {
                *handled
                    .entry((p.ty.clone(), p.variant.clone()))
                    .or_insert(0) -= 1;
            }
        }
    }
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    for f in &ix.fns {
        if f.cfg_test || !audit(&f.path) {
            continue;
        }
        let facts = match &f.facts {
            Some(facts) => facts,
            None => continue,
        };
        for p in &facts.armed {
            if !protocol_enums.contains(&p.ty) {
                continue;
            }
            if !seen.insert((f.path.clone(), p.ty.clone(), p.variant.clone())) {
                continue;
            }
            if handled
                .get(&(p.ty.clone(), p.variant.clone()))
                .copied()
                .unwrap_or(0)
                <= 0
            {
                out.push(finding(
                    Rule::ProtocolContract,
                    &f.path,
                    p.line,
                    p.col,
                    format!(
                        "timer armed with `{}::{}` but no `on_app`/`on_message` \
                         handles that variant; the message would hit a dispatch \
                         dead end",
                        p.ty, p.variant
                    ),
                ));
            }
        }
    }

    // --- no wildcard-discard in protocol matches ---------------------
    for f in &ix.fns {
        if f.cfg_test || !audit(&f.path) {
            continue;
        }
        let facts = match &f.facts {
            Some(facts) => facts,
            None => continue,
        };
        for m in &facts.matches {
            let ty = m
                .arm_pairs
                .iter()
                .map(|p| p.ty.as_str())
                .find(|t| protocol_enums.contains(*t));
            let ty = match ty {
                Some(t) => t,
                None => continue,
            };
            for w in &m.wildcards {
                out.push(finding(
                    Rule::ProtocolContract,
                    &f.path,
                    w.line,
                    w.col,
                    format!(
                        "wildcard arm `{}` discards remaining `{ty}` protocol \
                         variants; match them explicitly so new variants cannot \
                         be silently dropped (rustc then proves exhaustiveness)",
                        w.name
                    ),
                ));
            }
        }
    }

    // --- key-namespace constants -------------------------------------
    // Plain tracked keys are u32-sized read ids; batch keys must start at
    // or above 2^32 and below the takeover namespace; takeover keys are
    // pinned at 1<<40 by the recovery design.
    let mut bases: Vec<(&str, &str, Option<u128>, u32, u32)> = Vec::new();
    for c in &ix.consts {
        if c.name.ends_with("_KEY_BASE") && audit(&c.path) {
            bases.push((c.name.as_str(), c.path.as_str(), c.value, c.line, c.col));
        }
    }
    for &(name, path, value, line, col) in &bases {
        let Some(v) = value else {
            out.push(finding(
                Rule::ProtocolContract,
                path,
                line,
                col,
                format!(
                    "`{name}` is a key-namespace base but its value is not a \
                     literal integer expression the auditor can check"
                ),
            ));
            continue;
        };
        if name == "TAKEOVER_KEY_BASE" && v != 1u128 << 40 {
            out.push(finding(
                Rule::ProtocolContract,
                path,
                line,
                col,
                format!(
                    "`TAKEOVER_KEY_BASE` must be 1<<40 (the takeover namespace \
                     the recovery design documents), found {v:#x}"
                ),
            ));
        }
        if name == "BATCH_KEY_BASE" && !(1u128 << 32..1u128 << 40).contains(&v) {
            out.push(finding(
                Rule::ProtocolContract,
                path,
                line,
                col,
                format!(
                    "`BATCH_KEY_BASE` must sit in [2^32, 2^40) — above the u32 \
                     read-id namespace, below the takeover namespace — found {v:#x}"
                ),
            ));
        }
    }
    for i in 0..bases.len() {
        for j in i + 1..bases.len() {
            if let (Some(a), Some(b)) = (bases[i].2, bases[j].2) {
                if a == b {
                    out.push(finding(
                        Rule::ProtocolContract,
                        bases[j].1,
                        bases[j].3,
                        bases[j].4,
                        format!(
                            "`{}` and `{}` share the value {a:#x}; key namespaces \
                             must be disjoint or tracked keys collide",
                            bases[i].0, bases[j].0
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// The panic-path audit. `audit` bounds both the roots and the traversal.
pub fn panic_pass(ix: &SymbolIndex, audit: impl Fn(&str) -> bool) -> Vec<Finding> {
    // Roots: the recovery hooks and engine dispatch surface.
    let mut roots = Vec::new();
    for (id, f) in ix.fns.iter().enumerate() {
        if f.cfg_test || !audit(&f.path) {
            continue;
        }
        let is_root = match f.name.as_str() {
            // Strategy give-up hook (including the trait-def default body).
            "on_give_up" => {
                f.trait_name.as_deref() == Some(STRATEGY_TRAIT)
                    || f.owner.as_deref() == Some(STRATEGY_TRAIT)
            }
            // Crash takeover / checkpoint restore / retry expiry / reply
            // acceptance — the crash-recovery surface.
            "adopt" | "ckpt_restore" | "expire" | "accept_reply" => true,
            // Engine dispatch: the run loop and the Program hooks it calls.
            "run" => f.owner.as_deref() == Some("Engine"),
            "on_start" | "on_message" | "on_barrier" => {
                f.trait_name.as_deref() == Some(PROGRAM_TRAIT)
                    || f.owner.as_deref() == Some(PROGRAM_TRAIT)
            }
            _ => false,
        };
        if is_root {
            roots.push(id);
        }
    }
    let pred = ix.reachable(&roots, &audit);
    let mut out = Vec::new();
    for &id in pred.keys() {
        let f = &ix.fns[id];
        let facts = match &f.facts {
            Some(facts) => facts,
            None => continue,
        };
        let via = ix.chain(&pred, id);
        for m in &facts.macros {
            if PANIC_MACROS.contains(&m.name.as_str()) {
                out.push(finding(
                    Rule::PanicPath,
                    &f.path,
                    m.line,
                    m.col,
                    format!(
                        "`{}!` on the recovery/dispatch path ({via}); chaos tests \
                         reach this code mid-crash",
                        m.name
                    ),
                ));
            }
        }
        for c in &facts.calls {
            if c.method && PANIC_METHODS.contains(&c.name.as_str()) {
                out.push(finding(
                    Rule::PanicPath,
                    &f.path,
                    c.line,
                    c.col,
                    format!(
                        "`.{}()` on the recovery/dispatch path ({via}); return or \
                         route the error instead of aborting mid-recovery",
                        c.name
                    ),
                ));
            }
        }
        for s in &facts.indexes {
            out.push(finding(
                Rule::PanicPath,
                &f.path,
                s.line,
                s.col,
                format!(
                    "index expression on the recovery/dispatch path ({via}); a \
                     bad index aborts the run — use get() or waive with the \
                     bounds invariant",
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse, Ast};

    fn index_of(srcs: &[(&str, &str)]) -> SymbolIndex {
        let files: Vec<(String, Ast)> = srcs
            .iter()
            .map(|(p, s)| (p.to_string(), parse(&lex(s))))
            .collect();
        SymbolIndex::build(&files)
    }

    const CORE: &str = "crates/core/src/strategy.rs";

    fn audit(p: &str) -> bool {
        p.starts_with("crates/core/src/") || p.starts_with("crates/sim/src/")
    }

    #[test]
    fn strategy_without_give_up_flagged() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for Broken {\n\
                 type App = BrokenApp;\n\
                 fn on_start(&mut self, rt: &mut RtCtx) { rt.send_tracked(1, 0, 8, q); }\n\
                 fn on_reply(&mut self, key: u64) { self.done += 1; }\n\
             }",
        )]);
        let f = protocol_pass(&ix, audit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("on_give_up"));
        assert_eq!(f[0].rule, Rule::ProtocolContract);
    }

    #[test]
    fn trivial_bail_body_flagged() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for Broken {\n\
                 fn on_start(&mut self, rt: &mut RtCtx) { rt.send_tracked(1, 0, 8, q); }\n\
                 fn on_reply(&mut self, key: u64) { self.done += 1; }\n\
                 fn on_give_up(&mut self, key: u64) { unreachable!(\"nope\") }\n\
             }",
        )]);
        let f = protocol_pass(&ix, audit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("trivial"));
    }

    #[test]
    fn complete_strategy_clean() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for Good {\n\
                 type App = GoodApp;\n\
                 fn on_start(&mut self, rt: &mut RtCtx) { rt.send_tracked(1, 0, 8, q); }\n\
                 fn on_reply(&mut self, key: u64) { self.done += 1; }\n\
                 fn on_give_up(&mut self, key: u64) { self.retarget(key); }\n\
             }",
        )]);
        assert!(protocol_pass(&ix, audit).is_empty());
    }

    #[test]
    fn strategy_without_tracked_requests_needs_no_hooks() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for Bsp {\n\
                 type App = BspApp;\n\
                 fn on_start(&mut self, rt: &mut RtCtx) { rt.after_app(d, BspApp::Adopt); }\n\
                 fn on_app(&mut self, rt: &mut RtCtx, msg: BspApp) {\n\
                     let BspApp::Adopt(dead) = msg;\n\
                     self.adopt(dead);\n\
                 }\n\
             }",
        )]);
        assert!(protocol_pass(&ix, audit).is_empty());
    }

    #[test]
    fn unhandled_armed_variant_flagged() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for S {\n\
                 type App = SApp;\n\
                 fn on_start(&mut self, rt: &mut RtCtx) { rt.after_app(d, SApp::Poll); }\n\
                 fn on_app(&mut self, rt: &mut RtCtx, msg: SApp) { drop(msg); }\n\
             }",
        )]);
        let f = protocol_pass(&ix, audit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SApp::Poll"));
    }

    #[test]
    fn rearm_inside_handler_still_counts_as_handled() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for S {\n\
                 type App = SApp;\n\
                 fn on_start(&mut self, rt: &mut RtCtx) { rt.after_app(d, SApp::Poll); }\n\
                 fn on_app(&mut self, rt: &mut RtCtx, msg: SApp) {\n\
                     match msg {\n\
                         SApp::Poll => { self.pump(rt); rt.after_app(d, SApp::Poll); }\n\
                     }\n\
                 }\n\
             }",
        )]);
        assert!(protocol_pass(&ix, audit).is_empty());
    }

    #[test]
    fn wildcard_discard_of_protocol_enum_flagged() {
        let ix = index_of(&[(
            CORE,
            "impl CoordinationStrategy for S {\n\
                 type App = SApp;\n\
                 fn on_app(&mut self, rt: &mut RtCtx, msg: SApp) {\n\
                     match msg {\n\
                         SApp::Poll => self.pump(rt),\n\
                         _ => {}\n\
                     }\n\
                 }\n\
             }",
        )]);
        let f = protocol_pass(&ix, audit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wildcard"));
    }

    #[test]
    fn non_protocol_matches_may_wildcard() {
        let ix = index_of(&[(
            CORE,
            "fn classify(r: Reason) -> u32 { match r { Reason::Slow => 1, _ => 0 } }",
        )]);
        assert!(protocol_pass(&ix, audit).is_empty());
    }

    #[test]
    fn key_namespace_constants_checked() {
        let ix = index_of(&[(
            "crates/core/src/runtime/mod.rs",
            "pub const TAKEOVER_KEY_BASE: u64 = 1 << 40;\n\
             pub const BATCH_KEY_BASE: u64 = 1 << 32;",
        )]);
        assert!(protocol_pass(&ix, audit).is_empty());
        let bad = index_of(&[(
            "crates/core/src/runtime/mod.rs",
            "pub const TAKEOVER_KEY_BASE: u64 = 1 << 40;\n\
             pub const BATCH_KEY_BASE: u64 = 1 << 40;",
        )]);
        let f = protocol_pass(&bad, audit);
        // BATCH out of range + collision with TAKEOVER.
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn panic_pass_flags_reachable_sites_only() {
        let ix = index_of(&[(
            "crates/core/src/agg.rs",
            "impl CoordinationStrategy for S {\n\
                 fn on_give_up(&mut self, key: u64) { self.takeover(key); }\n\
             }\n\
             impl S {\n\
                 fn takeover(&mut self, key: u64) {\n\
                     let owner = self.pending.remove(&key).expect(\"tracked\");\n\
                     let shard = self.plan[owner];\n\
                 }\n\
                 fn unrelated(&mut self) { self.data.unwrap(); }\n\
             }",
        )]);
        let f = panic_pass(&ix, audit);
        // expect() + indexing inside takeover; `unrelated` is not reachable.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.line == 6 || x.line == 7));
        assert!(f.iter().any(|x| x.message.contains("expect")));
    }

    #[test]
    fn panic_pass_ignores_test_mods_and_out_of_scope() {
        let ix = index_of(&[
            (
                "crates/core/src/agg.rs",
                "impl CoordinationStrategy for S {\n\
                     fn on_give_up(&mut self, key: u64) { helper(key); }\n\
                 }\n\
                 #[cfg(test)]\n\
                 mod tests { fn helper(k: u64) { panic!(\"test-only\"); } }",
            ),
            (
                "crates/align/src/lib.rs",
                "fn helper(k: u64) { data.unwrap(); }",
            ),
        ]);
        // The only `helper` candidates are test-only or out of scope.
        assert!(panic_pass(&ix, audit).is_empty());
    }

    #[test]
    fn program_dispatch_is_a_root() {
        let ix = index_of(&[(
            "crates/sim/src/prog.rs",
            "impl Program for Stage {\n\
                 fn on_message(&mut self, ctx: &mut Ctx, msg: Msg) { unreachable!() }\n\
             }",
        )]);
        let f = panic_pass(&ix, audit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unreachable"));
    }
}
