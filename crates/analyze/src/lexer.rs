//! A lightweight Rust lexer: just enough tokenization to audit source for
//! determinism hazards without pulling in `syn` (the build environment has
//! no crates.io route, and the auditor must not depend on what it audits).
//!
//! The lexer understands the parts of Rust that matter for *not* producing
//! false positives from a plain text search:
//!
//! * line and (nested) block comments — kept aside, both so that hazard
//!   words inside comments are never flagged and so that
//!   `// gnb-lint: allow(...)` annotations can be parsed;
//! * string / raw-string / byte-string / char literals — `"HashMap"` in a
//!   message is not a `HashMap` use;
//! * lifetimes vs char literals (`'a` the lifetime is not `'a'` the char);
//! * numeric literals, with float detection (`0.0`, `1e-3`, `2f64`) for
//!   the float-accumulation-order rule.
//!
//! Everything else is a single-character punctuation token; rules match
//! token sequences (e.g. `std` `:` `:` `env`).

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; the text is in [`Token::text`].
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal, or an integer with an `f32`/`f64` suffix.
    Float,
    /// String literal of any flavour (raw, byte, …).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Identifier text (empty for non-identifiers).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A comment captured during lexing (attributed to its starting line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
}

/// Lexer output: the token stream plus the comments seen along the way.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. The lexer is forgiving: malformed input (an unterminated
/// string, say) ends the current token at end-of-input rather than failing,
/// because an auditor that dies on one odd file audits nothing.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line, col),
                'r' if matches!(self.peek_at(1), Some('"') | Some('#')) && self.raw_ahead(1) => {
                    self.bump(); // 'r'
                    self.raw_string_literal(line, col);
                }
                'b' if self.peek_at(1) == Some('"') => {
                    self.bump(); // 'b'
                    self.string_literal(line, col);
                }
                'b' if self.peek_at(1) == Some('\'') => {
                    self.bump(); // 'b'
                    self.bump(); // '\''
                    self.char_literal(line, col);
                }
                'b' if self.peek_at(1) == Some('r') && self.raw_ahead(2) => {
                    self.bump(); // 'b'
                    self.bump(); // 'r'
                    self.raw_string_literal(line, col);
                }
                '\'' => {
                    self.bump();
                    self.quote(line, col);
                }
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line, col);
                }
            }
        }
        self.out
    }

    /// Whether the characters from offset `at` look like a raw-string
    /// opener: zero or more `#` then `"`.
    fn raw_ahead(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek_at(i) == Some('#') {
            i += 1;
        }
        self.peek_at(i) == Some('"')
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // "//"
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // "/*"
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek_at(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char (any)
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line, col);
    }

    /// Called with the cursor on the first `#` or `"` after `r`/`br`.
    fn raw_string_literal(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening '"'
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Need `hashes` '#' characters to close.
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line, col);
    }

    /// Cursor just after a `'`: decide lifetime vs char literal.
    fn quote(&mut self, line: u32, col: u32) {
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Scan the identifier run; a closing quote right after a
                // single char means a char literal ('a'), otherwise a
                // lifetime ('abc or 'a followed by non-quote).
                let mut len = 0usize;
                while matches!(self.peek_at(len), Some(c) if c.is_alphanumeric() || c == '_') {
                    len += 1;
                }
                if len == 1 && self.peek_at(1) == Some('\'') {
                    self.bump();
                    self.bump(); // char + closing quote
                    self.push(TokKind::Char, String::new(), line, col);
                } else {
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(TokKind::Lifetime, String::new(), line, col);
                }
            }
            _ => self.char_literal(line, col),
        }
    }

    /// Cursor inside a char literal (after the opening quote): consume to
    /// the closing quote, honouring escapes.
    fn char_literal(&mut self, line: u32, col: u32) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, String::new(), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        // Numeric literals keep their text (unlike strings/chars) so the
        // parser's const-expression evaluator can check key-namespace
        // constants like `1 << 40`.
        let start = self.pos;
        let mut is_float = false;
        // Hex/octal/binary prefix: consume and stay integer.
        if self.peek() == Some('0') && matches!(self.peek_at(1), Some('x') | Some('o') | Some('b'))
        {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokKind::Int, text, line, col);
            return;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // Fractional part: a '.' followed by a digit (not `1..3` or `1.max()`).
        if self.peek() == Some('.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // `1.` with nothing after (valid float) — but not `1..` (range).
        if self.peek() == Some('.')
            && !matches!(self.peek_at(1), Some('.'))
            && !matches!(self.peek_at(1), Some(c) if c.is_alphabetic() || c == '_')
        {
            is_float = true;
            self.bump();
        }
        // Exponent.
        if matches!(self.peek(), Some('e') | Some('E'))
            && matches!(
                (self.peek_at(1), self.peek_at(2)),
                (Some(c), _) if c.is_ascii_digit()
            )
            || matches!(self.peek(), Some('e') | Some('E'))
                && matches!(self.peek_at(1), Some('+') | Some('-'))
                && matches!(self.peek_at(2), Some(c) if c.is_ascii_digit())
        {
            is_float = true;
            self.bump(); // e
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // Suffix (u32, f64, usize, …): a float suffix makes it a float.
        let mut suffix = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            suffix.push(self.peek().unwrap());
            self.bump();
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(
            if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            text,
            line,
            col,
        );
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            text.push(self.peek().unwrap());
            self.bump();
        }
        self.push(TokKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("use std::collections::HashMap;");
        let names = idents("use std::collections::HashMap;");
        assert_eq!(names, vec!["use", "std", "collections", "HashMap"]);
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Punct(';')));
    }

    #[test]
    fn strings_hide_contents() {
        assert!(idents(r#"let m = "HashMap is fine here";"#)
            .iter()
            .all(|i| i != "HashMap"));
    }

    #[test]
    fn raw_strings_hide_contents() {
        assert!(idents(r##"let m = r#"Instant "quoted" inside"#;"##)
            .iter()
            .all(|i| i != "Instant"));
        assert!(idents(r#"let m = r"SystemTime";"#)
            .iter()
            .all(|i| i != "SystemTime"));
    }

    #[test]
    fn byte_strings_and_chars() {
        let names = idents(r#"let b = b"HashMap"; let c = b'x'; let d = '\n';"#);
        assert!(names.iter().all(|i| i != "HashMap" && i != "x" && i != "n"));
    }

    #[test]
    fn comments_captured_not_tokenized() {
        let l = lex("// HashMap in a comment\nlet x = 1; /* SystemTime\n span */");
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].text.contains("SystemTime"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert!(idents("/* outer /* inner */ still */ let x = 1;").contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn float_detection() {
        let kinds: Vec<TokKind> = lex("0.0 1e-3 2f64 7 0x1F 1_000u64 1..3")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokKind::Float);
        assert_eq!(kinds[1], TokKind::Float);
        assert_eq!(kinds[2], TokKind::Float);
        assert_eq!(kinds[3], TokKind::Int);
        assert_eq!(kinds[4], TokKind::Int);
        assert_eq!(kinds[5], TokKind::Int);
        // `1..3` lexes as Int, '.', '.', Int — not a float.
        assert_eq!(kinds[6], TokKind::Int);
        assert_eq!(kinds[7], TokKind::Punct('.'));
    }

    #[test]
    fn method_call_on_int_not_float() {
        let kinds: Vec<TokKind> = lex("1.max(2)").tokens.into_iter().map(|t| t.kind).collect();
        assert_eq!(kinds[0], TokKind::Int);
        assert_eq!(kinds[1], TokKind::Punct('.'));
    }

    #[test]
    fn numeric_literal_text_is_kept() {
        let texts: Vec<String> = lex("1 << 40; 0x1F 1_000u64 2.5f64")
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["1", "40", "0x1F", "1_000u64", "2.5f64"]);
    }

    #[test]
    fn positions_are_tracked() {
        let l = lex("let x = 1;\nlet HashMap = 2;");
        let t = l.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert_eq!(t.line, 2);
        assert_eq!(t.col, 5);
    }
}
