//! Rendering of scan results: human-readable (rustc-style) and JSON, plus
//! stable finding IDs and the committed findings baseline (ratchet).
//!
//! # JSON schema
//!
//! The JSON schema is stable so the lint can be wired into pre-commit
//! hooks and CI annotations:
//!
//! ```json
//! {
//!   "root": "<scan root>",
//!   "files_scanned": 42,
//!   "deny_findings": 1,
//!   "warn_findings": 0,
//!   "findings": [
//!     {
//!       "id": "gnb-9f2c4e1a77b05d38",
//!       "rule": "unordered-collections",
//!       "level": "deny",
//!       "path": "crates/sim/src/engine.rs",
//!       "line": 77,
//!       "col": 15,
//!       "message": "..."
//!     }
//!   ]
//! }
//! ```
//!
//! # Stable finding IDs
//!
//! `id` is `"gnb-"` plus the 64-bit FNV-1a hash (hex) of
//! `rule \0 path \0 normalized-span \0 ordinal`, where *normalized-span*
//! is the finding's source line with leading/trailing whitespace stripped,
//! and *ordinal* is the finding's index among findings of the same rule,
//! path and normalized span (so two identical hazards on identical lines
//! get distinct IDs). Line and column numbers are deliberately **not**
//! hashed: inserting code above a finding shifts its span but not its ID,
//! which is what lets a committed baseline survive unrelated edits.
//! Changing the offending line itself (or the rule, or moving the file)
//! changes the ID — that is a new finding, and the ratchet should see it.
//!
//! # Baseline (ratchet)
//!
//! `gnb-lint --baseline lint-baseline.json` compares the scan against a
//! committed baseline file:
//!
//! ```json
//! { "version": 1, "findings": [ { "id": "gnb-…", "rule": "…", "path": "…" } ] }
//! ```
//!
//! * a finding whose ID is **not** in the baseline is *new* → exit 1;
//! * a baseline entry whose ID no longer occurs is *stale* → exit 1 (the
//!   fix must shrink the baseline, so the ratchet only ever tightens);
//! * `--write-baseline` regenerates the file from the current scan.

use crate::rules::{Finding, Level};
use std::collections::BTreeSet;

/// Result of a whole-tree scan.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scan root (as given).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (path, line, col).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Count of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count()
    }

    /// Count of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Promotes every warn finding to deny (`--deny-all`).
    pub fn deny_all(&mut self) {
        for f in &mut self.findings {
            f.level = Level::Deny;
        }
    }

    /// Human-readable rendering, one `path:line:col` block per finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let lvl = match f.level {
                Level::Deny => "deny",
                Level::Warn => "warn",
            };
            out.push_str(&format!(
                "{}:{}:{}: {}({}): {}\n",
                f.path,
                f.line,
                f.col,
                lvl,
                f.rule.name(),
                f.message
            ));
        }
        out.push_str(&format!(
            "gnb-lint: {} file(s) scanned, {} deny finding(s), {} warn finding(s)\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// JSON rendering (hand-rolled: this crate is dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"deny_findings\": {},\n", self.deny_count()));
        out.push_str(&format!("  \"warn_findings\": {},\n", self.warn_count()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"id\": {}, ", json_str(&f.id)));
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule.name())));
            out.push_str(&format!(
                "\"level\": {}, ",
                json_str(match f.level {
                    Level::Deny => "deny",
                    Level::Warn => "warn",
                })
            ));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the baseline file for the current findings.
    pub fn render_baseline(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": {}, \"rule\": {}, \"path\": {}}}",
                json_str(&f.id),
                json_str(f.rule.name()),
                json_str(&f.path)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Computes a finding's stable ID (see the module docs for the scheme).
pub fn finding_id(rule: &str, path: &str, normalized_span: &str, ordinal: usize) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(rule.as_bytes());
    eat(b"\0");
    eat(path.as_bytes());
    eat(b"\0");
    eat(normalized_span.trim().as_bytes());
    eat(b"\0");
    eat(ordinal.to_string().as_bytes());
    format!("gnb-{h:016x}")
}

/// Assigns stable IDs to findings given a line lookup (path → source
/// lines). Findings whose file is unavailable hash an empty span.
pub fn assign_ids<'a>(findings: &mut [Finding], line_of: impl Fn(&str, u32) -> Option<&'a str>) {
    // Ordinal: index among findings with identical (rule, path, span).
    let mut seen: std::collections::BTreeMap<(String, String, String), usize> =
        std::collections::BTreeMap::new();
    for f in findings.iter_mut() {
        let span = line_of(&f.path, f.line).unwrap_or("").trim().to_string();
        let key = (f.rule.name().to_string(), f.path.clone(), span.clone());
        let ord = seen.entry(key).or_insert(0);
        f.id = finding_id(f.rule.name(), &f.path, &span, *ord);
        *ord += 1;
    }
}

/// A parsed findings baseline: the set of accepted finding IDs.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Accepted finding IDs.
    pub ids: BTreeSet<String>,
}

impl Baseline {
    /// Parses a baseline file. The parser is a minimal scanner for the
    /// schema this crate writes (`"id": "…"` string values); it is not a
    /// general JSON parser.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        if !text.contains("\"version\"") {
            return Err("baseline missing \"version\" field".to_string());
        }
        let mut ids = BTreeSet::new();
        let mut rest = text;
        while let Some(at) = rest.find("\"id\"") {
            rest = &rest[at + 4..];
            let Some(colon) = rest.find(':') else {
                return Err("baseline: `\"id\"` without value".to_string());
            };
            let after = rest[colon + 1..].trim_start();
            let Some(stripped) = after.strip_prefix('"') else {
                return Err("baseline: id value is not a string".to_string());
            };
            let Some(end) = stripped.find('"') else {
                return Err("baseline: unterminated id string".to_string());
            };
            ids.insert(stripped[..end].to_string());
            rest = &stripped[end + 1..];
        }
        Ok(Baseline { ids })
    }

    /// Ratchet comparison: (new findings not in the baseline, stale
    /// baseline IDs no longer found).
    pub fn diff<'r>(&self, report: &'r Report) -> (Vec<&'r Finding>, Vec<String>) {
        let current: BTreeSet<&str> = report.findings.iter().map(|f| f.id.as_str()).collect();
        let new: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| !self.ids.contains(&f.id))
            .collect();
        let stale: Vec<String> = self
            .ids
            .iter()
            .filter(|id| !current.contains(id.as_str()))
            .cloned()
            .collect();
        (new, stale)
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> Report {
        Report {
            root: ".".to_string(),
            files_scanned: 3,
            findings: vec![Finding {
                rule: Rule::WallClock,
                level: Level::Deny,
                path: "crates/x/src/a.rs".to_string(),
                line: 7,
                col: 13,
                message: "uses \"Instant\"".to_string(),
                id: "gnb-0000000000000001".to_string(),
            }],
        }
    }

    #[test]
    fn human_format_has_span_and_counts() {
        let r = sample().render_human();
        assert!(
            r.contains("crates/x/src/a.rs:7:13: deny(wall-clock)"),
            "{r}"
        );
        assert!(r.contains("3 file(s) scanned, 1 deny"), "{r}");
    }

    #[test]
    fn json_escapes_and_structures() {
        let j = sample().render_json();
        assert!(j.contains("\"rule\": \"wall-clock\""), "{j}");
        assert!(j.contains("\"id\": \"gnb-0000000000000001\""), "{j}");
        assert!(j.contains("\"line\": 7"), "{j}");
        assert!(j.contains("uses \\\"Instant\\\""), "{j}");
        // Counts present.
        assert!(j.contains("\"deny_findings\": 1"), "{j}");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report {
            root: "x".into(),
            files_scanned: 0,
            findings: vec![],
        };
        let j = r.render_json();
        assert!(j.contains("\"findings\": []"), "{j}");
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let mut r = sample();
        r.findings[0].level = Level::Warn;
        assert_eq!(r.deny_count(), 0);
        r.deny_all();
        assert_eq!(r.deny_count(), 1);
    }

    #[test]
    fn ids_survive_line_shifts_but_not_content_changes() {
        let a = finding_id("wall-clock", "a.rs", "  let t = Instant::now();", 0);
        let b = finding_id("wall-clock", "a.rs", "let t = Instant::now();\t", 0);
        assert_eq!(a, b); // whitespace-normalized span
        let c = finding_id("wall-clock", "a.rs", "let u = Instant::now();", 0);
        assert_ne!(a, c); // content change → new ID
        let d = finding_id("wall-clock", "b.rs", "let t = Instant::now();", 0);
        assert_ne!(a, d); // path is part of the identity
        let e = finding_id("wall-clock", "a.rs", "let t = Instant::now();", 1);
        assert_ne!(a, e); // ordinal distinguishes duplicates
    }

    #[test]
    fn assign_ids_orders_duplicates() {
        let mk = |line: u32| Finding {
            rule: Rule::WallClock,
            level: Level::Deny,
            path: "a.rs".to_string(),
            line,
            col: 1,
            message: String::new(),
            id: String::new(),
        };
        let mut fs = vec![mk(1), mk(2)];
        // Both lines have identical content → ordinals 0 and 1.
        assign_ids(&mut fs, |_, _| Some("let t = Instant::now();"));
        assert_ne!(fs[0].id, fs[1].id);
        assert!(fs.iter().all(|f| f.id.starts_with("gnb-")));
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let r = sample();
        let text = r.render_baseline();
        let base = Baseline::parse(&text).unwrap();
        assert!(base.ids.contains("gnb-0000000000000001"));
        let (new, stale) = base.diff(&r);
        assert!(new.is_empty() && stale.is_empty());

        // A second finding is new; removing the first makes it stale.
        let mut r2 = r.clone();
        r2.findings[0].id = "gnb-000000000000beef".to_string();
        let (new, stale) = base.diff(&r2);
        assert_eq!(new.len(), 1);
        assert_eq!(stale, vec!["gnb-0000000000000001".to_string()]);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("not json at all").is_err());
        assert!(Baseline::parse("{ \"version\": 1, \"findings\": [] }")
            .unwrap()
            .ids
            .is_empty());
    }
}
