//! Rendering of scan results: human-readable (rustc-style) and JSON.
//!
//! The JSON schema is stable and documented in the README so the lint can
//! be wired into pre-commit hooks and CI annotations:
//!
//! ```json
//! {
//!   "root": "<scan root>",
//!   "files_scanned": 42,
//!   "deny_findings": 1,
//!   "warn_findings": 0,
//!   "findings": [
//!     {
//!       "rule": "unordered-collections",
//!       "level": "deny",
//!       "path": "crates/sim/src/engine.rs",
//!       "line": 77,
//!       "col": 15,
//!       "message": "..."
//!     }
//!   ]
//! }
//! ```

use crate::rules::{Finding, Level};

/// Result of a whole-tree scan.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scan root (as given).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (path, line, col).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Count of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count()
    }

    /// Count of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Promotes every warn finding to deny (`--deny-all`).
    pub fn deny_all(&mut self) {
        for f in &mut self.findings {
            f.level = Level::Deny;
        }
    }

    /// Human-readable rendering, one `path:line:col` block per finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let lvl = match f.level {
                Level::Deny => "deny",
                Level::Warn => "warn",
            };
            out.push_str(&format!(
                "{}:{}:{}: {}({}): {}\n",
                f.path,
                f.line,
                f.col,
                lvl,
                f.rule.name(),
                f.message
            ));
        }
        out.push_str(&format!(
            "gnb-lint: {} file(s) scanned, {} deny finding(s), {} warn finding(s)\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// JSON rendering (hand-rolled: this crate is dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"deny_findings\": {},\n", self.deny_count()));
        out.push_str(&format!("  \"warn_findings\": {},\n", self.warn_count()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule.name())));
            out.push_str(&format!(
                "\"level\": {}, ",
                json_str(match f.level {
                    Level::Deny => "deny",
                    Level::Warn => "warn",
                })
            ));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> Report {
        Report {
            root: ".".to_string(),
            files_scanned: 3,
            findings: vec![Finding {
                rule: Rule::WallClock,
                level: Level::Deny,
                path: "crates/x/src/a.rs".to_string(),
                line: 7,
                col: 13,
                message: "uses \"Instant\"".to_string(),
            }],
        }
    }

    #[test]
    fn human_format_has_span_and_counts() {
        let r = sample().render_human();
        assert!(
            r.contains("crates/x/src/a.rs:7:13: deny(wall-clock)"),
            "{r}"
        );
        assert!(r.contains("3 file(s) scanned, 1 deny"), "{r}");
    }

    #[test]
    fn json_escapes_and_structures() {
        let j = sample().render_json();
        assert!(j.contains("\"rule\": \"wall-clock\""), "{j}");
        assert!(j.contains("\"line\": 7"), "{j}");
        assert!(j.contains("uses \\\"Instant\\\""), "{j}");
        // Counts present.
        assert!(j.contains("\"deny_findings\": 1"), "{j}");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report {
            root: "x".into(),
            files_scanned: 0,
            findings: vec![],
        };
        let j = r.render_json();
        assert!(j.contains("\"findings\": []"), "{j}");
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let mut r = sample();
        r.findings[0].level = Level::Warn;
        assert_eq!(r.deny_count(), 0);
        r.deny_all();
        assert_eq!(r.deny_count(), 1);
    }
}
