//! A dependency-free recursive-descent parser over the [`lexer`] token
//! stream — just enough syntax to drive semantic passes, in the same
//! hand-rolled spirit as the lexer (no `syn`: the build environment has no
//! crates.io route, and the auditor must not depend on what it audits).
//!
//! The parser recognises the item skeleton of a file (functions, `impl`
//! blocks, trait definitions, enums, consts, inline modules) and, inside
//! every function body, extracts [`BodyFacts`]: call sites, macro
//! invocations, `Enum::Variant` path pairs, index-expression sites, match
//! expressions with their arm patterns, and the message variants armed via
//! `after` / `after_app` / `send_with_timer`. It is deliberately forgiving:
//! anything it does not understand is skipped, never a parse error, because
//! an auditor that dies on one odd file audits nothing. The cost of that
//! forgiveness is borne by the passes, which are written to only act on
//! facts the parser is confident about.
//!
//! [`lexer`]: crate::lexer

use crate::lexer::{Lexed, TokKind, Token};

/// A parsed source file: its item tree.
#[derive(Debug, Clone, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item. Items the passes do not care about (structs, uses, type
/// aliases…) are dropped during parsing.
#[derive(Debug, Clone)]
pub enum Item {
    /// A free function.
    Fn(FnItem),
    /// An `impl` block or a trait definition (trait default methods look
    /// exactly like impl methods to the passes).
    Impl(ImplBlock),
    /// An enum definition with its variant names.
    Enum(EnumDef),
    /// A `const` / `static` with an optionally evaluated integer value.
    Const(ConstDef),
    /// An inline `mod name { … }`.
    Mod(ModDef),
}

/// An inline module.
#[derive(Debug, Clone)]
pub struct ModDef {
    /// Module name.
    pub name: String,
    /// Whether the module (or an enclosing one) is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Items inside the module.
    pub items: Vec<Item>,
}

/// An `impl` block (`impl Ty`, `impl Trait for Ty`) or trait definition.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// The implementing type (last path segment), or the trait name for a
    /// trait definition.
    pub self_ty: String,
    /// The implemented trait's last path segment (`impl Trait for Ty`).
    pub trait_name: Option<String>,
    /// Whether this is a `trait … { }` definition rather than an impl.
    pub is_trait_def: bool,
    /// Associated `type Name = Value;` bindings (first ident of the value).
    pub assoc_types: Vec<(String, String)>,
    /// Methods (and trait default methods) with bodies or signatures.
    pub fns: Vec<FnItem>,
    /// Whether the block (or an enclosing module) is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// 1-based line of the `impl` / `trait` keyword.
    pub line: u32,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in source order.
    pub variants: Vec<String>,
    /// Whether the enum sits in a `#[cfg(test)]` module.
    pub cfg_test: bool,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
}

/// A `const` or `static` item.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// The value if the initializer is a literal integer expression the
    /// evaluator understands (`1 << 40`, `0x100`, `(1 << 32) + 7`…);
    /// `None` for anything it cannot fold.
    pub value: Option<u128>,
    /// 1-based line of the name.
    pub line: u32,
    /// 1-based column of the name.
    pub col: u32,
}

/// A function: free, impl method, or trait default method.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Whether the function (or an enclosing module) is `#[cfg(test)]`
    /// or carries `#[test]`.
    pub cfg_test: bool,
    /// 1-based line of the name.
    pub line: u32,
    /// 1-based column of the name.
    pub col: u32,
    /// Facts extracted from the body (`None` for bodyless trait methods).
    pub facts: Option<BodyFacts>,
}

/// Everything a pass needs to know about one function body.
#[derive(Debug, Clone, Default)]
pub struct BodyFacts {
    /// Number of tokens in the body (between the braces).
    pub tokens: usize,
    /// Call sites: `name(…)`, `recv.name(…)`, `Qual::name(…)`.
    pub calls: Vec<CallSite>,
    /// Macro invocations `name!(…)`.
    pub macros: Vec<Site>,
    /// All `Upper::Upper` path pairs (enum-variant references, in patterns
    /// and expressions alike).
    pub paths: Vec<PathPair>,
    /// `Upper::Upper` pairs appearing inside the argument list of an
    /// `after(…)` / `after_app(…)` / `send_with_timer(…)` call — the
    /// message variants this body arms a timer with.
    pub armed: Vec<PathPair>,
    /// Index-expression sites `expr[…]`, deduplicated per line.
    pub indexes: Vec<Site>,
    /// Match expressions with their arm-pattern facts.
    pub matches: Vec<MatchFacts>,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the ident directly before the `(`).
    pub name: String,
    /// `Qual::name(…)`'s qualifier, if any.
    pub qualifier: Option<String>,
    /// Whether this is a method call (`recv.name(…)`).
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A named site (macro invocation, index expression).
#[derive(Debug, Clone)]
pub struct Site {
    /// Macro name, or `"index"` for index sites.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// An `Enum::Variant` path pair (both segments start uppercase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPair {
    /// Type (enum) segment.
    pub ty: String,
    /// Variant segment.
    pub variant: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Facts about one `match` expression's arms.
#[derive(Debug, Clone, Default)]
pub struct MatchFacts {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// `Enum::Variant` pairs referenced by arm patterns.
    pub arm_pairs: Vec<PathPair>,
    /// Catch-all arms: a bare `_` or a lone lowercase binding pattern.
    pub wildcards: Vec<Site>,
}

/// Parses a lexed file into its item tree.
pub fn parse(lexed: &Lexed) -> Ast {
    let toks = &lexed.tokens;
    let mut p = Parser { toks };
    let (items, _) = p.items(0, toks.len(), false);
    Ast { items }
}

/// Keywords that may directly precede a `[` without making it an index
/// expression (`return [0; 4]`, `match x[0]` is index but `match [a, b]`
/// is not…).
const NON_INDEX_PREV: &[&str] = &[
    "return", "break", "continue", "in", "if", "else", "match", "loop", "while", "for", "move",
    "ref", "mut", "as", "let", "where", "impl", "fn", "const", "static", "type", "enum", "struct",
    "trait", "mod", "pub", "use", "unsafe", "dyn", "box", "await", "yield",
];

/// Calls whose argument lists arm a deferred message (timer) — the pairs
/// inside become [`BodyFacts::armed`].
const ARMING_CALLS: &[&str] = &["after", "after_app", "send_with_timer"];

struct Parser<'a> {
    toks: &'a [Token],
}

impl<'a> Parser<'a> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.toks.get(i) {
            Some(Token {
                kind: TokKind::Punct(c),
                ..
            }) => Some(*c),
            _ => None,
        }
    }

    /// Skips a balanced `< … >` group starting at `i` (which must be `<`).
    /// `->` inside (closure bounds like `Fn() -> T`) is handled; `>>`
    /// closes two levels naturally since puncts are single characters.
    fn skip_angles(&self, mut i: usize, end: usize) -> usize {
        debug_assert_eq!(self.punct_at(i), Some('<'));
        let mut depth = 0i32;
        while i < end {
            match self.punct_at(i) {
                Some('<') => depth += 1,
                // `->` is an arrow, not a close.
                Some('>') if self.punct_at(i.wrapping_sub(1)) != Some('-') => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Skips a balanced delimiter group starting at `i` (which must be the
    /// opening `(`, `[`, or `{`); returns the index just past the closer.
    fn skip_group(&self, mut i: usize, end: usize) -> usize {
        let (open, close) = match self.punct_at(i) {
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            Some('{') => ('{', '}'),
            _ => return i + 1,
        };
        let mut depth = 0i32;
        while i < end {
            match self.punct_at(i) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Scans forward from `i` for the first `{` or `;` at delimiter depth
    /// zero (crossing `(…)` / `[…]` groups whole). Returns its index, or
    /// `end`.
    fn find_body_or_semi(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.punct_at(i) {
                Some('{') | Some(';') => return i,
                Some('(') | Some('[') => i = self.skip_group(i, end),
                _ => i += 1,
            }
        }
        end
    }

    /// Parses an attribute group `#[ … ]` at `i`; returns (next index,
    /// is_cfg_test_or_test).
    fn attribute(&self, i: usize) -> (usize, bool) {
        // cursor on '#'; optional '!' for inner attributes.
        let mut j = i + 1;
        if self.punct_at(j) == Some('!') {
            j += 1;
        }
        if self.punct_at(j) != Some('[') {
            return (i + 1, false);
        }
        let close = self.skip_group(j, self.toks.len());
        let mut test = false;
        let mut saw_cfg = false;
        for k in j + 1..close.saturating_sub(1) {
            if let Some(id) = self.ident_at(k) {
                if id == "cfg" {
                    saw_cfg = true;
                }
                if id == "test" && (saw_cfg || k == j + 1) {
                    test = true;
                }
            }
        }
        (close, test)
    }

    /// Parses items in `[i, end)`; stops at `end` or an unmatched `}`.
    fn items(&mut self, mut i: usize, end: usize, in_test: bool) -> (Vec<Item>, usize) {
        let mut items = Vec::new();
        while i < end {
            // Unmatched close brace: end of the enclosing block.
            if self.punct_at(i) == Some('}') {
                return (items, i);
            }
            // Attributes (possibly several).
            let mut cfg_test = in_test;
            while self.punct_at(i) == Some('#') {
                let (next, test) = self.attribute(i);
                cfg_test |= test;
                i = next;
            }
            // Visibility.
            if self.ident_at(i) == Some("pub") {
                i += 1;
                if self.punct_at(i) == Some('(') {
                    i = self.skip_group(i, end);
                }
            }
            match self.ident_at(i) {
                Some("unsafe") | Some("async") | Some("extern") | Some("default") => {
                    i += 1;
                    continue; // qualifier before fn/impl/trait
                }
                Some("fn") => {
                    let (item, next) = self.fn_item(i, end, cfg_test);
                    if let Some(f) = item {
                        items.push(Item::Fn(f));
                    }
                    i = next;
                }
                Some("impl") => {
                    let (item, next) = self.impl_block(i, end, cfg_test, false);
                    if let Some(b) = item {
                        items.push(Item::Impl(b));
                    }
                    i = next;
                }
                Some("trait") => {
                    let (item, next) = self.impl_block(i, end, cfg_test, true);
                    if let Some(b) = item {
                        items.push(Item::Impl(b));
                    }
                    i = next;
                }
                Some("enum") => {
                    let (item, next) = self.enum_def(i, end, cfg_test);
                    if let Some(e) = item {
                        items.push(Item::Enum(e));
                    }
                    i = next;
                }
                Some("const") | Some("static") => {
                    let (item, next) = self.const_def(i, end);
                    if let Some(c) = item {
                        items.push(Item::Const(c));
                    }
                    i = next;
                }
                Some("mod") => {
                    let name = self.ident_at(i + 1).unwrap_or("").to_string();
                    let at = self.find_body_or_semi(i + 2, end);
                    if self.punct_at(at) == Some('{') {
                        let (inner, stop) = self.items(at + 1, end, cfg_test);
                        items.push(Item::Mod(ModDef {
                            name,
                            cfg_test,
                            items: inner,
                        }));
                        i = stop + 1;
                    } else {
                        i = at + 1; // `mod name;` — out-of-line, own file
                    }
                }
                _ => {
                    // struct / use / type / macro invocation / stray token:
                    // skip to the next `;` or past a balanced `{ … }`.
                    let at = self.find_body_or_semi(i + 1, end);
                    if self.punct_at(at) == Some('{') {
                        i = self.skip_group(at, end);
                        // struct-with-braces has no trailing `;`…
                        if self.punct_at(i) == Some(';') {
                            i += 1;
                        }
                    } else {
                        i = at + 1;
                    }
                }
            }
        }
        (items, i)
    }

    /// `fn name <generics>? ( params ) -> ret? where…? { body }` or `;`.
    /// Cursor on `fn`.
    fn fn_item(&mut self, i: usize, end: usize, cfg_test: bool) -> (Option<FnItem>, usize) {
        let name_tok = match self.toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.clone(),
            _ => return (None, i + 1),
        };
        let mut j = i + 2;
        if self.punct_at(j) == Some('<') {
            j = self.skip_angles(j, end);
        }
        if self.punct_at(j) == Some('(') {
            j = self.skip_group(j, end);
        }
        let at = self.find_body_or_semi(j, end);
        let (facts, next) = if self.punct_at(at) == Some('{') {
            let close = self.skip_group(at, end);
            let facts = scan_body(self, at + 1, close.saturating_sub(1));
            (Some(facts), close)
        } else {
            (None, at + 1) // bodyless trait method
        };
        (
            Some(FnItem {
                name: name_tok.text,
                cfg_test,
                line: name_tok.line,
                col: name_tok.col,
                facts,
            }),
            next,
        )
    }

    /// Reads a type path `a::b::C<…>` at `i`; returns (last segment before
    /// generics, index past the path including a trailing `<…>` group).
    fn type_path(&self, mut i: usize, end: usize) -> (String, usize) {
        let mut last = String::new();
        while let Some(id) = self.ident_at(i) {
            last = id.to_string();
            i += 1;
            if self.punct_at(i) == Some('<') {
                i = self.skip_angles(i, end);
            }
            if self.punct_at(i) == Some(':') && self.punct_at(i + 1) == Some(':') {
                i += 2;
            } else {
                break;
            }
        }
        (last, i)
    }

    /// `impl<…>? Path (for Path)? where…? { … }` or `trait Name { … }`.
    /// Cursor on `impl` / `trait`.
    fn impl_block(
        &mut self,
        i: usize,
        end: usize,
        cfg_test: bool,
        is_trait: bool,
    ) -> (Option<ImplBlock>, usize) {
        let line = self.toks[i].line;
        let mut j = i + 1;
        if self.punct_at(j) == Some('<') {
            j = self.skip_angles(j, end);
        }
        let (first, after_first) = self.type_path(j, end);
        if first.is_empty() {
            return (None, j + 1);
        }
        j = after_first;
        let (self_ty, trait_name) = if !is_trait && self.ident_at(j) == Some("for") {
            let (second, after) = self.type_path(j + 1, end);
            j = after;
            (second, Some(first))
        } else {
            (first, None)
        };
        let open = self.find_body_or_semi(j, end);
        if self.punct_at(open) != Some('{') {
            return (None, open + 1);
        }
        let close = self.skip_group(open, end);
        // Parse the block's items; keep fns, assoc types, ignore the rest.
        let mut fns = Vec::new();
        let mut assoc_types = Vec::new();
        let mut k = open + 1;
        let inner_end = close.saturating_sub(1);
        while k < inner_end {
            let mut item_test = cfg_test;
            while self.punct_at(k) == Some('#') {
                let (next, test) = self.attribute(k);
                item_test |= test;
                k = next;
            }
            if self.ident_at(k) == Some("pub") {
                k += 1;
                if self.punct_at(k) == Some('(') {
                    k = self.skip_group(k, inner_end);
                }
            }
            match self.ident_at(k) {
                Some("unsafe") | Some("async") | Some("default") | Some("extern") => k += 1,
                Some("fn") => {
                    let (item, next) = self.fn_item(k, inner_end, item_test);
                    if let Some(f) = item {
                        fns.push(f);
                    }
                    k = next;
                }
                Some("type") => {
                    // `type Name<…>? : bounds? (= First…)? ;`
                    let name = self.ident_at(k + 1).unwrap_or("").to_string();
                    let semi = self.find_body_or_semi(k + 2, inner_end);
                    let mut value = String::new();
                    for m in k + 2..semi {
                        if self.punct_at(m) == Some('=') {
                            if let Some(id) = self.ident_at(m + 1) {
                                value = id.to_string();
                            }
                            break;
                        }
                    }
                    if !name.is_empty() && !value.is_empty() {
                        assoc_types.push((name, value));
                    }
                    k = semi + 1;
                }
                _ => {
                    let at = self.find_body_or_semi(k + 1, inner_end);
                    if self.punct_at(at) == Some('{') {
                        k = self.skip_group(at, inner_end);
                    } else {
                        k = at + 1;
                    }
                }
            }
        }
        (
            Some(ImplBlock {
                self_ty,
                trait_name,
                is_trait_def: is_trait,
                assoc_types,
                fns,
                cfg_test,
                line,
            }),
            close,
        )
    }

    /// `enum Name<…>? { Variant(…)?, … }`. Cursor on `enum`.
    fn enum_def(&mut self, i: usize, end: usize, cfg_test: bool) -> (Option<EnumDef>, usize) {
        let line = self.toks[i].line;
        let name = match self.ident_at(i + 1) {
            Some(n) => n.to_string(),
            None => return (None, i + 1),
        };
        let open = self.find_body_or_semi(i + 2, end);
        if self.punct_at(open) != Some('{') {
            return (None, open + 1);
        }
        let close = self.skip_group(open, end);
        let mut variants = Vec::new();
        let mut k = open + 1;
        let inner_end = close.saturating_sub(1);
        let mut expect_variant = true;
        while k < inner_end {
            while self.punct_at(k) == Some('#') {
                let (next, _) = self.attribute(k);
                k = next;
            }
            if expect_variant {
                if let Some(v) = self.ident_at(k) {
                    variants.push(v.to_string());
                    expect_variant = false;
                    k += 1;
                    continue;
                }
            }
            match self.punct_at(k) {
                Some(',') => {
                    expect_variant = true;
                    k += 1;
                }
                Some('(') | Some('{') | Some('[') => k = self.skip_group(k, inner_end),
                _ => k += 1, // discriminant `= expr` etc.
            }
        }
        (
            Some(EnumDef {
                name,
                variants,
                cfg_test,
                line,
            }),
            close,
        )
    }

    /// `const NAME : Ty = expr ;`. Cursor on `const` / `static`.
    fn const_def(&mut self, i: usize, end: usize) -> (Option<ConstDef>, usize) {
        let mut j = i + 1;
        if self.ident_at(j) == Some("mut") {
            j += 1;
        }
        let name_tok = match self.toks.get(j) {
            Some(t) if t.kind == TokKind::Ident => t.clone(),
            _ => return (None, i + 1),
        };
        let semi = self.find_body_or_semi(j + 1, end);
        if self.punct_at(semi) == Some('{') {
            // `const fn` already handled by the `fn` arm; a brace here means
            // something unexpected — bail past it.
            return (None, self.skip_group(semi, end));
        }
        // Find the `=` at depth zero, then evaluate the tail.
        let mut eq = None;
        let mut m = j + 1;
        while m < semi {
            match self.punct_at(m) {
                Some('=') => {
                    eq = Some(m);
                    break;
                }
                Some('(') | Some('[') => m = self.skip_group(m, semi),
                Some('<') => m = self.skip_angles(m, semi),
                _ => m += 1,
            }
        }
        let value = eq.and_then(|e| eval_const(&self.toks[e + 1..semi]));
        (
            Some(ConstDef {
                name: name_tok.text,
                value,
                line: name_tok.line,
                col: name_tok.col,
            }),
            semi + 1,
        )
    }
}

/// Evaluates a literal integer expression: `Int`, `(e)`, `e << e`,
/// `e >> e`, `e | e`, `e + e`, `e - e`, `e * e`, left-associative, no
/// precedence beyond shifts binding looser than `*`. Anything else (an
/// ident, a call) yields `None`.
fn eval_const(toks: &[Token]) -> Option<u128> {
    /// A binary operator: applies to (lhs, rhs), `None` on overflow.
    type BinOp = fn(u128, u128) -> Option<u128>;
    // Tokenize into (value | op) atoms, recursing into parens.
    fn parse_expr(toks: &[Token], i: &mut usize) -> Option<u128> {
        let mut acc = parse_term(toks, i)?;
        while *i < toks.len() {
            let (op, skip): (BinOp, usize) = match punct(toks, *i) {
                Some('<') if punct(toks, *i + 1) == Some('<') => {
                    (|a, b| a.checked_shl(b as u32), 2)
                }
                Some('>') if punct(toks, *i + 1) == Some('>') => {
                    (|a, b| a.checked_shr(b as u32), 2)
                }
                Some('|') => (|a, b| Some(a | b), 1),
                Some('+') => (u128::checked_add, 1),
                Some('-') => (u128::checked_sub, 1),
                Some('*') => (u128::checked_mul, 1),
                _ => return Some(acc),
            };
            *i += skip;
            let rhs = parse_term(toks, i)?;
            acc = op(acc, rhs)?;
        }
        Some(acc)
    }
    fn parse_term(toks: &[Token], i: &mut usize) -> Option<u128> {
        match toks.get(*i) {
            Some(t) if t.kind == TokKind::Int => {
                *i += 1;
                parse_int(&t.text)
            }
            Some(Token {
                kind: TokKind::Punct('('),
                ..
            }) => {
                *i += 1;
                let v = parse_expr(toks, i)?;
                if punct(toks, *i) == Some(')') {
                    *i += 1;
                    Some(v)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
    fn punct(toks: &[Token], i: usize) -> Option<char> {
        match toks.get(i) {
            Some(Token {
                kind: TokKind::Punct(c),
                ..
            }) => Some(*c),
            _ => None,
        }
    }
    let mut i = 0;
    let v = parse_expr(toks, &mut i)?;
    // Trailing tokens (e.g. `as u64`) are fine as long as they are a cast.
    if i < toks.len() {
        let rest_ok = toks[i..]
            .iter()
            .all(|t| t.kind == TokKind::Ident || matches!(t.kind, TokKind::Punct(_)));
        if !rest_ok {
            return None;
        }
        // Only accept `as Ty` tails; anything else means we misparsed.
        if toks.get(i).map(|t| t.text.as_str()) != Some("as") {
            return None;
        }
    }
    Some(v)
}

/// Parses an integer literal's text (`1_000u64`, `0x1F`) into a value.
fn parse_int(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x") {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix (u8..u128, i8.., usize…).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

/// Whether an identifier starts uppercase (type/variant shaped).
fn upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Extracts [`BodyFacts`] from the token range `[start, end)` (the inside
/// of a function body).
fn scan_body(p: &Parser, start: usize, end: usize) -> BodyFacts {
    let toks = p.toks;
    let mut f = BodyFacts {
        tokens: end.saturating_sub(start),
        ..BodyFacts::default()
    };
    let mut last_index_line = 0u32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match &t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
                if p.punct_at(i + 1) == Some('!')
                    && matches!(p.punct_at(i + 2), Some('(') | Some('[') | Some('{'))
                {
                    f.macros.push(Site {
                        name: name.to_string(),
                        line: t.line,
                        col: t.col,
                    });
                    i += 2; // keep scanning inside the macro's arguments
                    continue;
                }
                // `A::B` path pair (both uppercase → enum-variant shaped).
                if p.punct_at(i + 1) == Some(':') && p.punct_at(i + 2) == Some(':') {
                    if let Some(second) = p.ident_at(i + 3) {
                        let second = second.to_string();
                        if upper(name) && upper(&second) {
                            f.paths.push(PathPair {
                                ty: name.to_string(),
                                variant: second.clone(),
                                line: t.line,
                                col: t.col,
                            });
                        }
                        // `Qual::name(…)` call: record here and consume the
                        // callee ident so it is not re-recorded unqualified.
                        if p.punct_at(i + 4) == Some('(') {
                            f.calls.push(CallSite {
                                name: second,
                                qualifier: Some(name.to_string()),
                                method: false,
                                line: toks[i + 3].line,
                                col: toks[i + 3].col,
                            });
                            i += 4;
                        } else {
                            i += 3; // land on the second ident: path chains
                        }
                        continue;
                    }
                }
                // Plain or method call `name(…)`.
                if p.punct_at(i + 1) == Some('(') && name != "matches" {
                    let method = p.punct_at(i.wrapping_sub(1)) == Some('.');
                    // Skip `if`/`while`/`for`/`match` heads: `(cond)` is
                    // not a call on the keyword.
                    if !NON_INDEX_PREV.contains(&name) {
                        f.calls.push(CallSite {
                            name: name.to_string(),
                            qualifier: None,
                            method,
                            line: t.line,
                            col: t.col,
                        });
                        // Arming call: collect pairs inside the argument list.
                        if ARMING_CALLS.contains(&name) {
                            let close = p.skip_group(i + 1, end);
                            let mut a = i + 2;
                            while a + 3 < close {
                                if p.punct_at(a + 1) == Some(':') && p.punct_at(a + 2) == Some(':')
                                {
                                    if let (Some(x), Some(y)) = (p.ident_at(a), p.ident_at(a + 3)) {
                                        if upper(x) && upper(y) {
                                            f.armed.push(PathPair {
                                                ty: x.to_string(),
                                                variant: y.to_string(),
                                                line: toks[a].line,
                                                col: toks[a].col,
                                            });
                                        }
                                    }
                                }
                                a += 1;
                            }
                        }
                    }
                }
                // Match expression: record arm facts via lookahead without
                // consuming (calls/indexes inside arms are still seen by
                // this linear walk).
                if name == "match" && p.punct_at(i.wrapping_sub(1)) != Some('.') {
                    if let Some(m) = match_facts(p, i, end) {
                        f.matches.push(m);
                    }
                }
                i += 1;
            }
            TokKind::Punct('[') => {
                // Index expression: `[` directly after an ident (non-keyword),
                // `)`, or `]`.
                let prev = i.wrapping_sub(1);
                let is_index = match toks.get(prev) {
                    Some(pt) if pt.kind == TokKind::Ident => {
                        i > start && !NON_INDEX_PREV.contains(&pt.text.as_str())
                    }
                    Some(Token {
                        kind: TokKind::Punct(c),
                        ..
                    }) => i > start && (*c == ')' || *c == ']'),
                    _ => false,
                };
                if is_index && t.line != last_index_line {
                    last_index_line = t.line;
                    f.indexes.push(Site {
                        name: "index".to_string(),
                        line: t.line,
                        col: t.col,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    f
}

/// Lookahead parse of one `match` expression's arms. Cursor on `match`.
fn match_facts(p: &Parser, i: usize, end: usize) -> Option<MatchFacts> {
    let toks = p.toks;
    // Scrutinee: scan to the `{` at depth zero. Struct literals cannot
    // appear unparenthesized in a match scrutinee, so the first depth-zero
    // `{` opens the arm block.
    let mut j = i + 1;
    while j < end {
        match p.punct_at(j) {
            Some('{') => break,
            Some('(') | Some('[') => j = p.skip_group(j, end),
            _ => j += 1,
        }
    }
    if j >= end {
        return None;
    }
    let close = p.skip_group(j, end);
    let body_end = close.saturating_sub(1);
    let mut m = MatchFacts {
        line: toks[i].line,
        ..MatchFacts::default()
    };
    let mut k = j + 1;
    while k < body_end {
        // ---- pattern: tokens until `=>` at depth zero ----
        let pat_start = k;
        let mut arrow = None;
        while k < body_end {
            match p.punct_at(k) {
                Some('=') if p.punct_at(k + 1) == Some('>') => {
                    arrow = Some(k);
                    break;
                }
                Some('(') | Some('[') | Some('{') => k = p.skip_group(k, body_end),
                Some('|') => k += 1,
                _ => k += 1,
            }
        }
        let arrow = match arrow {
            Some(a) => a,
            None => break,
        };
        // Guard splits pattern from condition; pairs in either are fine to
        // record (a guard referencing a variant still "handles" nothing,
        // but guards are rare and never uppercase-pair shaped here).
        let mut pat_idents = 0usize;
        let mut saw_pair = false;
        let mut has_guard = false;
        let mut q = pat_start;
        while q < arrow {
            if p.ident_at(q) == Some("if") {
                has_guard = true;
            }
            if toks[q].kind == TokKind::Ident {
                pat_idents += 1;
            }
            if p.punct_at(q + 1) == Some(':') && p.punct_at(q + 2) == Some(':') {
                if let (Some(a), Some(b)) = (p.ident_at(q), p.ident_at(q + 3)) {
                    if upper(a) && upper(b) {
                        saw_pair = true;
                        m.arm_pairs.push(PathPair {
                            ty: a.to_string(),
                            variant: b.to_string(),
                            line: toks[q].line,
                            col: toks[q].col,
                        });
                        q += 4;
                        continue;
                    }
                }
            }
            match p.punct_at(q) {
                Some('(') | Some('[') | Some('{') => q = p.skip_group(q, arrow),
                _ => q += 1,
            }
        }
        // Catch-all arm: a bare `_` or a lone binding ident with no pair,
        // no guard, no structure.
        let plain = arrow == pat_start + 1
            && toks[pat_start].kind == TokKind::Ident
            && !saw_pair
            && !has_guard
            && pat_idents == 1;
        if plain {
            m.wildcards.push(Site {
                name: toks[pat_start].text.clone(),
                line: toks[pat_start].line,
                col: toks[pat_start].col,
            });
        }
        // ---- arm body: `{…}` or expression to `,` at depth zero ----
        k = arrow + 2;
        if p.punct_at(k) == Some('{') {
            k = p.skip_group(k, body_end);
            if p.punct_at(k) == Some(',') {
                k += 1;
            }
        } else {
            while k < body_end {
                match p.punct_at(k) {
                    Some(',') => {
                        k += 1;
                        break;
                    }
                    Some('(') | Some('[') | Some('{') => k = p.skip_group(k, body_end),
                    _ => k += 1,
                }
            }
        }
    }
    Some(m)
}

/// Flattens an item tree into all functions with their impl context:
/// `(impl block or None, fn)`. Modules are walked recursively; the
/// `cfg_test` flags already account for enclosing `#[cfg(test)]` modules.
pub fn all_fns(ast: &Ast) -> Vec<(Option<&ImplBlock>, &FnItem)> {
    fn walk<'a>(items: &'a [Item], out: &mut Vec<(Option<&'a ImplBlock>, &'a FnItem)>) {
        for it in items {
            match it {
                Item::Fn(f) => out.push((None, f)),
                Item::Impl(b) => {
                    for f in &b.fns {
                        out.push((Some(b), f));
                    }
                }
                Item::Mod(m) => walk(&m.items, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&ast.items, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    #[test]
    fn parses_fn_and_calls() {
        let ast = parse_src(
            "fn work(x: &mut Vec<u32>) -> usize {\n\
                 let y = helper(x.len());\n\
                 x.push(3);\n\
                 Svc::route(y)\n\
             }",
        );
        let fns = all_fns(&ast);
        assert_eq!(fns.len(), 1);
        let facts = fns[0].1.facts.as_ref().unwrap();
        let names: Vec<&str> = facts.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"push"));
        assert!(names.contains(&"route"));
        let route = facts.calls.iter().find(|c| c.name == "route").unwrap();
        assert_eq!(route.qualifier.as_deref(), Some("Svc"));
        let push = facts.calls.iter().find(|c| c.name == "push").unwrap();
        assert!(push.method);
    }

    #[test]
    fn parses_impl_trait_for_type() {
        let ast = parse_src(
            "impl<S: Strategy> CoordinationStrategy for AggAsyncStrategy<S> {\n\
                 type App = AggApp;\n\
                 fn on_reply(&mut self) { self.pump(); }\n\
             }",
        );
        let b = match &ast.items[0] {
            Item::Impl(b) => b,
            other => panic!("expected impl, got {other:?}"),
        };
        assert_eq!(b.self_ty, "AggAsyncStrategy");
        assert_eq!(b.trait_name.as_deref(), Some("CoordinationStrategy"));
        assert_eq!(
            b.assoc_types,
            vec![("App".to_string(), "AggApp".to_string())]
        );
        assert_eq!(b.fns.len(), 1);
        assert_eq!(b.fns[0].name, "on_reply");
    }

    #[test]
    fn parses_trait_default_methods() {
        let ast = parse_src(
            "pub trait CoordinationStrategy {\n\
                 type App: Clone;\n\
                 fn on_start(&mut self);\n\
                 fn on_give_up(&mut self, key: u64) { unreachable!(\"no give-up\") }\n\
             }",
        );
        let b = match &ast.items[0] {
            Item::Impl(b) => b,
            other => panic!("expected trait block, got {other:?}"),
        };
        assert!(b.is_trait_def);
        assert_eq!(b.self_ty, "CoordinationStrategy");
        assert_eq!(b.fns.len(), 2);
        assert!(b.fns[0].facts.is_none()); // bodyless decl
        let give_up = &b.fns[1];
        let facts = give_up.facts.as_ref().unwrap();
        assert!(facts.macros.iter().any(|m| m.name == "unreachable"));
    }

    #[test]
    fn parses_enum_variants() {
        let ast = parse_src(
            "pub enum RtMsg<A, Q, P> {\n\
                 App(A),\n\
                 Req { key: u64, attempt: u32, payload: Q },\n\
                 Rep { key: u64, attempt: u32, payload: P },\n\
                 Timeout { key: u64, attempt: u32 },\n\
             }",
        );
        let e = match &ast.items[0] {
            Item::Enum(e) => e,
            other => panic!("expected enum, got {other:?}"),
        };
        assert_eq!(e.name, "RtMsg");
        assert_eq!(e.variants, vec!["App", "Req", "Rep", "Timeout"]);
    }

    #[test]
    fn evaluates_const_expressions() {
        let ast = parse_src(
            "pub const TAKEOVER_KEY_BASE: u64 = 1 << 40;\n\
             pub(crate) const BATCH_KEY_BASE: u64 = 1 << 32;\n\
             const MIX: u64 = (1 << 8) + 0x10;\n\
             const CAST: u64 = 7 as u64;\n\
             const OPAQUE: u64 = helper();",
        );
        let consts: Vec<(&str, Option<u128>)> = ast
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Const(c) => Some((c.name.as_str(), c.value)),
                _ => None,
            })
            .collect();
        assert_eq!(consts[0], ("TAKEOVER_KEY_BASE", Some(1 << 40)));
        assert_eq!(consts[1], ("BATCH_KEY_BASE", Some(1 << 32)));
        assert_eq!(consts[2], ("MIX", Some(272)));
        assert_eq!(consts[3], ("CAST", Some(7)));
        assert_eq!(consts[4], ("OPAQUE", None));
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let ast = parse_src(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { data[0]; }\n\
                 #[test]\n\
                 fn t() { helper(); }\n\
             }",
        );
        let fns = all_fns(&ast);
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].1.cfg_test);
        assert!(fns[1].1.cfg_test);
        assert!(fns[2].1.cfg_test);
    }

    #[test]
    fn match_arms_and_wildcards() {
        let ast = parse_src(
            "fn dispatch(msg: RtMsg) {\n\
                 match msg {\n\
                     RtMsg::App(a) => go(a),\n\
                     RtMsg::Req { key, .. } => serve(key),\n\
                     _ => {}\n\
                 }\n\
             }",
        );
        let fns = all_fns(&ast);
        let facts = fns[0].1.facts.as_ref().unwrap();
        assert_eq!(facts.matches.len(), 1);
        let m = &facts.matches[0];
        let pairs: Vec<&str> = m.arm_pairs.iter().map(|p| p.variant.as_str()).collect();
        assert_eq!(pairs, vec!["App", "Req"]);
        assert_eq!(m.wildcards.len(), 1);
        assert_eq!(m.wildcards[0].name, "_");
    }

    #[test]
    fn binding_catch_all_is_a_wildcard() {
        let ast = parse_src(
            "fn f(x: AggApp) { match x { AggApp::Poll => poll(), other => drop(other) } }",
        );
        let facts = all_fns(&ast)[0].1.facts.as_ref().unwrap();
        assert_eq!(facts.matches[0].wildcards.len(), 1);
        assert_eq!(facts.matches[0].wildcards[0].name, "other");
    }

    #[test]
    fn armed_variants_in_timer_calls() {
        let ast = parse_src(
            "fn on_start(&mut self, rt: &mut RtCtx) {\n\
                 rt.after_app(rt.poll_interval(), AsyncApp::Poll);\n\
                 ctx.send_with_timer(dst, bytes, req, delay, RtMsg::Timeout { key, attempt });\n\
             }",
        );
        let facts = all_fns(&ast)[0].1.facts.as_ref().unwrap();
        let armed: Vec<(&str, &str)> = facts
            .armed
            .iter()
            .map(|p| (p.ty.as_str(), p.variant.as_str()))
            .collect();
        assert!(armed.contains(&("AsyncApp", "Poll")));
        assert!(armed.contains(&("RtMsg", "Timeout")));
    }

    #[test]
    fn index_sites_detected_not_array_literals() {
        let ast = parse_src(
            "fn f(xs: &[u32], m: &Map) -> u32 {\n\
                 let a = [0u32; 4];\n\
                 let b = vec![1, 2];\n\
                 xs[0] + self.ledger[1]\n\
             }",
        );
        let facts = all_fns(&ast)[0].1.facts.as_ref().unwrap();
        // `[0u32; 4]` after `=` and `vec![…]` must not count; `xs[0]` and
        // `ledger[1]` share no line with them.
        assert_eq!(facts.indexes.len(), 1); // deduped: both on line 4
        assert_eq!(facts.indexes[0].line, 4);
    }

    #[test]
    fn nested_generics_and_where_clauses() {
        let ast = parse_src(
            "impl<A: Clone, Q: Clone, P: Clone> RankRuntime<A, Q, P>\n\
             where A: Send {\n\
                 fn route(&mut self, v: Vec<Arc<Mutex<BTreeMap<u64, Q>>>>) -> Option<P> {\n\
                     self.inner.get(0)\n\
                 }\n\
             }",
        );
        let b = match &ast.items[0] {
            Item::Impl(b) => b,
            other => panic!("expected impl, got {other:?}"),
        };
        assert_eq!(b.self_ty, "RankRuntime");
        assert!(b.trait_name.is_none());
        assert_eq!(b.fns.len(), 1);
        assert_eq!(b.fns[0].name, "route");
    }
}
