//! Workspace walking and rule scoping: which files are audited, and which
//! rules apply where.
//!
//! The determinism contract is strongest where nondeterminism corrupts
//! results silently — the simulator and the coordination/accounting code —
//! and deliberately looser where wall-clock access is the *point*:
//!
//! * `crates/sim`, `crates/core`, `crates/overlap` (the DES, the two
//!   coordination codes, the overlap pipeline): **all** rules;
//! * every other `crates/*/src` tree and the root `src/`: all rules except
//!   `unordered-collections`/`float-fold-order` (those are hot-path/
//!   accounting rules) — so `Instant`, `std::env` and ambient RNG still
//!   need a reasoned waiver anywhere they appear;
//! * `crates/bench` (the experiment harness): exempt — its job is to parse
//!   CLI args, read result-directory overrides from the environment and
//!   time real executions. Only annotation syntax is checked there;
//! * `vendor/`, `target/`, `tests/` directories, fixtures: not walked.
//!   Integration tests may use hash collections for assertions;
//!   in-source `#[cfg(test)]` modules, by contrast, ARE audited (they sit
//!   in the same files as the hot paths and rot together).

use crate::lexer;
use crate::report::Report;
use crate::rules::{self, Rule, AUDIT_RULES};
use std::path::{Path, PathBuf};

/// Path prefixes (relative, `/`-separated) where the full contract holds.
const DETERMINISM_CORE: [&str; 3] = ["crates/sim/src/", "crates/core/src/", "crates/overlap/src/"];

/// Crates exempt from audit rules (annotation syntax still checked).
const EXEMPT: [&str; 1] = ["crates/bench/"];

/// The rules that apply to a workspace-relative path (empty = only
/// annotation-syntax checking).
pub fn rules_for(rel: &str) -> Vec<Rule> {
    if EXEMPT.iter().any(|p| rel.starts_with(p)) {
        return Vec::new();
    }
    if DETERMINISM_CORE.iter().any(|p| rel.starts_with(p)) {
        return AUDIT_RULES.to_vec();
    }
    vec![Rule::WallClock, Rule::AmbientEnv, Rule::AmbientRng]
}

/// Collects the `.rs` files to audit under `root`: `src/` and
/// `crates/*/src/`, skipping `vendor/`, `target/` and any `tests/`
/// directory. Returned paths are sorted for deterministic reports.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        walk_dir(&top_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                walk_dir(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "tests" || name == "target" || name == "vendor" {
                continue;
            }
            walk_dir(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans one source string as if it lived at `rel_path`, applying the
/// scope rules. Exposed for tests and editor integrations.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<rules::Finding> {
    let lexed = lexer::lex(source);
    let mut applicable = rules_for(rel_path);
    applicable.push(Rule::BadAnnotation);
    rules::scan(rel_path, &lexed, &applicable)
}

/// Scans the whole workspace under `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(f)?;
        findings.extend(scan_source(&rel, &source));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    Ok(Report {
        root: root.to_string_lossy().into_owned(),
        files_scanned: files.len(),
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_full_in_determinism_core() {
        let r = rules_for("crates/sim/src/engine.rs");
        assert_eq!(r.len(), AUDIT_RULES.len());
        assert!(r.contains(&Rule::UnorderedCollections));
    }

    #[test]
    fn scope_partial_elsewhere() {
        let r = rules_for("crates/align/src/batch.rs");
        assert!(!r.contains(&Rule::UnorderedCollections));
        assert!(r.contains(&Rule::WallClock));
        let root = rules_for("src/lib.rs");
        assert!(root.contains(&Rule::AmbientEnv));
    }

    #[test]
    fn bench_exempt() {
        assert!(rules_for("crates/bench/src/lib.rs").is_empty());
    }

    #[test]
    fn scan_source_applies_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(scan_source("crates/sim/src/x.rs", src).len(), 1);
        assert!(scan_source("crates/align/src/x.rs", src).is_empty());
        assert!(scan_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn bad_annotations_checked_even_when_exempt() {
        let src = "// gnb-lint: allow(nope)\nfn main() {}";
        let f = scan_source("crates/bench/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::BadAnnotation);
    }

    #[test]
    fn workspace_scan_runs_on_this_repo() {
        // CARGO_MANIFEST_DIR = crates/analyze → repo root is ../..
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = scan_workspace(&root).expect("scan");
        assert!(report.files_scanned > 50, "saw {}", report.files_scanned);
    }
}
