//! Workspace walking, rule scoping, and the full scan pipeline
//! (lex → parse → index → passes → waiver application → IDs).
//!
//! The determinism contract is strongest where nondeterminism corrupts
//! results silently — the simulator and the coordination/accounting code —
//! and deliberately looser where wall-clock access is the *point*:
//!
//! * `crates/sim`, `crates/core`, `crates/overlap` (the DES, the two
//!   coordination codes, the overlap pipeline): **all** rules, with
//!   `float-fold-order` upgraded from warn to deny;
//! * every other `crates/*/src` tree, the root `src/`, `tests/` and
//!   `examples/`: all rules except `unordered-collections`/
//!   `float-fold-order` (those are hot-path/accounting rules) — so
//!   `Instant`, `std::env` and ambient RNG still need a reasoned waiver
//!   anywhere they appear;
//! * `crates/bench` (the experiment harness): exempt — its job is to parse
//!   CLI args, read result-directory overrides from the environment and
//!   time real executions. Only annotation syntax is checked there;
//! * `vendor/`, `target/`, `fixtures/`, `golden/`: not walked (fixture
//!   files contain deliberate violations; golden dirs hold data).
//!
//! The semantic passes ([`crate::passes`]) audit `crates/core/src` and
//! `crates/sim/src` — the protocol and recovery surface. Integration
//! tests and examples are outside that scope (their mock `Program` impls
//! are not protocol code), but their token-level hygiene is checked.
//!
//! Waiver hygiene runs last: any waiver that suppressed nothing, for a
//! rule that is actually in scope at its path, is an `unused-waiver` deny
//! finding. Out-of-scope waivers (e.g. in the exempt bench crate) are
//! reported too — a waiver where no rule applies is equally rotten.

use crate::index::SymbolIndex;
use crate::lexer;
use crate::parser::{self, Ast};
use crate::passes;
use crate::report::{assign_ids, Report};
use crate::rules::{self, Finding, Level, Rule, AUDIT_RULES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Path prefixes (relative, `/`-separated) where the full contract holds.
const DETERMINISM_CORE: [&str; 3] = ["crates/sim/src/", "crates/core/src/", "crates/overlap/src/"];

/// Path prefixes the semantic passes audit: the protocol + recovery
/// surface the chaos suites exercise.
const SEMANTIC_SCOPE: [&str; 2] = ["crates/core/src/", "crates/sim/src/"];

/// Crates exempt from audit rules (annotation syntax still checked).
const EXEMPT: [&str; 1] = ["crates/bench/"];

/// The one module allowed to use threading primitives: the conservative-
/// parallel engine, whose worker shards communicate by value over channels
/// and whose every global effect goes through a deterministic merge-replay
/// (see its module docs). `thread-primitives` is out of scope here — and
/// *only* here — so any new concurrency elsewhere in the determinism core
/// needs a reasoned waiver and shows up in the baseline ratchet.
const APPROVED_PARALLEL: [&str; 1] = ["crates/sim/src/par.rs"];

/// The rules that apply to a workspace-relative path (empty = only
/// annotation-syntax checking).
pub fn rules_for(rel: &str) -> Vec<Rule> {
    if EXEMPT.iter().any(|p| rel.starts_with(p)) {
        return Vec::new();
    }
    if DETERMINISM_CORE.iter().any(|p| rel.starts_with(p)) {
        let mut rules = AUDIT_RULES.to_vec();
        if APPROVED_PARALLEL.contains(&rel) {
            rules.retain(|r| *r != Rule::ThreadPrimitives);
        }
        return rules;
    }
    vec![Rule::WallClock, Rule::AmbientEnv, Rule::AmbientRng]
}

/// Whether the semantic passes audit definitions at this path.
pub fn semantic_scope(rel: &str) -> bool {
    SEMANTIC_SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Whether `rel` sits in the determinism core (full contract,
/// `float-fold-order` at deny).
pub fn determinism_core(rel: &str) -> bool {
    DETERMINISM_CORE.iter().any(|p| rel.starts_with(p))
}

/// Collects the `.rs` files to audit under `root`: `src/` and
/// `crates/*/src/`, plus `tests/`, `examples/` and `crates/*/tests/`
/// (integration tests and examples carry determinism hazards too — a
/// wall-clock read in a chaos test flakes just as hard). Skips `target/`,
/// `vendor/`, `fixtures/` (deliberate violations) and `golden/` (data).
/// Returned paths are sorted for deterministic reports.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        let d = root.join(top);
        if d.is_dir() {
            walk_dir(&d, &mut out)?;
        }
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            for sub in ["src", "tests", "examples"] {
                let d = m.join(sub);
                if d.is_dir() {
                    walk_dir(&d, &mut out)?;
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" || name == "fixtures" || name == "golden" {
                continue;
            }
            walk_dir(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans one source string as if it lived at `rel_path`, applying the
/// full pipeline (token rules, semantic passes over this one file, waiver
/// hygiene). Exposed for tests and editor integrations.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    scan_sources(&[(rel_path.to_string(), source.to_string())]).findings
}

/// The full scan pipeline over in-memory sources: `(rel_path, source)`
/// pairs. This is what [`scan_workspace`] runs after reading files; the
/// split exists so fixture tests can drive the whole pipeline.
pub fn scan_sources(files: &[(String, String)]) -> Report {
    // ---- lex + parse + token rules, per file ------------------------
    let mut per_file: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    let mut waivers_by_file: BTreeMap<&str, Vec<rules::Waiver>> = BTreeMap::new();
    let mut asts: Vec<(String, Ast)> = Vec::new();
    for (rel, source) in files {
        let lexed = lexer::lex(source);
        let (waivers, bad) = rules::parse_waivers(rel, &lexed);
        let mut raw = rules::token_findings(rel, &lexed, &rules_for(rel));
        // Satellite: float-fold-order is deny inside the determinism core
        // (sum order there IS the result), warn elsewhere.
        if determinism_core(rel) {
            for f in &mut raw {
                if f.rule == Rule::FloatFoldOrder {
                    f.level = Level::Deny;
                }
            }
        }
        raw.extend(bad);
        per_file.entry(rel).or_default().extend(raw);
        waivers_by_file.insert(rel, waivers);
        if semantic_scope(rel) {
            asts.push((rel.clone(), parser::parse(&lexed)));
        }
    }

    // ---- index + semantic passes ------------------------------------
    let ix = SymbolIndex::build(&asts);
    for f in passes::protocol_pass(&ix, semantic_scope) {
        per_file.entry(leak(&f.path, files)).or_default().push(f);
    }
    for f in passes::panic_pass(&ix, semantic_scope) {
        per_file.entry(leak(&f.path, files)).or_default().push(f);
    }

    // ---- waiver application + hygiene -------------------------------
    let mut findings: Vec<Finding> = Vec::new();
    for (rel, _) in files {
        let mut fs = per_file.remove(rel.as_str()).unwrap_or_default();
        let waivers = waivers_by_file.remove(rel.as_str()).unwrap_or_default();
        let mut used = vec![false; waivers.len()];
        rules::apply_waivers(&mut fs, &waivers, &mut used);
        for (w, &u) in waivers.iter().zip(&used) {
            if u {
                continue;
            }
            // A waiver for a rule that cannot fire here (out of scope) is
            // as stale as one whose hazard was fixed.
            let in_scope = match w.rule {
                Rule::ProtocolContract | Rule::PanicPath => semantic_scope(rel),
                r => rules_for(rel).contains(&r),
            };
            let why = if in_scope {
                "the rule no longer fires on that line"
            } else {
                "the rule is not in scope at this path"
            };
            fs.push(Finding {
                rule: Rule::UnusedWaiver,
                level: Level::Deny,
                path: rel.clone(),
                line: w.line,
                col: 1,
                message: format!(
                    "unused waiver: allow({}) suppresses nothing ({why}); delete it",
                    w.rule.name()
                ),
                id: String::new(),
            });
        }
        findings.extend(fs);
    }

    // ---- stable IDs + ordering --------------------------------------
    let lines: BTreeMap<&str, Vec<&str>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), src.lines().collect()))
        .collect();
    assign_ids(&mut findings, |path, line| {
        lines
            .get(path)
            .and_then(|ls| ls.get(line.saturating_sub(1) as usize))
            .copied()
    });
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    Report {
        root: String::new(),
        files_scanned: files.len(),
        findings,
    }
}

/// Maps a finding path back to the canonical `&str` key owned by `files`
/// (pass findings carry owned paths; the per-file map borrows).
fn leak<'a>(path: &str, files: &'a [(String, String)]) -> &'a str {
    files
        .iter()
        .map(|(rel, _)| rel.as_str())
        .find(|rel| *rel == path)
        .unwrap_or("")
}

/// Scans the whole workspace under `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let paths = collect_files(root)?;
    let mut files = Vec::new();
    for f in &paths {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(f)?));
    }
    let mut report = scan_sources(&files);
    report.root = root.to_string_lossy().into_owned();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_full_in_determinism_core() {
        let r = rules_for("crates/sim/src/engine.rs");
        assert_eq!(r.len(), AUDIT_RULES.len());
        assert!(r.contains(&Rule::UnorderedCollections));
        assert!(r.contains(&Rule::PanicPath));
    }

    #[test]
    fn scope_partial_elsewhere() {
        let r = rules_for("crates/align/src/batch.rs");
        assert!(!r.contains(&Rule::UnorderedCollections));
        assert!(r.contains(&Rule::WallClock));
        let root = rules_for("src/lib.rs");
        assert!(root.contains(&Rule::AmbientEnv));
        // Integration tests and examples: relaxed scope, but audited.
        let t = rules_for("tests/crash_chaos.rs");
        assert!(t.contains(&Rule::WallClock));
        assert!(!t.contains(&Rule::UnorderedCollections));
        assert!(rules_for("examples/ecoli_overlap.rs").contains(&Rule::AmbientEnv));
    }

    #[test]
    fn bench_exempt() {
        assert!(rules_for("crates/bench/src/lib.rs").is_empty());
    }

    #[test]
    fn thread_primitives_scoped_to_core_minus_approved_module() {
        // In scope across the determinism core...
        assert!(rules_for("crates/sim/src/engine.rs").contains(&Rule::ThreadPrimitives));
        assert!(rules_for("crates/core/src/driver.rs").contains(&Rule::ThreadPrimitives));
        // ...except the one approved parallel-engine module, where the
        // rest of the contract still holds.
        let par = rules_for("crates/sim/src/par.rs");
        assert!(!par.contains(&Rule::ThreadPrimitives));
        assert!(par.contains(&Rule::UnorderedCollections));
        assert!(par.contains(&Rule::PanicPath));
        // Outside the core the rule is not in scope at all.
        assert!(!rules_for("crates/align/src/batch.rs").contains(&Rule::ThreadPrimitives));
    }

    #[test]
    fn thread_primitives_fire_in_core_not_in_approved_module() {
        let src = "use std::sync::mpsc;\nstd::thread::scope(|s| {});";
        let core = scan_source("crates/sim/src/engine.rs", src);
        assert_eq!(core.len(), 2, "{core:?}");
        assert!(core.iter().all(|f| f.rule == Rule::ThreadPrimitives));
        assert!(core.iter().all(|f| f.level == Level::Deny));
        assert!(scan_source("crates/sim/src/par.rs", src).is_empty());
    }

    #[test]
    fn scan_source_applies_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(scan_source("crates/sim/src/x.rs", src).len(), 1);
        assert!(scan_source("crates/align/src/x.rs", src).is_empty());
        assert!(scan_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn bad_annotations_checked_even_when_exempt() {
        let src = "// gnb-lint: allow(nope)\nfn main() {}";
        let f = scan_source("crates/bench/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::BadAnnotation);
    }

    #[test]
    fn float_fold_denied_in_core_warns_elsewhere() {
        let src = "fn s(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, x| a + x) }";
        let core = scan_source("crates/sim/src/x.rs", src);
        assert_eq!(core.len(), 1);
        assert_eq!(core[0].level, Level::Deny);
        // Outside the core the rule is not even in scope (hot-path rule).
        assert!(scan_source("crates/trace/src/x.rs", src).is_empty());
    }

    #[test]
    fn unused_waiver_is_a_deny_finding() {
        // The waiver names wall-clock but nothing on its lines reads a
        // clock → unused.
        let src = "\
// gnb-lint: allow(wall-clock, reason = \"calibration\")
let x = 1;";
        let f = scan_source("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnusedWaiver);
        assert_eq!(f[0].level, Level::Deny);
    }

    #[test]
    fn used_waiver_is_not_flagged() {
        let src = "\
// gnb-lint: allow(wall-clock, reason = \"calibration timing\")
let t = Instant::now();";
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_waiver_is_flagged_too() {
        // unordered-collections is not in scope under crates/trace; a
        // waiver for it there is rot even though HashMap sits on the line.
        let src = "\
// gnb-lint: allow(unordered-collections, reason = \"n/a\")
let m: HashMap<u32, u32> = HashMap::new();";
        let f = scan_source("crates/trace/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnusedWaiver);
        assert!(f[0].message.contains("not in scope"));
    }

    #[test]
    fn semantic_findings_are_waivable() {
        let src = "\
impl CoordinationStrategy for S {
    fn on_start(&mut self, rt: &mut RtCtx) { rt.send_tracked(1, 0, 8, q); }
    fn on_reply(&mut self, key: u64) { self.done += 1; }
    // gnb-lint: allow(protocol-contract, reason = \"degrade-only strategy: give-ups abandon\")
    fn on_give_up(&mut self, key: u64) { unreachable!(\"degrade\") }
}";
        // Without the waiver the trivial on_give_up is a finding; the
        // reasoned annotation suppresses it... but then the panic-path
        // pass still sees the unreachable! inside a give-up hook, which
        // needs its own waiver — semantic rules are independent.
        let f = scan_source("crates/core/src/s.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PanicPath);
    }

    #[test]
    fn findings_carry_stable_ids() {
        let src = "let t = Instant::now();";
        let a = scan_source("crates/sim/src/x.rs", src);
        let shifted = format!("// a comment line\n{src}");
        let b = scan_source("crates/sim/src/x.rs", &shifted);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].id, b[0].id, "ID must survive a line shift");
        assert!(a[0].id.starts_with("gnb-"));
    }

    #[test]
    fn workspace_scan_runs_on_this_repo() {
        // CARGO_MANIFEST_DIR = crates/analyze → repo root is ../..
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = scan_workspace(&root).expect("scan");
        assert!(report.files_scanned > 50, "saw {}", report.files_scanned);
    }
}
