//! `gnb-analyze`: static determinism auditing for the `gnb` workspace.
//!
//! Everything this reproduction claims — bit-identical DES timelines,
//! byte-identical experiment TSVs, replayable fault plans — rests on the
//! codebase *staying* deterministic. This crate enforces that mechanically:
//!
//! * [`lexer`] — a dependency-free Rust lexer (no `syn`; the build
//!   environment has no crates.io route) that understands comments,
//!   strings, lifetimes and float literals well enough to avoid
//!   text-search false positives;
//! * [`rules`] — the determinism contract: deny unordered-collection use,
//!   wall-clock reads, ambient environment/randomness, and order-sensitive
//!   float accumulation, with reasoned `// gnb-lint: allow(...)` waivers;
//! * [`walk`] — workspace traversal and rule scoping (the full contract in
//!   `crates/{sim,core,overlap}`, clock/env/rng rules elsewhere, the
//!   experiment harness exempt);
//! * [`report`] — human-readable and JSON rendering.
//!
//! The `gnb-lint` binary (`src/bin/gnb-lint.rs`) is the CLI entry point;
//! CI runs it with `--deny-all`. The dynamic half of the determinism suite
//! — the virtual-time race detector — lives in `gnb-sim` (see
//! `gnb_sim::trace::RaceDetector`), because it must observe live event
//! dispatch; this crate is the static half.

#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::Report;
pub use rules::{Finding, Level, Rule, AUDIT_RULES};
pub use walk::{collect_files, rules_for, scan_source, scan_workspace};
