//! `gnb-analyze`: static determinism auditing for the `gnb` workspace.
//!
//! Everything this reproduction claims — bit-identical DES timelines,
//! byte-identical experiment TSVs, replayable fault plans — rests on the
//! codebase *staying* deterministic. This crate enforces that mechanically:
//!
//! The pipeline is lex → parse → index → passes:
//!
//! * [`lexer`] — a dependency-free Rust lexer (no `syn`; the build
//!   environment has no crates.io route) that understands comments,
//!   strings, lifetimes and float literals well enough to avoid
//!   text-search false positives;
//! * [`parser`] — a recursive-descent item parser over the token stream
//!   (fns, impls, traits, enums, consts, match arms, call/path
//!   expressions) feeding per-function [`parser::BodyFacts`];
//! * [`index`] — a lightweight workspace symbol index: which impls
//!   implement `CoordinationStrategy`, which enums carry protocol
//!   payloads, and which functions are reachable from engine dispatch and
//!   the recovery hooks (name-resolved call graph + BFS);
//! * [`rules`] — the token-level determinism contract: deny
//!   unordered-collection use, wall-clock reads, ambient
//!   environment/randomness, and order-sensitive float accumulation, with
//!   reasoned `// gnb-lint: allow(...)` waivers;
//! * [`passes`] — the semantic passes on top of the index: the
//!   coordination-protocol contract checker, the panic-path audit, and
//!   waiver hygiene (a stale waiver is itself a deny finding);
//! * [`walk`] — workspace traversal and rule scoping (the full contract in
//!   `crates/{sim,core,overlap}`, clock/env/rng rules elsewhere plus
//!   `tests/` and `examples/`, the experiment harness exempt);
//! * [`report`] — human-readable and JSON rendering, stable finding IDs,
//!   and the committed findings baseline (ratchet).
//!
//! The `gnb-lint` binary (`src/bin/gnb-lint.rs`) is the CLI entry point;
//! CI runs it with `--deny-all --baseline lint-baseline.json`. The dynamic
//! half of the determinism suite — the virtual-time race detector — lives
//! in `gnb-sim` (see `gnb_sim::trace::RaceDetector`), because it must
//! observe live event dispatch; this crate is the static half.

#![warn(missing_docs)]

pub mod index;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{Baseline, Report};
pub use rules::{Finding, Level, Rule, AUDIT_RULES};
pub use walk::{collect_files, rules_for, scan_source, scan_sources, scan_workspace};
