//! The determinism contract: the rules `gnb-lint` enforces, and the
//! scanner that applies them to a lexed file.
//!
//! Every rule exists because the repository's headline claims (bit-identical
//! replays, byte-identical experiment TSVs, replayable fault plans) die
//! silently when one of these hazards slips into simulation or accounting
//! code:
//!
//! | rule | hazard |
//! |------|--------|
//! | `unordered-collections` | `HashMap`/`HashSet` iteration order varies per process (`RandomState`), so anything derived from a traversal — sums, output order, tie-breaks — varies run to run |
//! | `wall-clock` | `std::time::Instant`/`SystemTime` read the host clock; virtual-time code must use `SimTime` |
//! | `ambient-env` | `std::env` makes behaviour depend on invisible process state |
//! | `ambient-rng` | `thread_rng`/`OsRng`/`from_entropy` draw OS entropy; all randomness must be seed-derived |
//! | `float-fold-order` | floating-point addition is non-associative: a `fold` accumulating `f64` over an unsorted source bakes traversal order into the result |
//!
//! A site that is genuinely fine carries an explicit, *reasoned* waiver:
//!
//! ```text
//! // gnb-lint: allow(wall-clock, reason = "real-machine calibration timing")
//! ```
//!
//! on the same line or the line directly above. A malformed waiver (unknown
//! rule, missing reason) is itself a finding (`bad-annotation`), so waivers
//! cannot rot into cargo-cult comments.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// The rules of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` in determinism-critical code.
    UnorderedCollections,
    /// `std::time::Instant` / `SystemTime`.
    WallClock,
    /// `std::env` reads.
    AmbientEnv,
    /// Ambient (OS-seeded) randomness.
    AmbientRng,
    /// `fold` accumulating a float in source order.
    FloatFoldOrder,
    /// `std::thread` / `Mutex` / `Atomic*` / channels outside the approved
    /// parallel-engine module. Shared-state concurrency anywhere else makes
    /// effect order scheduler-dependent, which breaks the bit-identical
    /// replay contract; the one sanctioned module funnels every shared
    /// effect through a deterministic merge.
    ThreadPrimitives,
    /// Coordination-protocol contract violation (semantic pass): a strategy
    /// issuing tracked requests without real `on_reply`/`on_give_up`
    /// bodies, an armed timer variant nobody handles, a wildcard arm
    /// discarding protocol payload variants, or overlapping key-namespace
    /// constants.
    ProtocolContract,
    /// A panic site (`unwrap`/`expect`/`panic!`/`unreachable!`/indexing)
    /// in a function reachable from the recovery hooks or engine dispatch
    /// (semantic pass).
    PanicPath,
    /// A waiver whose rule no longer fires on its line (semantic pass).
    UnusedWaiver,
    /// A `gnb-lint:` annotation that does not parse.
    BadAnnotation,
}

/// All auditable rules (excludes the meta-rules [`Rule::BadAnnotation`]
/// and [`Rule::UnusedWaiver`], which are always on and cannot be waived).
pub const AUDIT_RULES: [Rule; 8] = [
    Rule::UnorderedCollections,
    Rule::WallClock,
    Rule::AmbientEnv,
    Rule::AmbientRng,
    Rule::FloatFoldOrder,
    Rule::ThreadPrimitives,
    Rule::ProtocolContract,
    Rule::PanicPath,
];

/// Finding severity. `Deny` findings fail the build; `Warn` findings are
/// reported but only fail under `--deny-all`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Reported; nonzero exit only under `--deny-all`.
    Warn,
    /// Always a nonzero exit.
    Deny,
}

impl Rule {
    /// Stable kebab-case name (the one used in allow annotations and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => "unordered-collections",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEnv => "ambient-env",
            Rule::AmbientRng => "ambient-rng",
            Rule::FloatFoldOrder => "float-fold-order",
            Rule::ThreadPrimitives => "thread-primitives",
            Rule::ProtocolContract => "protocol-contract",
            Rule::PanicPath => "panic-path",
            Rule::UnusedWaiver => "unused-waiver",
            Rule::BadAnnotation => "bad-annotation",
        }
    }

    /// Parses a rule name as written in an annotation.
    pub fn from_name(name: &str) -> Option<Rule> {
        AUDIT_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Default severity. `float-fold-order` is a heuristic (it cannot see
    /// whether the source iterator is sorted), so it warns by default —
    /// except inside the determinism core, where [`crate::walk`] upgrades
    /// it to deny.
    pub fn default_level(self) -> Level {
        match self {
            Rule::FloatFoldOrder => Level::Warn,
            _ => Level::Deny,
        }
    }

    /// One-line description shown by `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => {
                "HashMap/HashSet have per-process iteration order; use BTreeMap/BTreeSet \
                 or a sorted collect in determinism-critical code"
            }
            Rule::WallClock => {
                "std::time::{Instant,SystemTime} read the host clock; simulated code \
                 must use virtual time (SimTime)"
            }
            Rule::AmbientEnv => "std::env makes behaviour depend on ambient process state",
            Rule::AmbientRng => {
                "thread_rng/OsRng/from_entropy draw OS entropy; randomness must be \
                 seed-derived for replayability"
            }
            Rule::FloatFoldOrder => {
                "folding f64 in source order bakes traversal order into the sum \
                 (float addition is non-associative); sort first or use an \
                 order-insensitive reduction"
            }
            Rule::ThreadPrimitives => {
                "std::thread / Mutex / RwLock / Condvar / mpsc / Atomic* outside the \
                 approved parallel-engine module (crates/sim/src/par.rs): shared-state \
                 concurrency makes effect order scheduler-dependent, breaking \
                 bit-identical replay"
            }
            Rule::ProtocolContract => {
                "the coordination-protocol contract: tracked-request issuers need \
                 real on_reply/on_give_up bodies, armed timer variants need \
                 handlers, protocol matches must not wildcard-discard payload \
                 variants, key-namespace constants must not collide"
            }
            Rule::PanicPath => {
                "unwrap/expect/panic!/unreachable!/indexing in functions reachable \
                 from on_give_up, crash takeover/restore, or engine dispatch — the \
                 code chaos tests exercise must not panic"
            }
            Rule::UnusedWaiver => {
                "a gnb-lint waiver whose rule no longer fires on that line; \
                 delete it so waivers cannot rot"
            }
            Rule::BadAnnotation => {
                "a gnb-lint annotation that does not parse as \
                 allow(<rule>, reason = \"...\") with a known rule and nonempty reason"
            }
        }
    }
}

/// One finding: a contract violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Severity at report time.
    pub level: Level,
    /// Path (relative to the scan root) of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Stable finding ID (see [`crate::report`] for the scheme). Empty
    /// until [`crate::report::assign_ids`] runs; the workspace pipeline
    /// always assigns IDs.
    pub id: String,
}

/// A parsed `gnb-lint: allow(...)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the annotation sits on (covers this line and the
    /// next).
    pub line: u32,
    /// The waived rule.
    pub rule: Rule,
}

/// Parses every `gnb-lint:` annotation in a lexed file. Returns the valid
/// waivers plus a `bad-annotation` finding for each malformed one.
pub fn parse_waivers(path: &str, lexed: &Lexed) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        parse_annotation(path, c, &mut waivers, &mut findings);
    }
    (waivers, findings)
}

/// Runs the token-level rule scanners (no waiver application, no
/// annotation parsing). `path` is only used to label findings.
pub fn token_findings(path: &str, lexed: &Lexed, rules: &[Rule]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;
    for rule in rules {
        match rule {
            Rule::UnorderedCollections => scan_unordered(path, toks, &mut findings),
            Rule::WallClock => scan_wall_clock(path, toks, &mut findings),
            Rule::AmbientEnv => scan_ambient_env(path, toks, &mut findings),
            Rule::AmbientRng => scan_ambient_rng(path, toks, &mut findings),
            Rule::FloatFoldOrder => scan_float_fold(path, toks, &mut findings),
            Rule::ThreadPrimitives => scan_thread_primitives(path, toks, &mut findings),
            // Semantic rules are produced by `crate::passes`, and the
            // meta-rules by annotation parsing / waiver hygiene.
            Rule::ProtocolContract | Rule::PanicPath | Rule::UnusedWaiver | Rule::BadAnnotation => {
            }
        }
    }
    findings
}

/// Applies waivers to `findings`: a finding is suppressed by an allow for
/// its rule on the same line or the line directly above. `used[i]` is set
/// when `waivers[i]` suppresses at least one finding (waiver-hygiene input).
/// The meta-rules (`bad-annotation`, `unused-waiver`) cannot be waived.
pub fn apply_waivers(findings: &mut Vec<Finding>, waivers: &[Waiver], used: &mut [bool]) {
    findings.retain(|f| {
        if matches!(f.rule, Rule::BadAnnotation | Rule::UnusedWaiver) {
            return true;
        }
        let mut suppressed = false;
        for (i, w) in waivers.iter().enumerate() {
            if w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line) {
                suppressed = true;
                if let Some(u) = used.get_mut(i) {
                    *u = true;
                }
            }
        }
        !suppressed
    });
}

/// Scans already-lexed source under `rules`, honouring allow annotations.
/// The single-file entry point (the workspace pipeline in [`crate::walk`]
/// adds the semantic passes and waiver hygiene on top).
pub fn scan(path: &str, lexed: &Lexed, rules: &[Rule]) -> Vec<Finding> {
    let (waivers, mut findings) = parse_waivers(path, lexed);
    findings.extend(token_findings(path, lexed, rules));
    let mut used = vec![false; waivers.len()];
    apply_waivers(&mut findings, &waivers, &mut used);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// Parses any `gnb-lint:` marker in a comment. Valid form:
/// `gnb-lint: allow(<rule>, reason = "<nonempty>")`.
fn parse_annotation(
    path: &str,
    c: &Comment,
    waivers: &mut Vec<Waiver>,
    findings: &mut Vec<Finding>,
) {
    // Doc comments (`///`, `//!`, `/**`, `/*!`) *document* the annotation
    // syntax — they never register as waivers, or every doc example would
    // count as live suppression.
    if matches!(c.text.chars().next(), Some('!' | '/' | '*')) {
        return;
    }
    // An annotation must *start* the comment (after whitespace); prose that
    // merely mentions `gnb-lint:` mid-sentence is not an annotation.
    let trimmed = c.text.trim_start_matches([' ', '\t']);
    if !trimmed.starts_with("gnb-lint:") {
        return;
    }
    let rest = trimmed["gnb-lint:".len()..].trim();
    let bad = |msg: &str, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            rule: Rule::BadAnnotation,
            level: Level::Deny,
            path: path.to_string(),
            line: c.line,
            col: 1,
            message: format!("malformed gnb-lint annotation: {msg}"),
            id: String::new(),
        });
    };
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
    else {
        bad("expected allow(<rule>, reason = \"...\")", findings);
        return;
    };
    let Some((rule_name, reason_part)) = inner.split_once(',') else {
        bad("missing `, reason = \"...\"`", findings);
        return;
    };
    let Some(rule) = Rule::from_name(rule_name.trim()) else {
        bad(&format!("unknown rule `{}`", rule_name.trim()), findings);
        return;
    };
    let reason_ok = reason_part
        .trim()
        .strip_prefix("reason")
        .map(|r| r.trim_start().trim_start_matches('='))
        .map(|r| r.trim())
        .is_some_and(|r| r.len() >= 2 && r.starts_with('"') && r.ends_with('"') && r.len() > 2);
    if !reason_ok {
        bad("reason must be a nonempty quoted string", findings);
        return;
    }
    waivers.push(Waiver { line: c.line, rule });
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// Whether tokens at `i` spell `a::b` for the given segment names.
fn path2(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    ident_at(toks, i) == Some(a)
        && punct_at(toks, i + 1, ':')
        && punct_at(toks, i + 2, ':')
        && ident_at(toks, i + 3) == Some(b)
}

fn push(findings: &mut Vec<Finding>, rule: Rule, path: &str, t: &Token, message: String) {
    findings.push(Finding {
        rule,
        level: rule.default_level(),
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
        id: String::new(),
    });
}

fn scan_unordered(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            push(
                findings,
                Rule::UnorderedCollections,
                path,
                t,
                format!(
                    "`{}` has per-process iteration order; use `{}` or a sorted \
                     collect (or annotate with a reason)",
                    t.text, ordered
                ),
            );
        }
    }
}

fn scan_wall_clock(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            push(
                findings,
                Rule::WallClock,
                path,
                t,
                format!(
                    "`{}` reads the host clock; simulated/accounting code must use \
                     virtual time (`SimTime`)",
                    t.text
                ),
            );
        }
    }
}

fn scan_ambient_env(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    const ENV_FNS: [&str; 5] = ["var", "vars", "var_os", "args", "current_exe"];
    for i in 0..toks.len() {
        // `std::env` anywhere (use declarations and inline paths).
        if path2(toks, i, "std", "env") {
            push(
                findings,
                Rule::AmbientEnv,
                path,
                &toks[i],
                "`std::env` makes behaviour depend on ambient process state".to_string(),
            );
        }
        // `env::var(...)`-style calls after a `use std::env` — unless the
        // path is already `std::env::...` (counted by the arm above).
        else if ident_at(toks, i) == Some("env")
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && matches!(ident_at(toks, i + 3), Some(f) if ENV_FNS.contains(&f))
            && !(i >= 3 && path2(toks, i - 3, "std", "env"))
        {
            push(
                findings,
                Rule::AmbientEnv,
                path,
                &toks[i],
                format!(
                    "`env::{}` reads ambient process state",
                    ident_at(toks, i + 3).unwrap_or_default()
                ),
            );
        }
    }
}

fn scan_ambient_rng(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "OsRng" | "from_entropy" => true,
            // `rand::random` — the bare word `random` alone is too common.
            "rand" => path2(toks, i, "rand", "random"),
            _ => false,
        };
        if hit {
            push(
                findings,
                Rule::AmbientRng,
                path,
                t,
                format!(
                    "`{}` draws OS entropy; derive randomness from an explicit seed \
                     so runs replay",
                    t.text
                ),
            );
        }
    }
}

/// Flags shared-state threading primitives: `Mutex`/`RwLock`/`Condvar`,
/// channel modules (`mpsc`), `Atomic*` types, and `std::thread` paths
/// (`std::thread::...` or `thread::spawn`-style calls after a use). The
/// scanner is purely lexical; [`crate::walk`] keeps the rule scoped to the
/// determinism core and carves out the approved parallel-engine module.
fn scan_thread_primitives(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    const THREAD_FNS: [&str; 6] = ["spawn", "scope", "sleep", "park", "yield_now", "Builder"];
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "Mutex" | "RwLock" | "Condvar" | "mpsc" => Some(t.text.as_str()),
            // `std::thread` anywhere; a bare `thread::` path only when it
            // targets a known std::thread item (a local module named
            // `thread` with other items is implausible but possible).
            "std" if path2(toks, i, "std", "thread") => Some("std::thread"),
            "thread"
                if punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && matches!(ident_at(toks, i + 3), Some(f) if THREAD_FNS.contains(&f))
                    && !(i >= 3 && path2(toks, i - 3, "std", "thread")) =>
            {
                Some("thread::")
            }
            s if s.starts_with("Atomic") && s.len() > "Atomic".len() => Some(s),
            _ => None,
        };
        if let Some(what) = what {
            push(
                findings,
                Rule::ThreadPrimitives,
                path,
                t,
                format!(
                    "`{what}` is a shared-state threading primitive; determinism-critical \
                     code must stay single-threaded outside the approved parallel-engine \
                     module (effect order becomes scheduler-dependent otherwise)"
                ),
            );
        }
    }
}

/// Flags `.fold(<float literal>, ...)` unless the reducer visibly performs
/// an order-insensitive reduction (`max`/`min`). This is a lexical
/// heuristic — it cannot prove the iterator unsorted — hence warn-level by
/// default.
fn scan_float_fold(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if !(punct_at(toks, i, '.')
            && ident_at(toks, i + 1) == Some("fold")
            && punct_at(toks, i + 2, '('))
        {
            continue;
        }
        // First argument must be (or start with) a float literal to count
        // as float accumulation.
        let arg = i + 3;
        let is_float_init = matches!(toks.get(arg), Some(t) if t.kind == TokKind::Float)
            || (punct_at(toks, arg, '-')
                && matches!(toks.get(arg + 1), Some(t) if t.kind == TokKind::Float));
        if !is_float_init {
            continue;
        }
        // Look ahead through the fold call for an order-insensitive
        // reducer (max/min): those folds are safe.
        let mut depth = 1usize;
        let mut j = i + 3;
        let mut insensitive = false;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => depth -= 1,
                TokKind::Ident if toks[j].text == "max" || toks[j].text == "min" => {
                    insensitive = true;
                }
                _ => {}
            }
            j += 1;
        }
        if !insensitive {
            push(
                findings,
                Rule::FloatFoldOrder,
                path,
                &toks[i + 1],
                "float accumulation in source order: float addition is \
                 non-associative, so the result depends on traversal order; \
                 sort the source first or annotate why the order is fixed"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_all(src: &str) -> Vec<Finding> {
        let rules: Vec<Rule> = AUDIT_RULES.to_vec();
        scan("test.rs", &lex(src), &rules)
    }

    fn rules_hit(src: &str) -> Vec<&'static str> {
        scan_all(src).iter().map(|f| f.rule.name()).collect()
    }

    #[test]
    fn hashmap_flagged_with_position() {
        let f = scan_all("use std::collections::HashMap;\nlet m: HashMap<u32, u32>;");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, Rule::UnorderedCollections);
        assert_eq!((f[0].line, f[0].col), (1, 23));
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn hashset_in_string_not_flagged() {
        assert!(rules_hit(r#"let msg = "HashSet order";"#).is_empty());
    }

    #[test]
    fn wall_clock_and_env_and_rng() {
        assert_eq!(rules_hit("let t = Instant::now();"), vec!["wall-clock"]);
        assert_eq!(rules_hit("let t = SystemTime::now();"), vec!["wall-clock"]);
        assert_eq!(rules_hit("let a = std::env::args();"), vec!["ambient-env"]);
        assert_eq!(rules_hit("let v = env::var(\"X\");"), vec!["ambient-env"]);
        assert_eq!(rules_hit("let r = thread_rng();"), vec!["ambient-rng"]);
        assert_eq!(
            rules_hit("let r = SmallRng::from_entropy();"),
            vec!["ambient-rng"]
        );
        assert_eq!(
            rules_hit("let x: f64 = rand::random();"),
            vec!["ambient-rng"]
        );
    }

    #[test]
    fn env_in_other_paths_not_flagged() {
        // An `env` module of our own, not std's.
        assert!(rules_hit("let v = my::env::thing();").is_empty());
        assert!(rules_hit("let e = env!(\"CARGO_MANIFEST_DIR\");").is_empty());
    }

    #[test]
    fn thread_primitives_flagged() {
        assert_eq!(
            rules_hit("let m = Mutex::new(0);"),
            vec!["thread-primitives"]
        );
        assert_eq!(
            rules_hit("use std::sync::{Arc, RwLock};"),
            vec!["thread-primitives"]
        );
        assert_eq!(rules_hit("use std::sync::mpsc;"), vec!["thread-primitives"]);
        assert_eq!(
            rules_hit("let c = AtomicU64::new(0);"),
            vec!["thread-primitives"]
        );
        // `std::thread::scope` counts once (the `thread::` arm excludes
        // paths already counted as `std::thread`).
        assert_eq!(
            rules_hit("std::thread::scope(|s| {});"),
            vec!["thread-primitives"]
        );
        assert_eq!(
            rules_hit("thread::spawn(|| {});"),
            vec!["thread-primitives"]
        );
    }

    #[test]
    fn thread_primitives_not_overfired() {
        // Arc alone is fine (shared immutable data is deterministic).
        assert!(rules_hit("let a = Arc::new(1);").is_empty());
        // The engine's own virtual barriers are not std::sync::Barrier.
        assert!(rules_hit("let b = BarrierState::default();").is_empty());
        // `thread_rng` belongs to ambient-rng, and a lone `thread` ident
        // (e.g. a variable) is not a primitive.
        assert_eq!(rules_hit("let r = thread_rng();"), vec!["ambient-rng"]);
        assert!(rules_hit("let thread = 3; let x = thread + 1;").is_empty());
        // Strings don't count.
        assert!(rules_hit(r#"let s = "Mutex poisoning";"#).is_empty());
    }

    #[test]
    fn float_fold_flagged_but_max_fold_is_not() {
        assert_eq!(
            rules_hit("let s = xs.iter().fold(0.0, |a, x| a + x);"),
            vec!["float-fold-order"]
        );
        assert!(rules_hit("let m = xs.iter().cloned().fold(0.0, f64::max);").is_empty());
        // Integer folds are associative-enough (wrapping or exact).
        assert!(rules_hit("let s = xs.iter().fold(0u64, |a, x| a + x);").is_empty());
    }

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let src = "\
// gnb-lint: allow(unordered-collections, reason = \"len-only, never iterated\")
let m: HashMap<u32, u32> = HashMap::new();
let n: HashSet<u32> = HashSet::new();";
        let f = scan_all(src);
        // Line 2 suppressed (both hits); line 3 still flagged.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.line == 3));
    }

    #[test]
    fn waiver_on_same_line() {
        let src =
            "let t = Instant::now(); // gnb-lint: allow(wall-clock, reason = \"calibration\")";
        assert!(scan_all(src).is_empty());
    }

    #[test]
    fn waiver_only_covers_its_rule() {
        let src = "\
// gnb-lint: allow(wall-clock, reason = \"calibration\")
let m: HashMap<u32, u32> = HashMap::new();";
        let f = scan_all(src);
        // Both `HashMap` tokens still flagged: the waiver names another rule.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::UnorderedCollections));
    }

    #[test]
    fn malformed_annotations_are_findings() {
        for bad in [
            "// gnb-lint: allow(unordered-collections)",
            "// gnb-lint: allow(no-such-rule, reason = \"x\")",
            "// gnb-lint: allow(wall-clock, reason = \"\")",
            "// gnb-lint: deny(wall-clock)",
        ] {
            let f = scan_all(bad);
            assert_eq!(f.len(), 1, "{bad}");
            assert_eq!(f[0].rule, Rule::BadAnnotation, "{bad}");
        }
    }

    #[test]
    fn bad_annotation_cannot_be_waived() {
        let src = "\
// gnb-lint: allow(bad-annotation, reason = \"nope\")";
        let f = scan_all(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::BadAnnotation);
    }

    #[test]
    fn findings_sorted_by_position() {
        let f = scan_all("let b: HashSet<u8>; let a = Instant::now();\nlet c: HashMap<u8, u8>;");
        let lines: Vec<(u32, u32)> = f.iter().map(|x| (x.line, x.col)).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}
