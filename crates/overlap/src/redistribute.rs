//! Task redistribution under the ownership invariant.
//!
//! Paper §3: "The task redistribution preserves the invariant that each
//! task is assigned to the owner of one or both of the required reads, such
//! that the (number of) tasks are roughly balanced across the processors.
//! If an assignee owns one but not both reads, it must retrieve the
//! remotely owned read in order to complete the task."
//!
//! The assignment is greedy: each task goes to whichever of its two
//! endpoint owners currently holds fewer tasks (ties to the owner of `a`).
//! This is DiBELLA's "simple heuristic" that balances task *counts* but not
//! task *costs* — deliberately so, because variable alignment cost is the
//! load-imbalance phenomenon the paper studies (§4.2).

use crate::partition::Partition;
use gnb_align::Candidate;
use gnb_sim::ckpt::{Checkpointable, CkptReader, CkptWriter};
use serde::{Deserialize, Serialize};

fn ckpt_tasks(tasks: &[Candidate], w: &mut CkptWriter) {
    w.usize(tasks.len());
    for t in tasks {
        w.u32(t.a);
        w.u32(t.b);
        w.u32(t.a_pos);
        w.u32(t.b_pos);
        w.bool(t.same_strand);
    }
}

fn restore_tasks(r: &mut CkptReader<'_>) -> Vec<Candidate> {
    let n = r.usize();
    (0..n)
        .map(|_| Candidate {
            a: r.u32(),
            b: r.u32(),
            a_pos: r.u32(),
            b_pos: r.u32(),
            same_strand: r.bool(),
        })
        .collect()
}

/// The per-rank task assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Tasks assigned to each rank.
    pub per_rank: Vec<Vec<Candidate>>,
}

impl TaskAssignment {
    /// Greedy least-loaded redistribution of `tasks` under `partition`.
    ///
    /// Tasks are visited in deterministic hashed order: candidate lists
    /// arrive sorted by `(a, b)` and owners are monotone in read id, so a
    /// sorted sweep would systematically overfill low ranks early and
    /// starve high ranks; a hashed visiting order makes the least-loaded
    /// heuristic balance counts tightly.
    pub fn build(tasks: &[Candidate], partition: &Partition) -> TaskAssignment {
        let nranks = partition.nranks();
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        });
        let mut per_rank: Vec<Vec<Candidate>> = vec![Vec::new(); nranks];
        for &i in &order {
            let t = tasks[i as usize];
            let oa = partition.owner[t.a as usize] as usize;
            let ob = partition.owner[t.b as usize] as usize;
            let p = if per_rank[ob].len() < per_rank[oa].len() {
                ob
            } else {
                oa
            };
            per_rank[p].push(t);
        }
        TaskAssignment { per_rank }
    }

    /// Total number of assigned tasks.
    pub fn total_tasks(&self) -> usize {
        self.per_rank.iter().map(|v| v.len()).sum()
    }

    /// Task-count imbalance: max/mean (1.0 = perfect).
    pub fn count_imbalance(&self) -> f64 {
        let max = self.per_rank.iter().map(|v| v.len()).max().unwrap_or(0) as f64;
        let mean = self.total_tasks() as f64 / self.per_rank.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Checks the ownership invariant; returns the first violation.
    pub fn check_invariant(&self, partition: &Partition) -> Result<(), (usize, Candidate)> {
        for (p, tasks) in self.per_rank.iter().enumerate() {
            for &t in tasks {
                let oa = partition.owner[t.a as usize] as usize;
                let ob = partition.owner[t.b as usize] as usize;
                if p != oa && p != ob {
                    return Err((p, t));
                }
            }
        }
        Ok(())
    }
}

/// One rank's work, split by read locality: the inputs to both coordination
/// algorithms in `gnb-core`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankWork {
    /// The rank this work belongs to.
    pub rank: usize,
    /// Tasks whose reads are both owned locally.
    pub local: Vec<Candidate>,
    /// Remote-read groups, sorted by remote read id: `(remote_read, tasks)`.
    /// Paper §3.2: "Each task involving a remote read b and local read a is
    /// indexed under b."
    pub remote_groups: Vec<(u32, Vec<Candidate>)>,
}

impl RankWork {
    /// Splits a rank's tasks into local tasks and remote-read groups.
    pub fn split(rank: usize, tasks: &[Candidate], partition: &Partition) -> RankWork {
        let mut local = Vec::new();
        let mut grouped: std::collections::BTreeMap<u32, Vec<Candidate>> =
            std::collections::BTreeMap::new();
        for &t in tasks {
            let oa = partition.owner[t.a as usize] as usize;
            let ob = partition.owner[t.b as usize] as usize;
            debug_assert!(rank == oa || rank == ob, "ownership invariant");
            if oa == rank && ob == rank {
                local.push(t);
            } else if oa == rank {
                grouped.entry(t.b).or_default().push(t);
            } else {
                grouped.entry(t.a).or_default().push(t);
            }
        }
        RankWork {
            rank,
            local,
            remote_groups: grouped.into_iter().collect(),
        }
    }

    /// Number of distinct remote reads this rank must fetch.
    pub fn remote_reads(&self) -> usize {
        self.remote_groups.len()
    }

    /// Total task count (local + remote).
    pub fn total_tasks(&self) -> usize {
        self.local.len()
            + self
                .remote_groups
                .iter()
                .map(|(_, v)| v.len())
                .sum::<usize>()
    }
}

impl Checkpointable for TaskAssignment {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.usize(self.per_rank.len());
        for tasks in &self.per_rank {
            ckpt_tasks(tasks, w);
        }
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        let n = r.usize();
        TaskAssignment {
            per_rank: (0..n).map(|_| restore_tasks(r)).collect(),
        }
    }
}

impl Checkpointable for RankWork {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.usize(self.rank);
        ckpt_tasks(&self.local, w);
        w.usize(self.remote_groups.len());
        for (key, tasks) in &self.remote_groups {
            w.u32(*key);
            ckpt_tasks(tasks, w);
        }
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        let rank = r.usize();
        let local = restore_tasks(r);
        let n = r.usize();
        RankWork {
            rank,
            local,
            remote_groups: (0..n).map(|_| (r.u32(), restore_tasks(r))).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    /// 8 reads of 100 bytes over 4 ranks: reads 2r, 2r+1 on rank r.
    fn fixture() -> Partition {
        Partition::blind(&[100; 8], 4)
    }

    #[test]
    fn invariant_holds() {
        let p = fixture();
        let tasks: Vec<Candidate> = (0..8u32)
            .flat_map(|a| ((a + 1)..8).map(move |b| cand(a, b)))
            .collect();
        let asg = TaskAssignment::build(&tasks, &p);
        asg.check_invariant(&p).unwrap();
        assert_eq!(asg.total_tasks(), tasks.len());
    }

    #[test]
    fn counts_roughly_balanced() {
        let p = fixture();
        // All tasks touch read 0 — the greedy balancer must spread them
        // between rank 0 and the other endpoint owners.
        let tasks: Vec<Candidate> = (1..8u32).map(|b| cand(0, b)).collect();
        let asg = TaskAssignment::build(&tasks, &p);
        asg.check_invariant(&p).unwrap();
        let max = asg.per_rank.iter().map(|v| v.len()).max().unwrap();
        assert!(max <= 3, "greedy should spread hub tasks, max={max}");
    }

    #[test]
    fn split_separates_local_and_remote() {
        let p = fixture();
        // Rank 0 owns reads 0 and 1.
        let tasks = vec![cand(0, 1), cand(0, 2), cand(1, 5)];
        let work = RankWork::split(0, &tasks, &p);
        assert_eq!(work.local, vec![cand(0, 1)]);
        assert_eq!(work.remote_groups.len(), 2);
        assert_eq!(work.remote_groups[0].0, 2);
        assert_eq!(work.remote_groups[1].0, 5);
        assert_eq!(work.total_tasks(), 3);
        assert_eq!(work.remote_reads(), 2);
    }

    #[test]
    fn groups_collect_all_tasks_of_a_remote_read() {
        let p = fixture();
        // Rank 0; read 7 is remote and needed by two tasks.
        let tasks = vec![cand(0, 7), cand(1, 7), cand(0, 3)];
        let work = RankWork::split(0, &tasks, &p);
        let g7 = work
            .remote_groups
            .iter()
            .find(|(r, _)| *r == 7)
            .expect("group for read 7");
        assert_eq!(g7.1.len(), 2);
    }

    #[test]
    fn groups_sorted_by_remote_read() {
        let p = fixture();
        let tasks = vec![cand(0, 7), cand(0, 3), cand(0, 5), cand(1, 2)];
        let work = RankWork::split(0, &tasks, &p);
        let keys: Vec<u32> = work.remote_groups.iter().map(|(r, _)| *r).collect();
        assert_eq!(keys, vec![2, 3, 5, 7]);
    }

    #[test]
    fn empty_tasks() {
        let p = fixture();
        let asg = TaskAssignment::build(&[], &p);
        assert_eq!(asg.total_tasks(), 0);
        assert!((asg.count_imbalance() - 1.0).abs() < 1e-12);
        let work = RankWork::split(0, &[], &p);
        assert_eq!(work.total_tasks(), 0);
    }

    #[test]
    fn violation_detected() {
        let p = fixture();
        // Hand-build a bad assignment: rank 3 gets a task it owns nothing of.
        let asg = TaskAssignment {
            per_rank: vec![vec![], vec![], vec![], vec![cand(0, 1)]],
        };
        assert!(asg.check_invariant(&p).is_err());
    }

    #[test]
    fn assignment_and_work_checkpoints_round_trip() {
        let p = fixture();
        let tasks: Vec<Candidate> = (0..8u32)
            .flat_map(|a| ((a + 1)..8).map(move |b| cand(a, b)))
            .collect();
        let asg = TaskAssignment::build(&tasks, &p);
        let bytes = asg.to_ckpt_bytes();
        assert_eq!(bytes, asg.to_ckpt_bytes(), "deterministic bytes");
        assert_eq!(TaskAssignment::from_ckpt_bytes(&bytes), asg);
        for rank in 0..4 {
            let work = RankWork::split(rank, &asg.per_rank[rank], &p);
            assert_eq!(RankWork::from_ckpt_bytes(&work.to_ckpt_bytes()), work);
        }
    }
}
