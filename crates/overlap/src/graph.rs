//! The task graph: candidates viewed as a sparse unstructured graph.
//!
//! The paper frames candidate generation as revealing "large sparse
//! unstructured graphs" over the reads (§2). This module provides the
//! whole-graph view and the degree/locality statistics used by the
//! experiment harness (tasks per read, remote fraction under a partition).

use crate::partition::Partition;
use gnb_align::Candidate;

/// The global task graph: all candidates plus the read universe size.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    /// All candidate tasks (deduplicated, `a < b`, sorted).
    pub tasks: Vec<Candidate>,
    /// Number of reads in the dataset.
    pub reads: usize,
}

impl TaskGraph {
    /// Wraps a candidate set.
    pub fn new(tasks: Vec<Candidate>, reads: usize) -> Self {
        TaskGraph { tasks, reads }
    }

    /// Number of tasks (graph edges).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Average tasks per read (the Table 1 "Tasks / Reads" density).
    pub fn tasks_per_read(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.tasks.len() as f64 / self.reads as f64
        }
    }

    /// Degree (task count) of every read.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.reads];
        for t in &self.tasks {
            deg[t.a as usize] += 1;
            deg[t.b as usize] += 1;
        }
        deg
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> u32 {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Fraction of tasks whose two reads live on different ranks — the
    /// communication-inducing fraction under `partition`.
    pub fn remote_fraction(&self, partition: &Partition) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        let remote = self
            .tasks
            .iter()
            .filter(|t| partition.owner[t.a as usize] != partition.owner[t.b as usize])
            .count();
        remote as f64 / self.tasks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    #[test]
    fn degrees_and_density() {
        let g = TaskGraph::new(vec![cand(0, 1), cand(0, 2), cand(1, 2)], 4);
        assert_eq!(g.len(), 3);
        assert_eq!(g.degrees(), vec![2, 2, 2, 0]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.tasks_per_read() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn remote_fraction_under_partition() {
        let p = Partition::blind(&[100; 4], 2); // reads 0,1 | 2,3
        let g = TaskGraph::new(vec![cand(0, 1), cand(0, 2), cand(2, 3)], 4);
        assert!((g.remote_fraction(&p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new(vec![], 0);
        assert!(g.is_empty());
        assert_eq!(g.tasks_per_read(), 0.0);
        assert_eq!(g.max_degree(), 0);
        let p = Partition::blind(&[], 2);
        assert_eq!(g.remote_fraction(&p), 0.0);
    }
}
