//! Candidate pair generation from a seed index.
//!
//! Every pair of reads appearing on the same retained k-mer's posting list
//! is an overlap candidate; the k-mer's positions in the two reads form the
//! seed. Exactly one seed is kept per pair — the paper explores "1 seed per
//! overlap candidate, simulating expected advances in seed-selection
//! techniques" (§4) — chosen deterministically as the smallest
//! `(a_pos, b_pos)` seed of the pair.

use gnb_align::Candidate;
use gnb_kmer::SeedIndex;
use rayon::prelude::*;

/// Generates the deduplicated candidate set from `index`.
///
/// Candidates are normalised so `a < b`, sorted by `(a, b)`, and
/// deterministic regardless of hash-map iteration order or thread count.
pub fn generate_candidates(index: &SeedIndex) -> Vec<Candidate> {
    let k = index.k;
    // Expand all pairs per k-mer. Posting lists were already capped by the
    // BELLA upper frequency bound, so the quadratic expansion per k-mer is
    // bounded by hi².
    let mut pairs: Vec<Candidate> = index
        .iter()
        .collect::<Vec<_>>()
        .par_iter()
        .flat_map_iter(|(_, list)| {
            let mut out = Vec::with_capacity(list.len() * (list.len().saturating_sub(1)) / 2);
            for i in 0..list.len() {
                for j in (i + 1)..list.len() {
                    let (p, q) = (list[i], list[j]);
                    if p.read == q.read {
                        continue; // self-pairs carry no overlap information
                    }
                    // Normalise to a < b (posting lists are sorted by read).
                    debug_assert!(p.read < q.read);
                    out.push(Candidate {
                        a: p.read,
                        b: q.read,
                        a_pos: p.pos,
                        b_pos: q.pos,
                        same_strand: p.fwd == q.fwd,
                    });
                }
            }
            out
        })
        .collect();
    let _ = k;

    // One seed per pair: order so the kept seed is deterministic.
    pairs.par_sort_unstable_by_key(|c| (c.a, c.b, c.a_pos, c.b_pos, !c.same_strand));
    pairs.dedup_by_key(|c| (c.a, c.b));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::presets;
    use gnb_genome::reads::{ReadOrigin, ReadSet, Strand};
    use gnb_kmer::{count_kmers_serial, BellaModel, SeedIndex};

    fn index_of(reads: &ReadSet, k: usize, lo: u32, hi: u32) -> SeedIndex {
        let mut counts = count_kmers_serial(reads, k);
        counts.filter_frequency(lo, hi);
        SeedIndex::build(reads, &counts)
    }

    fn set(seqs: &[&[u8]]) -> ReadSet {
        let mut rs = ReadSet::new();
        for s in seqs {
            rs.push(
                s,
                ReadOrigin {
                    start: 0,
                    ref_len: s.len(),
                    strand: Strand::Forward,
                },
            );
        }
        rs
    }

    #[test]
    fn shared_kmer_produces_one_candidate() {
        // Reads 0 and 1 share the 8-mer "ACGTACGG" (twice would still give
        // one candidate), read 2 is unrelated.
        let reads = set(&[b"GGGGACGTACGGCC", b"TTTTACGTACGGTT", b"CACACACACACACA"]);
        let cands = generate_candidates(&index_of(&reads, 8, 2, 10));
        assert_eq!(cands.len(), 1);
        let c = cands[0];
        assert_eq!((c.a, c.b), (0, 1));
        assert!(c.same_strand);
        assert_eq!(c.a_pos, 4);
        assert_eq!(c.b_pos, 4);
    }

    #[test]
    fn opposite_strand_pair_flagged() {
        let a = b"GGGGACGTTACGGCCA";
        let rc: Vec<u8> = gnb_genome::revcomp(a);
        let reads = set(&[a, &rc]);
        let cands = generate_candidates(&index_of(&reads, 8, 2, 10));
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(!c.same_strand, "revcomp pair must be opposite-strand");
        }
    }

    #[test]
    fn no_self_candidates() {
        // A read with an internal repeat shares k-mers with itself only.
        let reads = set(&[b"ACGTACGGAAAACGTACGG"]);
        let cands = generate_candidates(&index_of(&reads, 8, 2, 10));
        assert!(cands.is_empty());
    }

    #[test]
    fn one_seed_per_pair_even_with_many_shared_kmers() {
        // Long identical reads share every k-mer; still exactly 1 candidate.
        let core = b"ACGGATTACAGGATCCGATTACAGTCCGGAT";
        let reads = set(&[core, core]);
        let cands = generate_candidates(&index_of(&reads, 8, 2, 10));
        assert_eq!(cands.len(), 1);
        // Deterministically the smallest seed position.
        assert_eq!((cands[0].a_pos, cands[0].b_pos), (0, 0));
    }

    #[test]
    fn candidates_sorted_and_normalised() {
        let preset = presets::ecoli_30x().scaled(2048);
        let reads = preset.generate(21);
        let model = BellaModel::new(preset.coverage, 0.15, 17);
        let (lo, hi) = model.reliable_interval();
        let cands = generate_candidates(&index_of(&reads, 17, lo, hi));
        assert!(!cands.is_empty(), "a 30x dataset must produce candidates");
        for w in cands.windows(2) {
            assert!((w[0].a, w[0].b) < (w[1].a, w[1].b), "sorted, deduped");
        }
        for c in &cands {
            assert!(c.a < c.b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let preset = presets::ecoli_30x().scaled(4096);
        let reads = preset.generate(22);
        let a = generate_candidates(&index_of(&reads, 17, 2, 8));
        let b = generate_candidates(&index_of(&reads, 17, 2, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn true_overlaps_are_found() {
        // Validation against ground truth: most reads that genuinely
        // overlap by >= 1kb on the genome should appear as candidates.
        let mut preset = presets::ecoli_30x().scaled(1024);
        preset.errors = gnb_genome::ErrorModel::clr(0.10);
        let reads = preset.generate(23);
        let model = BellaModel::new(preset.coverage, 0.10, 17);
        let (lo, hi) = model.reliable_interval();
        let cands = generate_candidates(&index_of(&reads, 17, lo, hi));
        let cand_set: std::collections::BTreeSet<(u32, u32)> =
            cands.iter().map(|c| (c.a, c.b)).collect();
        let mut true_pairs = 0usize;
        let mut found = 0usize;
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                if reads.origin(i).overlap_len(&reads.origin(j)) >= 1000 {
                    true_pairs += 1;
                    if cand_set.contains(&(i as u32, j as u32)) {
                        found += 1;
                    }
                }
            }
        }
        assert!(true_pairs > 50, "need a meaningful truth set: {true_pairs}");
        let recall = found as f64 / true_pairs as f64;
        assert!(recall > 0.6, "recall {recall} ({found}/{true_pairs})");
    }
}
