//! Overlap candidate generation, task partitioning, and task stores.
//!
//! This crate implements DiBELLA's stages 1–2 (paper §3): the read
//! partition, the discovery of candidate read pairs from shared filtered
//! k-mers, and the redistribution of alignment tasks to ranks under the
//! ownership invariant ("each task is assigned to the owner of one or both
//! of the required reads, such that the number of tasks are roughly
//! balanced across the processors"). Both the BSP and the asynchronous
//! coordination codes in `gnb-core` consume the *same* fixed task
//! assignment, exactly as in the paper's methodology ("the alignment tasks
//! computed from each dataset, and their partitioning, are treated as fixed
//! inputs").
//!
//! It also provides the two local task-store layouts the paper contrasts in
//! §4.6 / Fig. 13: flat structure-of-arrays (the BSP code) versus
//! pointer-based standard-library containers (the async code).

#![warn(missing_docs)]

pub mod assembly;
pub mod candidates;
pub mod exchange;
pub mod graph;
pub mod partition;
pub mod redistribute;
pub mod store;
pub mod synth;

pub use candidates::generate_candidates;
pub use exchange::ExchangePlan;
pub use graph::TaskGraph;
pub use partition::Partition;
pub use redistribute::{RankWork, TaskAssignment};
pub use store::{FlatTaskStore, PointerTaskStore, TaskStore};
