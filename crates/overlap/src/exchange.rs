//! Exchange planning: who must send which read bytes to whom.
//!
//! Both coordination codes move the same payload — each rank needs every
//! remote read referenced by its tasks, exactly once ("parallel processors
//! retrieve remote reads no more than once", §3.2). The plan precomputes,
//! per rank, the distinct remote reads needed and the resulting send/recv
//! byte loads. The BSP code turns the plan into `alltoallv` counts; the
//! async code turns it into an RPC request list; Fig. 6 plots its
//! max−min received-byte spread.

use crate::partition::Partition;
use crate::redistribute::RankWork;
use serde::{Deserialize, Serialize};

/// Byte-level exchange plan across all ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangePlan {
    /// For each rank: distinct remote reads it must fetch (sorted).
    pub needed: Vec<Vec<u32>>,
    /// Bytes each rank will receive (sum of its needed reads' lengths).
    pub recv_bytes: Vec<u64>,
    /// Bytes each rank will send (its reads requested by others).
    pub send_bytes: Vec<u64>,
    /// Per-rank pairwise matrix row: `pair_bytes[p][q]` = bytes rank `p`
    /// receives from rank `q`.
    pub pair_bytes: Vec<Vec<u64>>,
}

impl ExchangePlan {
    /// Builds the plan from every rank's [`RankWork`].
    ///
    /// # Panics
    /// Panics if `works.len() != partition.nranks()` or works are not in
    /// rank order.
    pub fn build(works: &[RankWork], partition: &Partition, read_lengths: &[usize]) -> Self {
        let nranks = partition.nranks();
        assert_eq!(works.len(), nranks, "one RankWork per rank");
        let mut needed = Vec::with_capacity(nranks);
        let mut recv_bytes = vec![0u64; nranks];
        let mut send_bytes = vec![0u64; nranks];
        let mut pair_bytes = vec![vec![0u64; nranks]; nranks];
        for (p, w) in works.iter().enumerate() {
            assert_eq!(w.rank, p, "works must be in rank order");
            let reads: Vec<u32> = w.remote_groups.iter().map(|&(r, _)| r).collect();
            for &r in &reads {
                let owner = partition.owner[r as usize] as usize;
                debug_assert_ne!(owner, p, "remote read owned locally");
                let len = read_lengths[r as usize] as u64;
                recv_bytes[p] += len;
                send_bytes[owner] += len;
                pair_bytes[p][owner] += len;
            }
            needed.push(reads);
        }
        ExchangePlan {
            needed,
            recv_bytes,
            send_bytes,
            pair_bytes,
        }
    }

    /// Total bytes crossing rank boundaries.
    pub fn total_bytes(&self) -> u64 {
        self.recv_bytes.iter().sum()
    }

    /// Maximum bytes received by any rank.
    pub fn max_recv(&self) -> u64 {
        self.recv_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Minimum bytes received by any rank.
    pub fn min_recv(&self) -> u64 {
        self.recv_bytes.iter().copied().min().unwrap_or(0)
    }

    /// The paper's Fig. 6 quantity: max − min received bytes per rank.
    pub fn recv_spread(&self) -> u64 {
        self.max_recv() - self.min_recv()
    }

    /// Communication volume imbalance: max recv / mean recv.
    pub fn recv_imbalance(&self) -> f64 {
        let mean = self.total_bytes() as f64 / self.recv_bytes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_recv() as f64 / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redistribute::TaskAssignment;
    use gnb_align::Candidate;

    fn cand(a: u32, b: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }
    }

    fn setup(tasks: &[Candidate], lens: &[usize], nranks: usize) -> (ExchangePlan, Partition) {
        let p = Partition::blind(lens, nranks);
        let asg = TaskAssignment::build(tasks, &p);
        asg.check_invariant(&p).unwrap();
        let works: Vec<RankWork> = (0..nranks)
            .map(|r| RankWork::split(r, &asg.per_rank[r], &p))
            .collect();
        (ExchangePlan::build(&works, &p, lens), p)
    }

    #[test]
    fn send_equals_recv_globally() {
        let lens = vec![100, 150, 200, 250, 300, 350, 400, 450];
        let tasks: Vec<Candidate> = (0..8u32)
            .flat_map(|a| ((a + 1)..8).map(move |b| cand(a, b)))
            .collect();
        let (plan, _) = setup(&tasks, &lens, 4);
        assert_eq!(
            plan.send_bytes.iter().sum::<u64>(),
            plan.recv_bytes.iter().sum::<u64>()
        );
        // Pairwise matrix is consistent with the row sums.
        for p in 0..4 {
            assert_eq!(plan.pair_bytes[p].iter().sum::<u64>(), plan.recv_bytes[p]);
        }
    }

    #[test]
    fn local_only_tasks_need_no_exchange() {
        let lens = vec![100; 8];
        // Pairs entirely within each 2-read block.
        let tasks = vec![cand(0, 1), cand(2, 3), cand(4, 5), cand(6, 7)];
        let (plan, _) = setup(&tasks, &lens, 4);
        assert_eq!(plan.total_bytes(), 0);
        assert_eq!(plan.recv_spread(), 0);
    }

    #[test]
    fn remote_read_counted_once_per_requester() {
        let lens = vec![100; 8];
        // Rank 0 (reads 0,1) needs read 7 for two tasks: fetched once.
        let tasks = vec![cand(0, 7), cand(1, 7)];
        let p = Partition::blind(&lens, 4);
        let asg = TaskAssignment {
            per_rank: vec![tasks.clone(), vec![], vec![], vec![]],
        };
        asg.check_invariant(&p).unwrap();
        let works: Vec<RankWork> = (0..4)
            .map(|r| RankWork::split(r, &asg.per_rank[r], &p))
            .collect();
        let plan = ExchangePlan::build(&works, &p, &lens);
        assert_eq!(plan.recv_bytes[0], 100);
        assert_eq!(plan.send_bytes[3], 100);
        assert_eq!(plan.needed[0], vec![7]);
    }

    #[test]
    fn spread_reflects_length_skew() {
        // One giant read on the last rank that everyone needs.
        let mut lens = vec![100usize; 8];
        lens[7] = 100_000;
        let tasks: Vec<Candidate> = (0..7u32).map(|a| cand(a, 7)).collect();
        let (plan, _) = setup(&tasks, &lens, 4);
        assert!(plan.recv_spread() > 0);
        assert!(plan.recv_imbalance() > 1.0);
    }

    #[test]
    fn empty_plan() {
        let (plan, _) = setup(&[], &[100; 8], 4);
        assert_eq!(plan.total_bytes(), 0);
        assert!((plan.recv_imbalance() - 1.0).abs() < 1e-12);
    }
}
