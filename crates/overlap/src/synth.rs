//! Task-graph-level workload synthesis for large-scale simulation sweeps.
//!
//! The string pipeline (genome → reads → k-mers → filter → candidates) is
//! the ground truth, but running it at Human-CCS scale (3.1 Gbp, 87.6 M
//! tasks) is not feasible on a laptop-class host. For the multinode scaling
//! figures the simulator only needs the *task graph*: read lengths, the
//! candidate pairs, and each pair's true overlap length (which drives the
//! alignment cost model — 0 marks a false-positive candidate that will
//! terminate early).
//!
//! This module synthesises that graph directly from the same generative
//! parameters the string pipeline uses: reads are placed uniformly on the
//! genome, every pair overlapping by at least `min_detect_overlap` becomes
//! a candidate with probability `p_detect` (a k-mer seed survives errors
//! and filtering), and repeat/error-induced false positives are added at
//! `fp_per_read` per read. The false-positive rates of the three presets
//! are fitted so the synthetic task counts reproduce the paper's Table 1
//! at scale 1 (see `fp_per_read_for`). A calibration test cross-checks the
//! synthesiser against the real string pipeline at small scale.

use gnb_align::Candidate;
use gnb_genome::presets::WorkloadPreset;
use gnb_genome::rng::{rng_from_seed, sample_poisson, LogNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Nominal seed length used for synthetic seed positions.
const K: usize = 17;

/// Parameters of task-graph synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthParams {
    /// Genome length (bp).
    pub genome_len: usize,
    /// Sequencing depth.
    pub coverage: f64,
    /// Mean read length.
    pub mean_read_len: f64,
    /// Log-space sigma of read lengths.
    pub read_len_sigma: f64,
    /// Minimum read length.
    pub min_read_len: usize,
    /// Maximum read length.
    pub max_read_len: usize,
    /// Overlaps shorter than this are never detected.
    pub min_detect_overlap: usize,
    /// Probability that a sufficient true overlap yields a candidate.
    pub p_detect: f64,
    /// Expected repeat/error-induced false candidates per read.
    pub fp_per_read: f64,
    /// Fraction of false candidates that stem from *genomic repeats* and
    /// therefore align over a partial (repeat-length) region — expensive,
    /// unlike erroneous-k-mer coincidences which terminate immediately.
    pub repeat_fp_frac: f64,
    /// Mean partial-alignment extent of a repeat-induced candidate, bp.
    pub repeat_fp_mean: f64,
}

/// Per-preset false-candidate model fitted to the paper's Table 1 task
/// counts and cost structure: `(fp_per_read, repeat_frac, repeat_mean_bp)`.
/// E. coli extras are mostly erroneous-k-mer coincidences (instant
/// termination); Human extras are mostly repeat hits that align a partial
/// repeat-length region before terminating.
fn fp_model_for(name: &str) -> (f64, f64, f64) {
    match name {
        "ecoli_30x" => (110.0, 0.15, 800.0),
        "ecoli_100x" => (196.0, 0.15, 800.0),
        "human_ccs" => (73.0, 0.80, 1_200.0),
        _ => (20.0, 0.2, 800.0),
    }
}

impl SynthParams {
    /// Derives synthesis parameters from a workload preset.
    pub fn from_preset(p: &WorkloadPreset) -> SynthParams {
        let (fp_per_read, repeat_fp_frac, repeat_fp_mean) = fp_model_for(p.name);
        SynthParams {
            genome_len: p.genome_len,
            coverage: p.coverage,
            mean_read_len: p.mean_read_len,
            read_len_sigma: p.read_len_sigma,
            min_read_len: p.min_read_len,
            max_read_len: p.max_read_len,
            min_detect_overlap: 500,
            p_detect: 0.85,
            fp_per_read,
            repeat_fp_frac,
            repeat_fp_mean,
        }
    }
}

/// A synthesised workload: the fixed input both coordination codes consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthWorkload {
    /// Read lengths, indexed by read id (ids are in random genome order,
    /// as in a real sequencing run).
    pub lengths: Vec<usize>,
    /// Candidate tasks, deduplicated and sorted by `(a, b)`.
    pub tasks: Vec<Candidate>,
    /// Parallel to `tasks`: the pair's *alignable extent* in bp — the true
    /// genomic overlap, or the partial repeat-region extent for
    /// repeat-induced candidates, or 0 for erroneous-k-mer candidates that
    /// terminate immediately. Drives the alignment cost model.
    pub overlap_len: Vec<u32>,
}

impl SynthWorkload {
    /// Number of reads.
    pub fn reads(&self) -> usize {
        self.lengths.len()
    }

    /// Tasks per read (Table 1 density).
    pub fn tasks_per_read(&self) -> f64 {
        if self.lengths.is_empty() {
            0.0
        } else {
            self.tasks.len() as f64 / self.lengths.len() as f64
        }
    }

    /// Fraction of candidates that are false positives.
    pub fn fp_fraction(&self) -> f64 {
        if self.overlap_len.is_empty() {
            return 0.0;
        }
        let fp = self.overlap_len.iter().filter(|&&o| o == 0).count();
        fp as f64 / self.overlap_len.len() as f64
    }
}

/// Synthesises a workload from `params`, deterministically from `seed`.
pub fn synthesize(params: &SynthParams, seed: u64) -> SynthWorkload {
    let mut rng = rng_from_seed(seed ^ 0x7379_6e74_685f_7767);
    let g = params.genome_len;
    let dist = LogNormal::from_mean_sigma(params.mean_read_len, params.read_len_sigma);

    // Place reads until target coverage, mirroring the string sampler.
    let target = (g as f64 * params.coverage) as usize;
    let mut lengths: Vec<usize> = Vec::new();
    let mut positions: Vec<usize> = Vec::new();
    let mut total = 0usize;
    while total < target {
        let len = (dist.sample(&mut rng) as usize)
            .clamp(params.min_read_len, params.max_read_len)
            .min(g);
        let pos = rng.gen_range(0..=g - len);
        lengths.push(len);
        positions.push(pos);
        total += len;
    }
    let n = lengths.len();

    // True overlaps: sweep reads in genome order with a two-pointer window.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| positions[i as usize]);
    let mut raw: Vec<(Candidate, u32)> = Vec::new();
    for (oi, &i) in order.iter().enumerate() {
        let (pi, li) = (positions[i as usize], lengths[i as usize]);
        let end_i = pi + li;
        for &j in &order[oi + 1..] {
            let pj = positions[j as usize];
            if pj >= end_i {
                break;
            }
            let end_j = pj + lengths[j as usize];
            let ov = end_i.min(end_j) - pj;
            if ov < params.min_detect_overlap {
                continue;
            }
            if rng.gen::<f64>() >= params.p_detect {
                continue;
            }
            // Seed at the middle of the overlap region.
            let seed_g = pj + ov / 2;
            let (a, b) = (i.min(j), i.max(j));
            let a_pos = clamp_seed(seed_g - positions[a as usize], lengths[a as usize]);
            let b_pos = clamp_seed(seed_g - positions[b as usize], lengths[b as usize]);
            raw.push((
                Candidate {
                    a,
                    b,
                    a_pos,
                    b_pos,
                    same_strand: rng.gen(),
                },
                ov as u32,
            ));
        }
    }

    // False candidates: random partners. A `repeat_fp_frac` share of them
    // are repeat hits that align a partial (repeat-length) region — they
    // carry a nonzero alignable extent and cost accordingly; the rest are
    // erroneous-k-mer coincidences whose bands die immediately (extent 0).
    if n > 1 && params.fp_per_read > 0.0 {
        let repeat_dist = if params.repeat_fp_frac > 0.0 {
            Some(LogNormal::from_mean_sigma(params.repeat_fp_mean, 0.5))
        } else {
            None
        };
        for i in 0..n as u32 {
            let k = sample_poisson(&mut rng, params.fp_per_read);
            for _ in 0..k {
                let mut j = rng.gen_range(0..n as u32);
                while j == i {
                    j = rng.gen_range(0..n as u32);
                }
                let (a, b) = (i.min(j), i.max(j));
                let a_pos = clamp_seed(rng.gen_range(0..lengths[a as usize]), lengths[a as usize]);
                let b_pos = clamp_seed(rng.gen_range(0..lengths[b as usize]), lengths[b as usize]);
                let extent = match &repeat_dist {
                    Some(d) if rng.gen::<f64>() < params.repeat_fp_frac => {
                        let cap = lengths[a as usize].min(lengths[b as usize]);
                        (d.sample(&mut rng) as usize).clamp(200, cap.max(200)) as u32
                    }
                    _ => 0,
                };
                raw.push((
                    Candidate {
                        a,
                        b,
                        a_pos,
                        b_pos,
                        same_strand: rng.gen(),
                    },
                    extent,
                ));
            }
        }
    }

    // One candidate per pair; a true overlap wins over a false positive.
    raw.sort_unstable_by_key(|(c, ov)| (c.a, c.b, std::cmp::Reverse(*ov)));
    raw.dedup_by_key(|(c, _)| (c.a, c.b));
    let (tasks, overlap_len): (Vec<Candidate>, Vec<u32>) = raw.into_iter().unzip();

    SynthWorkload {
        lengths,
        tasks,
        overlap_len,
    }
}

fn clamp_seed(pos: usize, len: usize) -> u32 {
    pos.min(len.saturating_sub(K)) as u32
}

/// Ground-truth overlap lengths for a *string-pipeline* workload, computed
/// from read origins. Gives string workloads the same cost-model input the
/// synthesiser provides directly.
pub fn true_overlaps(reads: &gnb_genome::ReadSet, tasks: &[Candidate]) -> Vec<u32> {
    tasks
        .iter()
        .map(|t| {
            reads
                .origin(t.a as usize)
                .overlap_len(&reads.origin(t.b as usize)) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_genome::presets;

    #[test]
    fn deterministic() {
        let p = SynthParams::from_preset(&presets::ecoli_30x().scaled(512));
        let a = synthesize(&p, 1);
        let b = synthesize(&p, 1);
        assert_eq!(a, b);
        let c = synthesize(&p, 2);
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn tasks_normalised_sorted_unique() {
        let p = SynthParams::from_preset(&presets::ecoli_30x().scaled(512));
        let w = synthesize(&p, 3);
        for t in &w.tasks {
            assert!(t.a < t.b);
            assert!((t.a as usize) < w.reads() && (t.b as usize) < w.reads());
        }
        for pair in w.tasks.windows(2) {
            assert!((pair[0].a, pair[0].b) < (pair[1].a, pair[1].b));
        }
        assert_eq!(w.tasks.len(), w.overlap_len.len());
    }

    #[test]
    fn seed_positions_inside_reads() {
        let p = SynthParams::from_preset(&presets::ecoli_100x().scaled(512));
        let w = synthesize(&p, 4);
        for t in &w.tasks {
            assert!((t.a_pos as usize) + K <= w.lengths[t.a as usize].max(K));
            assert!((t.b_pos as usize) + K <= w.lengths[t.b as usize].max(K));
        }
    }

    #[test]
    fn density_matches_table1_at_scale() {
        // At reduced scale the density (tasks/read) should approximate the
        // paper's Table 1 within a modest factor: FP candidates scale with
        // reads, true overlaps scale with local coverage, both preserved.
        // Scales are chosen so the read count stays large enough that the
        // false-positive draws do not saturate the available pair space
        // (fp_total ≪ C(n, 2)); below that, dedup collapses the density.
        let cases = [
            (presets::ecoli_30x(), 134.4, 16),
            (presets::ecoli_100x(), 272.1, 32),
            (presets::human_ccs(), 76.3, 1024),
        ];
        for (preset, expect, scale) in cases {
            let p = SynthParams::from_preset(&preset.scaled(scale));
            let w = synthesize(&p, 5);
            let got = w.tasks_per_read();
            assert!(
                got > expect * 0.5 && got < expect * 1.6,
                "{}: tasks/read {got:.1} vs paper {expect}",
                preset.name
            );
        }
    }

    #[test]
    fn fp_fraction_reflects_parameters() {
        // Scale 8 keeps n ≈ 2000 reads so 50 fp/read does not exhaust the
        // pair space.
        let mut p = SynthParams::from_preset(&presets::ecoli_30x().scaled(8));
        p.fp_per_read = 0.0;
        let no_fp = synthesize(&p, 6);
        assert_eq!(no_fp.fp_fraction(), 0.0);
        p.fp_per_read = 50.0;
        let heavy = synthesize(&p, 6);
        assert!(heavy.fp_fraction() > 0.5, "fp {}", heavy.fp_fraction());
    }

    #[test]
    fn true_overlap_lengths_plausible() {
        let mut p = SynthParams::from_preset(&presets::ecoli_30x().scaled(512));
        p.repeat_fp_frac = 0.0; // so every nonzero extent is a true overlap
        let w = synthesize(&p, 7);
        for (t, &ov) in w.tasks.iter().zip(&w.overlap_len) {
            if ov > 0 {
                assert!(ov as usize >= p.min_detect_overlap);
                let max_ov = w.lengths[t.a as usize].min(w.lengths[t.b as usize]);
                assert!(ov as usize <= max_ov, "overlap exceeds read length");
            }
        }
        // A 30x dataset has plenty of true overlaps.
        assert!(w.overlap_len.iter().any(|&o| o > 0));
    }

    #[test]
    fn repeat_candidates_carry_partial_extents() {
        let mut p = SynthParams::from_preset(&presets::human_ccs().scaled(8192));
        p.fp_per_read = 30.0;
        let w = synthesize(&p, 9);
        // With repeat_fp_frac = 0.8, most false candidates have a nonzero
        // but sub-detection-threshold extent.
        let partial = w
            .overlap_len
            .iter()
            .filter(|&&o| o > 0 && (o as usize) < p.min_detect_overlap)
            .count();
        assert!(partial > 0, "expected partial repeat extents");
        for (t, &ov) in w.tasks.iter().zip(&w.overlap_len) {
            let cap = w.lengths[t.a as usize].min(w.lengths[t.b as usize]);
            assert!(ov as usize <= cap.max(200));
        }
    }

    #[test]
    fn string_pipeline_overlap_helper() {
        let preset = presets::ecoli_30x().scaled(2048);
        let reads = preset.generate(8);
        let tasks = vec![Candidate {
            a: 0,
            b: 1,
            a_pos: 0,
            b_pos: 0,
            same_strand: true,
        }];
        let ov = true_overlaps(&reads, &tasks);
        assert_eq!(ov.len(), 1);
        assert_eq!(
            ov[0] as usize,
            reads.origin(0).overlap_len(&reads.origin(1))
        );
    }
}
