//! DiBELLA's stage-1 "blind" read partition.
//!
//! Reads are partitioned **uniformly by size in memory** — contiguous
//! blocks of read ids balanced by total bytes, with no data-dependent
//! placement (paper §3: "a data-independent strategy in that no
//! characteristic other than size in memory is considered"). The partition
//! determines read ownership for the rest of the pipeline.

use gnb_sim::ckpt::{Checkpointable, CkptReader, CkptWriter};
use serde::{Deserialize, Serialize};

/// A partition of reads across `nranks` ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `owner[r]` is the rank owning read `r`.
    pub owner: Vec<u32>,
    /// Half-open read-id range per rank (`ranges[p] = (begin, end)`).
    pub ranges: Vec<(u32, u32)>,
    /// Total bytes of read data per rank.
    pub bytes: Vec<u64>,
}

impl Partition {
    /// Builds the blind partition: contiguous read-id blocks whose byte
    /// sizes are as uniform as a greedy left-to-right sweep allows.
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn blind(read_lengths: &[usize], nranks: usize) -> Partition {
        assert!(nranks > 0, "need at least one rank");
        let n = read_lengths.len();
        let total: u64 = read_lengths.iter().map(|&l| l as u64).sum();
        let mut owner = vec![0u32; n];
        let mut ranges = Vec::with_capacity(nranks);
        let mut bytes = vec![0u64; nranks];

        let mut r = 0usize; // current read
        let mut acc_before = 0u64; // bytes assigned to previous ranks
        for (p, rank_bytes) in bytes.iter_mut().enumerate() {
            let begin = r as u32;
            // Ideal cumulative boundary after rank p.
            let target = total * (p as u64 + 1) / nranks as u64;
            let mut here = 0u64;
            while r < n {
                let l = read_lengths[r] as u64;
                // Leave the read for the next rank if crossing the boundary
                // moves us further from the target than stopping here —
                // but never leave a trailing rank empty-handed while reads
                // remain and ranks after this one couldn't take them all.
                let before = acc_before + here;
                let after = before + l;
                let remaining_ranks = nranks - p - 1;
                // The last rank must take everything that is left.
                let must_take = remaining_ranks == 0;
                // A previous rank may already have overshot this rank's
                // boundary; then this rank takes nothing.
                if !must_take && before >= target {
                    break;
                }
                if !must_take && after > target && (after - target) > (target - before) {
                    break;
                }
                owner[r] = p as u32;
                here += l;
                r += 1;
                if remaining_ranks > 0 && (n - r) == remaining_ranks {
                    // Exactly one read left per remaining rank: stop so no
                    // later rank ends up empty when reads are scarce.
                    break;
                }
            }
            acc_before += here;
            *rank_bytes = here;
            ranges.push((begin, r as u32));
        }
        // Any trailing unassigned reads belong to the last rank.
        if r < n {
            let p = nranks - 1;
            for rr in r..n {
                owner[rr] = p as u32;
                bytes[p] += read_lengths[rr] as u64;
            }
            ranges[p].1 = n as u32;
            // Intermediate empty ranges stay valid: (x, x).
        }
        Partition {
            owner,
            ranges,
            bytes,
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranges.len()
    }

    /// Reads owned by rank `p` (contiguous id range).
    pub fn reads_of(&self, p: usize) -> std::ops::Range<u32> {
        self.ranges[p].0..self.ranges[p].1
    }

    /// Deterministic takeover remap: after `dead` crashes, its contiguous
    /// read range is re-split over the surviving ranks with the same blind
    /// (byte-balanced) rule used for the original partition, so every
    /// survivor computes the identical reassignment with no coordination.
    /// Reads outside the dead range keep their owner.
    ///
    /// # Panics
    /// Panics if `dead` is out of range, owns no slot, or no survivor
    /// remains.
    pub fn takeover_remap(
        &self,
        read_lengths: &[usize],
        dead: usize,
        survivors: &[usize],
    ) -> Partition {
        assert!(dead < self.nranks(), "dead rank out of range");
        assert!(
            !survivors.is_empty(),
            "takeover needs at least one survivor"
        );
        assert!(
            !survivors.contains(&dead),
            "dead rank cannot be its own survivor"
        );
        let (begin, end) = self.ranges[dead];
        let sub = Partition::blind(&read_lengths[begin as usize..end as usize], survivors.len());
        let mut out = self.clone();
        for r in begin..end {
            let s = sub.owner[(r - begin) as usize] as usize;
            out.owner[r as usize] = survivors[s] as u32;
        }
        out.bytes[dead] = 0;
        for (s, &sv) in survivors.iter().enumerate() {
            out.bytes[sv] += sub.bytes[s];
        }
        // The dead rank's contiguous range is now interleaved among the
        // survivors; ranges[] keeps the *original* pre-crash geometry (it
        // documents stage-1 placement), while owner[] is authoritative.
        out
    }

    /// Byte imbalance: max bytes / mean bytes (1.0 = perfect).
    pub fn byte_imbalance(&self) -> f64 {
        let max = self.bytes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.bytes.iter().sum::<u64>() as f64 / self.bytes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

impl Checkpointable for Partition {
    fn checkpoint(&self, w: &mut CkptWriter) {
        self.owner.checkpoint(w);
        self.ranges.checkpoint(w);
        self.bytes.checkpoint(w);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        Partition {
            owner: Vec::restore(r),
            ranges: Vec::restore(r),
            bytes: Vec::restore(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_owns_all() {
        let p = Partition::blind(&[10, 20, 30], 1);
        assert_eq!(p.owner, vec![0, 0, 0]);
        assert_eq!(p.ranges, vec![(0, 3)]);
        assert_eq!(p.bytes, vec![60]);
    }

    #[test]
    fn uniform_lengths_split_evenly() {
        let lens = vec![100usize; 64];
        let p = Partition::blind(&lens, 8);
        for r in 0..8 {
            assert_eq!(p.bytes[r], 800, "rank {r}");
            let (b, e) = p.ranges[r];
            assert_eq!(e - b, 8);
        }
        assert!((p.byte_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranges_are_contiguous_and_cover() {
        let lens: Vec<usize> = (0..103).map(|i| 50 + (i * 37) % 400).collect();
        let p = Partition::blind(&lens, 7);
        assert_eq!(p.ranges[0].0, 0);
        for w in p.ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
        assert_eq!(p.ranges.last().unwrap().1 as usize, lens.len());
        // owner agrees with ranges
        for (r, &o) in p.owner.iter().enumerate() {
            let (b, e) = p.ranges[o as usize];
            assert!((b as usize) <= r && r < e as usize);
        }
    }

    #[test]
    fn byte_balance_is_reasonable() {
        // Heavy-tailed lengths: imbalance bounded by ~1 + max_len/mean_share.
        let lens: Vec<usize> = (0..1000).map(|i| 1000 + (i * 7919) % 9000).collect();
        let p = Partition::blind(&lens, 16);
        assert!(
            p.byte_imbalance() < 1.10,
            "imbalance {}",
            p.byte_imbalance()
        );
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        assert_eq!(p.bytes.iter().sum::<u64>(), total);
    }

    #[test]
    fn more_ranks_than_reads() {
        let p = Partition::blind(&[10, 10, 10], 5);
        // Every read owned, every range valid, empties allowed at the tail.
        let covered: u32 = p.ranges.iter().map(|(b, e)| e - b).sum();
        assert_eq!(covered, 3);
        for w in p.ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        for (r, &o) in p.owner.iter().enumerate() {
            let (b, e) = p.ranges[o as usize];
            assert!((b as usize) <= r && r < e as usize);
        }
    }

    #[test]
    fn empty_input() {
        let p = Partition::blind(&[], 4);
        assert_eq!(p.owner.len(), 0);
        assert_eq!(p.ranges.len(), 4);
        assert!(p.ranges.iter().all(|&(b, e)| b == e));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Partition::blind(&[1], 0);
    }

    #[test]
    fn no_rank_left_empty_when_reads_suffice() {
        // 16 equal reads over 16 ranks: one each.
        let p = Partition::blind(&[5; 16], 16);
        for (b, e) in &p.ranges {
            assert_eq!(e - b, 1);
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let lens: Vec<usize> = (0..103).map(|i| 50 + (i * 37) % 400).collect();
        let p = Partition::blind(&lens, 7);
        let bytes = p.to_ckpt_bytes();
        assert_eq!(bytes, p.to_ckpt_bytes(), "serialisation is deterministic");
        assert_eq!(Partition::from_ckpt_bytes(&bytes), p);
    }

    #[test]
    fn takeover_remap_reassigns_exactly_the_dead_range() {
        let lens: Vec<usize> = (0..200).map(|i| 100 + (i * 13) % 300).collect();
        let p = Partition::blind(&lens, 8);
        let survivors: Vec<usize> = (0..8).filter(|&r| r != 3).collect();
        let q = p.takeover_remap(&lens, 3, &survivors);
        let (b, e) = p.ranges[3];
        for r in 0..lens.len() {
            let inside = (b as usize) <= r && r < e as usize;
            if inside {
                assert_ne!(q.owner[r], 3, "read {r} moved off the dead rank");
                assert!(survivors.contains(&(q.owner[r] as usize)));
            } else {
                assert_eq!(q.owner[r], p.owner[r], "read {r} untouched");
            }
        }
        assert_eq!(q.bytes[3], 0);
        assert_eq!(q.bytes.iter().sum::<u64>(), p.bytes.iter().sum::<u64>());
        // Deterministic: every survivor computes the same remap.
        assert_eq!(q, p.takeover_remap(&lens, 3, &survivors));
    }
}
