//! Overlap-graph post-processing: the first steps any assembler takes with
//! the pipeline's output.
//!
//! The paper positions its code as reusable "in genomics pipelines" —
//! overlap detection feeds *de novo* assembly, whose string-graph
//! construction (Myers 2005) starts with exactly these steps:
//!
//! 1. [`remove_contained`] — reads whose alignment is spanned end-to-end
//!    by another read carry no assembly information;
//! 2. [`transitive_reduction`] — if A→B, B→C, and A→C all overlap
//!    consistently, the A→C edge is implied and removable;
//! 3. [`unitigs`] — maximal unambiguous (in-degree ≤ 1, out-degree ≤ 1)
//!    paths, the contigs-before-repeat-resolution.

use gnb_align::{AlignmentRecord, OverlapClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A directed overlap edge in suffix→prefix orientation: `from`'s suffix
/// matches `to`'s prefix, advancing by `advance` bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapEdge {
    /// Source read.
    pub from: u32,
    /// Destination read.
    pub to: u32,
    /// Bases of `from` not covered by the overlap (the walk step).
    pub advance: u32,
    /// Alignment score of the supporting overlap.
    pub score: i32,
}

/// The directed overlap graph built from accepted dovetail alignments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapGraph {
    /// Out-edges per read.
    pub edges: BTreeMap<u32, Vec<OverlapEdge>>,
    /// Reads marked contained (excluded from the graph).
    pub contained: BTreeSet<u32>,
}

impl OverlapGraph {
    /// Total directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|v| v.len()).sum()
    }

    /// Out-degree of `read`.
    pub fn out_degree(&self, read: u32) -> usize {
        self.edges.get(&read).map_or(0, |v| v.len())
    }
}

/// Identifies contained reads: any read whose accepted alignment is
/// classified as contained in its partner.
pub fn remove_contained(records: &[&AlignmentRecord]) -> BTreeSet<u32> {
    let mut contained = BTreeSet::new();
    for rec in records {
        match rec.class {
            OverlapClass::ContainsB => {
                contained.insert(rec.b);
            }
            OverlapClass::ContainedInB => {
                contained.insert(rec.a);
            }
            _ => {}
        }
    }
    contained
}

/// Builds the suffix→prefix overlap graph from accepted records,
/// excluding contained reads.
///
/// Only same-strand dovetails are used (opposite-strand edges require the
/// bidirected string-graph formalism; restricting to one strand keeps this
/// a faithful *first step*, not a full assembler).
pub fn build_graph(records: &[&AlignmentRecord], read_lengths: &[usize]) -> OverlapGraph {
    let contained = remove_contained(records);
    let mut g = OverlapGraph {
        edges: BTreeMap::new(),
        contained: contained.clone(),
    };
    for rec in records {
        if !rec.same_strand || contained.contains(&rec.a) || contained.contains(&rec.b) {
            continue;
        }
        match rec.class {
            // Suffix of a matches prefix of b: a -> b.
            OverlapClass::DovetailAB => {
                let advance = rec.a_begin; // unaligned prefix of a
                let _ = read_lengths;
                g.edges.entry(rec.a).or_default().push(OverlapEdge {
                    from: rec.a,
                    to: rec.b,
                    advance,
                    score: rec.score,
                });
            }
            // Suffix of b matches prefix of a: b -> a.
            OverlapClass::DovetailBA => {
                let advance = rec.b_begin;
                g.edges.entry(rec.b).or_default().push(OverlapEdge {
                    from: rec.b,
                    to: rec.a,
                    advance,
                    score: rec.score,
                });
            }
            _ => {}
        }
    }
    // Deterministic edge order: by destination.
    for v in g.edges.values_mut() {
        v.sort_by_key(|e| (e.advance, e.to));
        v.dedup_by_key(|e| e.to);
    }
    g
}

/// Myers-style transitive reduction: removes edges `A→C` when some `A→B`
/// and `B→C` exist with approximately consistent advances
/// (`|adv(A→B) + adv(B→C) − adv(A→C)| ≤ slop`). Returns removed count.
pub fn transitive_reduction(g: &mut OverlapGraph, slop: u32) -> usize {
    let mut to_remove: Vec<(u32, u32)> = Vec::new();
    for (&a, a_edges) in &g.edges {
        for ac in a_edges {
            for ab in a_edges {
                if ab.to == ac.to {
                    continue;
                }
                if let Some(b_edges) = g.edges.get(&ab.to) {
                    for bc in b_edges {
                        if bc.to == ac.to {
                            let via = ab.advance as i64 + bc.advance as i64;
                            if (via - ac.advance as i64).unsigned_abs() as u32 <= slop {
                                to_remove.push((a, ac.to));
                            }
                        }
                    }
                }
            }
        }
    }
    let mut removed = 0;
    for (a, c) in to_remove {
        if let Some(v) = g.edges.get_mut(&a) {
            let before = v.len();
            v.retain(|e| e.to != c);
            removed += before - v.len();
        }
    }
    removed
}

/// A maximal unambiguous path through the reduced graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unitig {
    /// Reads along the path, in order.
    pub reads: Vec<u32>,
    /// Approximate span in bases: sum of advances plus the last read.
    pub approx_len: usize,
}

/// Extracts unitigs: maximal chains where each interior node has exactly
/// one incoming and one outgoing used edge. Singleton (isolated,
/// non-contained) reads form one-read unitigs.
pub fn unitigs(g: &OverlapGraph, read_lengths: &[usize]) -> Vec<Unitig> {
    // In-degree over the (possibly reduced) graph.
    let mut indeg: BTreeMap<u32, usize> = BTreeMap::new();
    let mut nodes: BTreeSet<u32> = BTreeSet::new();
    for (&a, edges) in &g.edges {
        nodes.insert(a);
        for e in edges {
            nodes.insert(e.to);
            *indeg.entry(e.to).or_default() += 1;
        }
    }
    // Also include isolated reads (no edges, not contained).
    for r in 0..read_lengths.len() as u32 {
        if !g.contained.contains(&r) {
            nodes.insert(r);
        }
    }

    let next_of = |r: u32| -> Option<&OverlapEdge> {
        match g.edges.get(&r) {
            Some(v) if v.len() == 1 => Some(&v[0]),
            _ => None,
        }
    };
    let unambiguous_in = |r: u32| indeg.get(&r).copied().unwrap_or(0) == 1;

    let mut visited: BTreeSet<u32> = BTreeSet::new();
    let mut out = Vec::new();
    let mut ordered: Vec<u32> = nodes.iter().copied().collect();
    ordered.sort_unstable();
    for &start in &ordered {
        if visited.contains(&start) {
            continue;
        }
        // Start only at path heads: nodes that are not the unambiguous
        // continuation of something else.
        let is_head = !unambiguous_in(start)
            || !g
                .edges
                .iter()
                .any(|(_, es)| es.len() == 1 && es[0].to == start);
        if !is_head {
            continue;
        }
        let mut reads = vec![start];
        let mut span = 0usize;
        visited.insert(start);
        let mut cur = start;
        while let Some(e) = next_of(cur) {
            if visited.contains(&e.to) || !unambiguous_in(e.to) {
                break;
            }
            span += e.advance as usize;
            cur = e.to;
            visited.insert(cur);
            reads.push(cur);
        }
        span += read_lengths.get(cur as usize).copied().unwrap_or(0);
        out.push(Unitig {
            reads,
            approx_len: span,
        });
    }
    // Anything not visited (cycle members, ambiguous interiors) becomes a
    // singleton so every read is accounted for exactly once.
    for &r in &ordered {
        if !visited.contains(&r) {
            out.push(Unitig {
                reads: vec![r],
                approx_len: read_lengths.get(r as usize).copied().unwrap_or(0),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(a: u32, b: u32, class: OverlapClass, a_begin: u32, b_begin: u32) -> AlignmentRecord {
        AlignmentRecord {
            a,
            b,
            score: 500,
            a_begin,
            a_end: 1000,
            b_begin,
            b_end: 1000,
            same_strand: true,
            class,
            cells: 0,
            accepted: true,
        }
    }

    #[test]
    fn containment_detection() {
        let r1 = rec(0, 1, OverlapClass::ContainsB, 0, 0);
        let r2 = rec(2, 3, OverlapClass::ContainedInB, 0, 0);
        let set = remove_contained(&[&r1, &r2]);
        assert!(set.contains(&1));
        assert!(set.contains(&2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn chain_builds_and_reduces() {
        // 0 -> 1 -> 2 with a transitive 0 -> 2.
        let e01 = rec(0, 1, OverlapClass::DovetailAB, 400, 0);
        let e12 = rec(1, 2, OverlapClass::DovetailAB, 400, 0);
        let e02 = rec(0, 2, OverlapClass::DovetailAB, 800, 0);
        let lengths = vec![1000usize; 3];
        let mut g = build_graph(&[&e01, &e12, &e02], &lengths);
        assert_eq!(g.edge_count(), 3);
        let removed = transitive_reduction(&mut g, 50);
        assert_eq!(removed, 1);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.edges[&0][0].to, 1);
    }

    #[test]
    fn inconsistent_advance_not_reduced() {
        let e01 = rec(0, 1, OverlapClass::DovetailAB, 400, 0);
        let e12 = rec(1, 2, OverlapClass::DovetailAB, 400, 0);
        // 0->2 with advance wildly different from 400+400.
        let e02 = rec(0, 2, OverlapClass::DovetailAB, 100, 0);
        let lengths = vec![1000usize; 3];
        let mut g = build_graph(&[&e01, &e12, &e02], &lengths);
        assert_eq!(transitive_reduction(&mut g, 50), 0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn unitig_chain() {
        let e01 = rec(0, 1, OverlapClass::DovetailAB, 400, 0);
        let e12 = rec(1, 2, OverlapClass::DovetailAB, 400, 0);
        let e23 = rec(2, 3, OverlapClass::DovetailAB, 400, 0);
        let lengths = vec![1000usize; 4];
        let g = build_graph(&[&e01, &e12, &e23], &lengths);
        let us = unitigs(&g, &lengths);
        assert_eq!(us.len(), 1);
        assert_eq!(us[0].reads, vec![0, 1, 2, 3]);
        assert_eq!(us[0].approx_len, 3 * 400 + 1000);
    }

    #[test]
    fn branch_splits_unitigs() {
        // 0 -> 1 and 0 -> 2: ambiguous out-degree stops the chain at 0.
        let e01 = rec(0, 1, OverlapClass::DovetailAB, 400, 0);
        let e02 = rec(0, 2, OverlapClass::DovetailAB, 500, 0);
        let lengths = vec![1000usize; 3];
        let g = build_graph(&[&e01, &e02], &lengths);
        let us = unitigs(&g, &lengths);
        // Three unitigs: {0}, {1}, {2}.
        assert_eq!(us.len(), 3);
        assert!(us.iter().all(|u| u.reads.len() == 1));
    }

    #[test]
    fn contained_reads_excluded_from_graph() {
        let cont = rec(0, 1, OverlapClass::ContainsB, 0, 0);
        let dove = rec(1, 2, OverlapClass::DovetailAB, 400, 0); // 1 is contained
        let lengths = vec![1000usize; 3];
        let g = build_graph(&[&cont, &dove], &lengths);
        assert_eq!(g.edge_count(), 0);
        assert!(g.contained.contains(&1));
        // Unitigs: contained read 1 excluded; 0 and 2 singletons.
        let us = unitigs(&g, &lengths);
        let all: Vec<u32> = us.iter().flat_map(|u| u.reads.clone()).collect();
        assert!(all.contains(&0) && all.contains(&2) && !all.contains(&1));
    }

    #[test]
    fn dovetail_ba_direction() {
        // Suffix of b matches prefix of a: edge b -> a.
        let e = rec(5, 7, OverlapClass::DovetailBA, 0, 300);
        let lengths = vec![1000usize; 8];
        let g = build_graph(&[&e], &lengths);
        assert_eq!(g.out_degree(7), 1);
        assert_eq!(g.edges[&7][0].to, 5);
        assert_eq!(g.edges[&7][0].advance, 300);
    }

    #[test]
    fn opposite_strand_edges_skipped() {
        let mut e = rec(0, 1, OverlapClass::DovetailAB, 400, 0);
        e.same_strand = false;
        let lengths = vec![1000usize; 2];
        let g = build_graph(&[&e], &lengths);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn every_read_in_exactly_one_unitig() {
        let e01 = rec(0, 1, OverlapClass::DovetailAB, 400, 0);
        let e12 = rec(1, 2, OverlapClass::DovetailAB, 400, 0);
        let e32 = rec(3, 2, OverlapClass::DovetailAB, 500, 0); // 2 has indeg 2
        let lengths = vec![1000usize; 5]; // read 4 isolated
        let g = build_graph(&[&e01, &e12, &e32], &lengths);
        let us = unitigs(&g, &lengths);
        let mut seen: Vec<u32> = us.iter().flat_map(|u| u.reads.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
