//! Local task stores: flat arrays versus pointer-based containers.
//!
//! Paper §4.6 / Fig. 13: "The bulk-synchronous code uses flat arrays,
//! achieving better locality. The asynchronous code uses C++ standard
//! library data structures; while the code is more object-oriented and
//! readable, the trade-off is higher performance overheads."
//!
//! Both stores hold the same logical content — a rank's tasks grouped by
//! the remote read they wait on (local tasks under [`LOCAL_GROUP`]) — and
//! both expose the same traversal. [`FlatTaskStore`] is a
//! structure-of-arrays with contiguous group extents;
//! [`PointerTaskStore`] is a `BTreeMap` of individually boxed task nodes,
//! deliberately reproducing the pointer-chasing access pattern of the
//! paper's async code. `bench_store` and `expt_f13` measure the traversal
//! gap.

use gnb_align::Candidate;
use gnb_sim::ckpt::{Checkpointable, CkptReader, CkptWriter};

/// Group key for tasks whose reads are both local.
pub const LOCAL_GROUP: u32 = u32::MAX;

/// Serialises one candidate into the checkpoint codec (a free function:
/// `Candidate` lives in `gnb-align`, which does not depend on `gnb-sim`).
fn ckpt_candidate(c: &Candidate, w: &mut CkptWriter) {
    w.u32(c.a);
    w.u32(c.b);
    w.u32(c.a_pos);
    w.u32(c.b_pos);
    w.bool(c.same_strand);
}

fn restore_candidate(r: &mut CkptReader<'_>) -> Candidate {
    Candidate {
        a: r.u32(),
        b: r.u32(),
        a_pos: r.u32(),
        b_pos: r.u32(),
        same_strand: r.bool(),
    }
}

/// Shared checkpoint layout for any [`TaskStore`]: the grouped content,
/// group keys ascending. Both store flavours restore via
/// [`TaskStore::from_groups`], so a checkpoint written by one layout can
/// be restored into the other (a survivor may use a different store than
/// the rank that died).
fn ckpt_store<S: TaskStore>(s: &S, w: &mut CkptWriter) {
    w.usize(s.group_count());
    let mut cur: Option<u32> = None;
    let mut pending: Vec<Candidate> = Vec::new();
    let flush = |key: Option<u32>, tasks: &mut Vec<Candidate>, w: &mut CkptWriter| {
        if let Some(k) = key {
            w.u32(k);
            w.usize(tasks.len());
            for t in tasks.drain(..) {
                ckpt_candidate(&t, w);
            }
        }
    };
    s.traverse(&mut |k, c| {
        if cur != Some(k) {
            flush(cur, &mut pending, w);
            cur = Some(k);
        }
        pending.push(*c);
    });
    flush(cur, &mut pending, w);
}

fn restore_store<S: TaskStore>(r: &mut CkptReader<'_>) -> S {
    let ngroups = r.usize();
    let groups = (0..ngroups)
        .map(|_| {
            let key = r.u32();
            let n = r.usize();
            (key, (0..n).map(|_| restore_candidate(r)).collect())
        })
        .collect();
    S::from_groups(groups)
}

/// A store of grouped alignment tasks with a uniform traversal interface.
pub trait TaskStore {
    /// Builds the store from `(group key, tasks)` pairs.
    fn from_groups(groups: Vec<(u32, Vec<Candidate>)>) -> Self
    where
        Self: Sized;

    /// Visits every task, group by group (ascending group key), yielding
    /// the group key and the task.
    fn traverse(&self, visit: &mut dyn FnMut(u32, &Candidate));

    /// Total number of tasks stored.
    fn task_count(&self) -> usize;

    /// Number of groups.
    fn group_count(&self) -> usize;
}

/// Flat structure-of-arrays store (the BSP code's layout).
#[derive(Debug, Clone, Default)]
pub struct FlatTaskStore {
    group_keys: Vec<u32>,
    /// `group_offsets[g]..group_offsets[g+1]` indexes the arrays below.
    group_offsets: Vec<u32>,
    a: Vec<u32>,
    b: Vec<u32>,
    a_pos: Vec<u32>,
    b_pos: Vec<u32>,
    same_strand: Vec<bool>,
}

impl FlatTaskStore {
    /// Tasks of group `g` reconstructed by index (used by the BSP engine).
    pub fn group_range(&self, g: usize) -> std::ops::Range<usize> {
        self.group_offsets[g] as usize..self.group_offsets[g + 1] as usize
    }

    /// The group keys, ascending.
    pub fn keys(&self) -> &[u32] {
        &self.group_keys
    }

    /// Materialises task `i`.
    pub fn task(&self, i: usize) -> Candidate {
        Candidate {
            a: self.a[i],
            b: self.b[i],
            a_pos: self.a_pos[i],
            b_pos: self.b_pos[i],
            same_strand: self.same_strand[i],
        }
    }

    /// Monomorphised traversal (no dynamic dispatch) for benchmarking the
    /// pure layout effect.
    pub fn traverse_with<F: FnMut(u32, &Candidate)>(&self, mut visit: F) {
        for (g, &key) in self.group_keys.iter().enumerate() {
            for i in self.group_range(g) {
                let c = self.task(i);
                visit(key, &c);
            }
        }
    }
}

impl TaskStore for FlatTaskStore {
    fn from_groups(mut groups: Vec<(u32, Vec<Candidate>)>) -> Self {
        groups.sort_by_key(|&(k, _)| k);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        let mut s = FlatTaskStore {
            group_keys: Vec::with_capacity(groups.len()),
            group_offsets: Vec::with_capacity(groups.len() + 1),
            a: Vec::with_capacity(total),
            b: Vec::with_capacity(total),
            a_pos: Vec::with_capacity(total),
            b_pos: Vec::with_capacity(total),
            same_strand: Vec::with_capacity(total),
        };
        s.group_offsets.push(0);
        for (key, tasks) in groups {
            s.group_keys.push(key);
            for t in tasks {
                s.a.push(t.a);
                s.b.push(t.b);
                s.a_pos.push(t.a_pos);
                s.b_pos.push(t.b_pos);
                s.same_strand.push(t.same_strand);
            }
            s.group_offsets.push(s.a.len() as u32);
        }
        s
    }

    fn traverse(&self, visit: &mut dyn FnMut(u32, &Candidate)) {
        self.traverse_with(|k, c| visit(k, c));
    }

    fn task_count(&self) -> usize {
        self.a.len()
    }

    fn group_count(&self) -> usize {
        self.group_keys.len()
    }
}

/// Pointer-based store (the async code's layout): a `BTreeMap` of vectors
/// of individually heap-allocated task nodes.
#[derive(Debug, Default)]
pub struct PointerTaskStore {
    // The Box per task is the point: Fig. 13 measures the cost of
    // pointer-chasing layouts, so every node is a separate allocation.
    #[allow(clippy::vec_box)]
    groups: std::collections::BTreeMap<u32, Vec<Box<Candidate>>>,
}

impl PointerTaskStore {
    /// Monomorphised traversal (no dynamic dispatch).
    pub fn traverse_with<F: FnMut(u32, &Candidate)>(&self, mut visit: F) {
        for (&key, tasks) in &self.groups {
            for t in tasks {
                visit(key, t);
            }
        }
    }

    /// Tasks waiting on `key`, if any (used by the async engine's
    /// callback: "once a remote read b arrives, all alignment computations
    /// involving b are executed").
    pub fn group(&self, key: u32) -> Option<&[Box<Candidate>]> {
        self.groups.get(&key).map(|v| v.as_slice())
    }
}

impl TaskStore for PointerTaskStore {
    fn from_groups(groups: Vec<(u32, Vec<Candidate>)>) -> Self {
        let mut s = PointerTaskStore::default();
        for (key, tasks) in groups {
            s.groups
                .entry(key)
                .or_default()
                .extend(tasks.into_iter().map(Box::new));
        }
        s
    }

    fn traverse(&self, visit: &mut dyn FnMut(u32, &Candidate)) {
        self.traverse_with(|k, c| visit(k, c));
    }

    fn task_count(&self) -> usize {
        self.groups.values().map(|v| v.len()).sum()
    }

    fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl Checkpointable for FlatTaskStore {
    fn checkpoint(&self, w: &mut CkptWriter) {
        ckpt_store(self, w);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        restore_store(r)
    }
}

impl Checkpointable for PointerTaskStore {
    fn checkpoint(&self, w: &mut CkptWriter) {
        ckpt_store(self, w);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        restore_store(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(a: u32, b: u32, pos: u32) -> Candidate {
        Candidate {
            a,
            b,
            a_pos: pos,
            b_pos: pos + 1,
            same_strand: a.is_multiple_of(2),
        }
    }

    fn sample_groups() -> Vec<(u32, Vec<Candidate>)> {
        vec![
            (7, vec![cand(0, 7, 3), cand(1, 7, 9)]),
            (LOCAL_GROUP, vec![cand(0, 1, 0)]),
            (3, vec![cand(1, 3, 5)]),
        ]
    }

    fn collect<S: TaskStore>(s: &S) -> Vec<(u32, Candidate)> {
        let mut out = Vec::new();
        s.traverse(&mut |k, c| out.push((k, *c)));
        out
    }

    #[test]
    fn both_stores_agree() {
        let flat = FlatTaskStore::from_groups(sample_groups());
        let ptr = PointerTaskStore::from_groups(sample_groups());
        assert_eq!(collect(&flat), collect(&ptr));
        assert_eq!(flat.task_count(), 4);
        assert_eq!(ptr.task_count(), 4);
        assert_eq!(flat.group_count(), 3);
        assert_eq!(ptr.group_count(), 3);
    }

    #[test]
    fn traversal_is_group_ordered() {
        let flat = FlatTaskStore::from_groups(sample_groups());
        let keys: Vec<u32> = collect(&flat).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, 7, 7, LOCAL_GROUP]);
    }

    #[test]
    fn flat_group_access() {
        let flat = FlatTaskStore::from_groups(sample_groups());
        assert_eq!(flat.keys(), &[3, 7, LOCAL_GROUP]);
        assert_eq!(flat.group_range(1), 1..3);
        assert_eq!(flat.task(1), cand(0, 7, 3));
    }

    #[test]
    fn pointer_group_lookup() {
        let ptr = PointerTaskStore::from_groups(sample_groups());
        assert_eq!(ptr.group(7).unwrap().len(), 2);
        assert!(ptr.group(99).is_none());
    }

    #[test]
    fn empty_stores() {
        let flat = FlatTaskStore::from_groups(vec![]);
        let ptr = PointerTaskStore::from_groups(vec![]);
        assert_eq!(flat.task_count(), 0);
        assert_eq!(ptr.task_count(), 0);
        assert_eq!(collect(&flat), vec![]);
        assert_eq!(collect(&ptr), vec![]);
    }

    #[test]
    fn duplicate_group_keys_merge_in_pointer_store() {
        let groups = vec![(5, vec![cand(0, 5, 1)]), (5, vec![cand(1, 5, 2)])];
        let ptr = PointerTaskStore::from_groups(groups);
        assert_eq!(ptr.group(5).unwrap().len(), 2);
        assert_eq!(ptr.group_count(), 1);
    }

    #[test]
    fn checkpoints_round_trip_and_cross_restore() {
        let flat = FlatTaskStore::from_groups(sample_groups());
        let ptr = PointerTaskStore::from_groups(sample_groups());
        // Both layouts serialise the same logical content to the same
        // bytes, so either can restore the other's checkpoint.
        let fb = flat.to_ckpt_bytes();
        let pb = ptr.to_ckpt_bytes();
        assert_eq!(fb, pb, "layout-independent checkpoint bytes");
        assert_eq!(
            collect(&FlatTaskStore::from_ckpt_bytes(&pb)),
            collect(&flat)
        );
        assert_eq!(
            collect(&PointerTaskStore::from_ckpt_bytes(&fb)),
            collect(&ptr)
        );
        // Empty stores round-trip too.
        let empty = FlatTaskStore::from_groups(vec![]);
        assert_eq!(
            FlatTaskStore::from_ckpt_bytes(&empty.to_ckpt_bytes()).task_count(),
            0
        );
    }
}
