//! Property-based tests for partitioning, redistribution, exchange
//! planning, and the task stores.

use gnb_align::Candidate;
use gnb_overlap::exchange::ExchangePlan;
use gnb_overlap::partition::Partition;
use gnb_overlap::redistribute::{RankWork, TaskAssignment};
use gnb_overlap::store::{FlatTaskStore, PointerTaskStore, TaskStore};
use proptest::prelude::*;

fn lengths(max_reads: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(50usize..5000, 1..max_reads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The blind partition covers all reads contiguously and conserves
    /// bytes.
    #[test]
    fn partition_covers(lens in lengths(200), nranks in 1usize..20) {
        let p = Partition::blind(&lens, nranks);
        prop_assert_eq!(p.ranges.len(), nranks);
        prop_assert_eq!(p.ranges[0].0, 0);
        for w in p.ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        prop_assert_eq!(p.ranges.last().unwrap().1 as usize, lens.len());
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        prop_assert_eq!(p.bytes.iter().sum::<u64>(), total);
        for (r, &o) in p.owner.iter().enumerate() {
            let (b, e) = p.ranges[o as usize];
            prop_assert!((b as usize) <= r && r < e as usize);
        }
    }

    /// Redistribution preserves the ownership invariant, conserves tasks,
    /// and balances counts within 1 of optimal when both endpoints are
    /// always available.
    #[test]
    fn assignment_invariant(lens in lengths(100), nranks in 1usize..12, seed in any::<u64>()) {
        let n = lens.len();
        // Derived pseudo-random tasks (cheaper than a nested strategy).
        let mut tasks = Vec::new();
        let mut z = seed;
        for _ in 0..(n * 4).min(600) {
            z = z.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (z >> 33) as usize % n;
            z = z.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = (z >> 33) as usize % n;
            if a == b { continue; }
            tasks.push(Candidate {
                a: a.min(b) as u32,
                b: a.max(b) as u32,
                a_pos: 0,
                b_pos: 0,
                same_strand: true,
            });
        }
        let p = Partition::blind(&lens, nranks);
        let asg = TaskAssignment::build(&tasks, &p);
        prop_assert!(asg.check_invariant(&p).is_ok());
        prop_assert_eq!(asg.total_tasks(), tasks.len());
    }

    /// RankWork splits conserve tasks and never group local reads.
    #[test]
    fn rankwork_conserves(lens in lengths(60), nranks in 1usize..8) {
        let n = lens.len() as u32;
        let tasks: Vec<Candidate> = (0..n)
            .flat_map(|a| ((a + 1)..n.min(a + 5)).map(move |b| Candidate {
                a, b, a_pos: 0, b_pos: 0, same_strand: true,
            }))
            .collect();
        let p = Partition::blind(&lens, nranks);
        let asg = TaskAssignment::build(&tasks, &p);
        let mut total = 0usize;
        for r in 0..nranks {
            let w = RankWork::split(r, &asg.per_rank[r], &p);
            total += w.total_tasks();
            for (read, group_tasks) in &w.remote_groups {
                prop_assert!(p.owner[*read as usize] as usize != r);
                prop_assert!(!group_tasks.is_empty());
            }
        }
        prop_assert_eq!(total, tasks.len());
    }

    /// Exchange plan: global send == global recv, rows consistent.
    #[test]
    fn exchange_symmetry(lens in lengths(60), nranks in 1usize..8) {
        let n = lens.len() as u32;
        let tasks: Vec<Candidate> = (0..n)
            .flat_map(|a| ((a + 1)..n.min(a + 4)).map(move |b| Candidate {
                a, b, a_pos: 0, b_pos: 0, same_strand: true,
            }))
            .collect();
        let p = Partition::blind(&lens, nranks);
        let asg = TaskAssignment::build(&tasks, &p);
        let works: Vec<RankWork> = (0..nranks)
            .map(|r| RankWork::split(r, &asg.per_rank[r], &p))
            .collect();
        let plan = ExchangePlan::build(&works, &p, &lens);
        prop_assert_eq!(
            plan.send_bytes.iter().sum::<u64>(),
            plan.recv_bytes.iter().sum::<u64>()
        );
        for q in 0..nranks {
            prop_assert_eq!(plan.pair_bytes[q].iter().sum::<u64>(), plan.recv_bytes[q]);
        }
        prop_assert!(plan.max_recv() >= plan.min_recv());
    }

    /// Flat and pointer stores traverse identical content.
    #[test]
    fn stores_agree(groups in proptest::collection::vec(
        (0u32..50, proptest::collection::vec((0u32..100, 0u32..100), 1..6)),
        0..12
    )) {
        // Dedup group keys (pointer store merges; flat keeps separate) by
        // making keys unique.
        let mut seen = std::collections::HashSet::new();
        let groups: Vec<(u32, Vec<Candidate>)> = groups
            .into_iter()
            .filter(|(k, _)| seen.insert(*k))
            .map(|(k, ts)| {
                (
                    k,
                    ts.into_iter()
                        .map(|(a, b)| Candidate {
                            a,
                            b: b + 100,
                            a_pos: 0,
                            b_pos: 0,
                            same_strand: (a + b) % 2 == 0,
                        })
                        .collect(),
                )
            })
            .collect();
        let flat = FlatTaskStore::from_groups(groups.clone());
        let ptr = PointerTaskStore::from_groups(groups.clone());
        #[allow(clippy::type_complexity)]
        let collect = |s: &dyn Fn(&mut dyn FnMut(u32, &Candidate))| {
            let mut out = Vec::new();
            s(&mut |k, c| out.push((k, *c)));
            out
        };
        let f = collect(&|v| flat.traverse(v));
        let g = collect(&|v| ptr.traverse(v));
        prop_assert_eq!(f, g);
        prop_assert_eq!(flat.task_count(), ptr.task_count());
        prop_assert_eq!(flat.group_count(), ptr.group_count());
    }
}
