//! Analysis of `gnb-sim` observability recordings (`.gnbtrace` files).
//!
//! The library half of the `gnb-trace` binary: each subcommand is a pure
//! `Obs -> String` function so tests can pin outputs byte-for-byte
//! without spawning processes.
//!
//! * [`summarize`] — record counts, truncation status (dropped spans are
//!   *surfaced*, never silently absorbed), per-category busy totals,
//!   per-kind node/instant tallies, final metric values;
//! * [`export`] — Chrome-trace-event / Perfetto JSON
//!   (re-exported engine: [`gnb_sim::export::chrome_trace_json`]);
//! * [`critical_path_report`] — the virtual-time critical path attributed
//!   by category ([`gnb_sim::cpath`]);
//! * [`diff`] — first-divergence comparison of two recordings.
//!
//! Everything is deterministic: same recording in, same bytes out.

#![warn(missing_docs)]

use gnb_sim::cpath::critical_path;
use gnb_sim::engine::CATEGORIES;
use gnb_sim::export::{chrome_trace_json, CATEGORY_NAMES};
use gnb_sim::obs::{EdgeKind, InstantKind, MetricId, Obs, GLOBAL_RANK};
use std::fmt::Write as _;

/// Parses a `.gnbtrace` file's text.
pub fn parse(text: &str) -> Result<Obs, String> {
    Obs::from_text(text)
}

/// Renders the human summary of a recording.
pub fn summarize(obs: &Obs) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gnbtrace: {} ranks, end {} ns",
        obs.nranks,
        obs.end_time.as_ns()
    );
    let _ = writeln!(
        out,
        "records: {} nodes, {} spans, {} instants, {} stalls, {} series",
        obs.nodes.len(),
        obs.spans.len(),
        obs.instants.len(),
        obs.stalls.len(),
        obs.series.len()
    );
    if obs.is_truncated() {
        let _ = writeln!(
            out,
            "TRUNCATED: dropped {} nodes, {} spans, {} instants, {} samples; {} unresolved edges",
            obs.dropped_nodes,
            obs.dropped_spans,
            obs.dropped_instants,
            obs.dropped_samples(),
            obs.unresolved_edges
        );
    } else {
        let _ = writeln!(out, "complete: no records dropped");
    }
    let _ = writeln!(out, "dispatches by kind:");
    for kind in [
        EdgeKind::Start,
        EdgeKind::Message,
        EdgeKind::Timer,
        EdgeKind::Barrier,
    ] {
        let n = obs.nodes.iter().filter(|n| n.kind == kind).count();
        if n > 0 {
            let _ = writeln!(out, "  {:<10} {:>10}", kind.name(), n);
        }
    }
    let _ = writeln!(out, "busy time by category (all ranks):");
    let totals = obs.busy_totals_ns();
    for c in 0..CATEGORIES {
        if totals[c] > 0 {
            let _ = writeln!(out, "  {:<10} {:>16} ns", CATEGORY_NAMES[c], totals[c]);
        }
    }
    if !obs.instants.is_empty() {
        let _ = writeln!(out, "instants by kind:");
        for kind in [
            InstantKind::MsgDropped,
            InstantKind::MsgDuplicated,
            InstantKind::Retry,
            InstantKind::DupReply,
            InstantKind::GiveUp,
            InstantKind::InjectedDrop,
            InstantKind::Crash,
            InstantKind::Takeover,
            InstantKind::Restore,
        ] {
            let n = obs.instants.iter().filter(|i| i.kind == kind).count();
            if n > 0 {
                let _ = writeln!(out, "  {:<10} {:>10}", kind.name(), n);
            }
        }
        // Crash-recovery narrative, per rank. Emitted only when a crash
        // schedule actually fired, so crash-free recordings summarize
        // byte-identically to pre-crash builds.
        let crash_kinds = [
            InstantKind::Crash,
            InstantKind::Takeover,
            InstantKind::Restore,
        ];
        if obs.instants.iter().any(|i| crash_kinds.contains(&i.kind)) {
            let _ = writeln!(out, "crash recovery by rank:");
            for rank in 0..obs.nranks {
                let count = |kind: InstantKind| {
                    obs.instants
                        .iter()
                        .filter(|i| i.kind == kind && i.rank == rank as u32)
                        .count()
                };
                let (c, t, r) = (
                    count(InstantKind::Crash),
                    count(InstantKind::Takeover),
                    count(InstantKind::Restore),
                );
                if c + t + r > 0 {
                    let _ = writeln!(
                        out,
                        "  r{rank:<4} {c:>6} crashes {t:>6} takeovers {r:>6} restores"
                    );
                }
            }
        }
    }
    if !obs.series.is_empty() {
        let _ = writeln!(out, "metrics (final values):");
        for s in &obs.series {
            let rank = if s.rank == GLOBAL_RANK {
                "all".to_string()
            } else {
                format!("r{}", s.rank)
            };
            let _ = writeln!(
                out,
                "  {:<16} {:<5} {:>16}  ({} samples{})",
                s.metric.name(),
                rank,
                s.last_value(),
                s.samples.len(),
                if s.dropped > 0 {
                    format!(", {} dropped", s.dropped)
                } else {
                    String::new()
                }
            );
        }
    }
    out
}

/// Exports a recording as Chrome-trace-event / Perfetto JSON.
pub fn export(obs: &Obs) -> String {
    chrome_trace_json(obs)
}

/// Renders the critical-path attribution table (or the refusal message
/// for a truncated recording as `Err`).
pub fn critical_path_report(obs: &Obs) -> Result<String, String> {
    critical_path(obs).map(|cp| cp.render())
}

/// Compares two recordings; reports the first diverging record line of
/// their canonical text forms, or declares them identical.
pub fn diff(a: &Obs, b: &Obs) -> String {
    let ta = a.to_text();
    let tb = b.to_text();
    if ta == tb {
        return "traces are identical\n".to_string();
    }
    let mut out = String::new();
    for (i, (la, lb)) in ta.lines().zip(tb.lines()).enumerate() {
        if la != lb {
            let _ = writeln!(out, "first divergence at record line {}:", i + 1);
            let _ = writeln!(out, "  a: {la}");
            let _ = writeln!(out, "  b: {lb}");
            return out;
        }
    }
    let (na, nb) = (ta.lines().count(), tb.lines().count());
    let _ = writeln!(
        out,
        "traces agree on the first {} lines; lengths differ ({} vs {})",
        na.min(nb),
        na,
        nb
    );
    out
}

/// A metric's sample series rendered as TSV (`time_ns<TAB>value`) —
/// feedstock for plotting a paper-style timeline.
pub fn series_tsv(obs: &Obs, metric: MetricId, rank: u32) -> Option<String> {
    let s = obs.get_series(metric, rank)?;
    let mut out = String::from("time_ns\tvalue\n");
    for (t, v) in &s.samples {
        let _ = writeln!(out, "{}\t{}", t.as_ns(), v);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_sim::obs::ObsConfig;
    use gnb_sim::{SimTime, TimeCategory};

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    fn sample_obs(cfg: ObsConfig) -> Obs {
        let mut o = Obs::new(cfg, 2);
        o.on_push(0, EdgeKind::Start, t(0), t(0));
        o.on_push(1, EdgeKind::Start, t(0), t(0));
        o.begin_dispatch(0, t(0), 0, 1);
        o.on_advance(0, t(0), t(120), TimeCategory::Compute);
        o.on_push(2, EdgeKind::Message, t(120), t(400));
        o.counter_add(MetricId::BytesSent, GLOBAL_RANK, t(120), 512);
        o.end_dispatch(t(120));
        o.begin_dispatch(1, t(0), 1, 1);
        o.end_dispatch(t(0));
        o.begin_dispatch(1, t(400), 2, 0);
        o.on_advance(1, t(400), t(450), TimeCategory::Overhead);
        o.instant(1, t(400), InstantKind::Retry, 9);
        o.end_dispatch(t(450));
        o.finish(t(450));
        o
    }

    #[test]
    fn summarize_complete_trace() {
        let s = summarize(&sample_obs(ObsConfig::default()));
        assert!(s.contains("2 ranks, end 450 ns"), "{s}");
        assert!(s.contains("complete: no records dropped"));
        assert!(s.contains("compute"));
        assert!(s.contains("bytes_sent"));
        assert!(s.contains("retry"));
        assert!(!s.contains("TRUNCATED"));
    }

    #[test]
    fn summarize_surfaces_dropped_spans() {
        let cfg = ObsConfig {
            max_spans: 1,
            ..ObsConfig::default()
        };
        let o = sample_obs(cfg);
        assert!(o.is_truncated());
        let s = summarize(&o);
        assert!(s.contains("TRUNCATED"), "{s}");
        assert!(s.contains("1 spans"), "dropped-span count surfaced: {s}");
    }

    #[test]
    fn critical_path_report_on_complete_trace() {
        let r = critical_path_report(&sample_obs(ObsConfig::default())).expect("complete");
        assert!(r.contains("wire"), "{r}");
        assert!(r.contains("450 ns  total"), "{r}");
    }

    #[test]
    fn critical_path_refuses_truncated() {
        let cfg = ObsConfig {
            max_spans: 1,
            ..ObsConfig::default()
        };
        let err = critical_path_report(&sample_obs(cfg)).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn diff_identical_and_divergent() {
        let a = sample_obs(ObsConfig::default());
        let b = sample_obs(ObsConfig::default());
        assert_eq!(diff(&a, &b), "traces are identical\n");
        let mut c = sample_obs(ObsConfig::default());
        c.instants[0].key = 1234;
        let d = diff(&a, &c);
        assert!(d.contains("first divergence"), "{d}");
        assert!(d.contains("1234"), "{d}");
    }

    #[test]
    fn round_trip_through_text() {
        let o = sample_obs(ObsConfig::default());
        let parsed = parse(&o.to_text()).expect("parse");
        assert_eq!(summarize(&parsed), summarize(&o));
        assert_eq!(export(&parsed), export(&o));
    }

    #[test]
    fn series_tsv_renders() {
        let o = sample_obs(ObsConfig::default());
        let tsv = series_tsv(&o, MetricId::BytesSent, GLOBAL_RANK).expect("series");
        assert_eq!(tsv, "time_ns\tvalue\n120\t512\n");
        assert!(series_tsv(&o, MetricId::MemCurrent, 0).is_none());
    }
}
