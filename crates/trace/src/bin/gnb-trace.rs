//! `gnb-trace`: analyze `.gnbtrace` observability recordings.
//!
//! ```text
//! gnb-trace summarize <FILE>            record counts, truncation, busy totals, metrics
//! gnb-trace export <FILE> [OUT.json]    Chrome-trace-event / Perfetto JSON (stdout default)
//! gnb-trace critical-path <FILE>        virtual-time critical path by category
//! gnb-trace diff <A> <B>                first divergence between two recordings
//! ```
//!
//! Exit codes: `0` success (for `diff`: traces identical), `1` analysis
//! refused (truncated trace) or traces differ, `2` usage or I/O error.

use std::process::ExitCode;

const USAGE: &str = "\
USAGE: gnb-trace <COMMAND>\n\
\n\
  summarize <FILE>           summarize a .gnbtrace recording\n\
  export <FILE> [OUT.json]   export as Chrome-trace/Perfetto JSON\n\
  critical-path <FILE>       critical-path attribution by category\n\
  diff <A> <B>               compare two recordings\n\
\n\
EXIT CODES: 0 ok/identical, 1 refused/different, 2 usage or I/O error\n";

fn load(path: &str) -> Result<gnb_sim::obs::Obs, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    gnb_trace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    // gnb-lint: allow(ambient-env, reason = "CLI argument parsing is this binary's input")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    match strs.as_slice() {
        ["summarize", file] => match load(file) {
            Ok(obs) => {
                print!("{}", gnb_trace::summarize(&obs));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gnb-trace: {e}");
                ExitCode::from(2)
            }
        },
        ["export", file, rest @ ..] if rest.len() <= 1 => match load(file) {
            Ok(obs) => {
                let json = gnb_trace::export(&obs);
                match rest.first() {
                    Some(out) => {
                        if let Err(e) = std::fs::write(out, &json) {
                            eprintln!("gnb-trace: cannot write {out}: {e}");
                            return ExitCode::from(2);
                        }
                        eprintln!("wrote {} bytes to {out}", json.len());
                    }
                    None => print!("{json}"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gnb-trace: {e}");
                ExitCode::from(2)
            }
        },
        ["critical-path", file] => match load(file) {
            Ok(obs) => match gnb_trace::critical_path_report(&obs) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gnb-trace: {e}");
                    ExitCode::from(1)
                }
            },
            Err(e) => {
                eprintln!("gnb-trace: {e}");
                ExitCode::from(2)
            }
        },
        ["diff", a, b] => match (load(a), load(b)) {
            (Ok(oa), Ok(ob)) => {
                let d = gnb_trace::diff(&oa, &ob);
                let identical = d.starts_with("traces are identical");
                print!("{d}");
                if identical {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("gnb-trace: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
