//! Deterministic random sampling helpers.
//!
//! The workspace needs log-normal (read lengths), normal, and Poisson
//! (k-mer multiplicity model checks) variates. To keep the dependency set to
//! the approved list, the distribution samplers are implemented here on top
//! of `rand`'s uniform source rather than pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard deterministic RNG from a `u64` seed.
///
/// Every generator in the repo threads an explicit seed so that datasets,
/// task graphs, and simulations are reproducible run-to-run.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a standard normal variate via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws `Normal(mean, sd)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * sample_standard_normal(rng)
}

/// A log-normal distribution parameterised by the *arithmetic* mean of the
/// variate and the standard deviation `sigma` of its natural logarithm.
///
/// Long-read length distributions are commonly modelled as log-normal; the
/// arithmetic-mean parameterisation makes preset design direct ("mean read
/// length 8 kbp") while `sigma` controls the heavy tail that drives the
/// paper's communication imbalance (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of ln X.
    pub mu: f64,
    /// Standard deviation of ln X.
    pub sigma: f64,
}

impl LogNormal {
    /// Builds the distribution from the arithmetic mean `E[X]` and log-space
    /// standard deviation `sigma`.
    ///
    /// Uses `E[X] = exp(mu + sigma^2 / 2)`, so `mu = ln(mean) - sigma^2/2`.
    ///
    /// # Panics
    /// Panics if `mean <= 0` or `sigma < 0`.
    pub fn from_mean_sigma(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive, got {mean}");
        assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
        LogNormal {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    /// Arithmetic mean `E[X]` of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Samples one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }
}

/// Draws a Poisson(λ) variate.
///
/// Uses Knuth's product-of-uniforms method for small λ and a rounded normal
/// approximation for large λ (adequate for the statistical checks this
/// workspace performs; never used in a hot path).
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = sample_normal(rng, lambda, lambda.sqrt());
        if x < 0.0 {
            0
        } else {
            x.round() as u64
        }
    }
}

/// Probability mass function of Poisson(λ) at `k`, computed in log space for
/// numerical stability at large λ.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    (kf * lambda.ln() - lambda - ln_factorial(k)).exp()
}

/// `ln(k!)` via Stirling's series for large `k`, exact summation for small.
pub fn ln_factorial(k: u64) -> f64 {
    if k < 32 {
        let mut acc = 0.0;
        for i in 2..=k {
            acc += (i as f64).ln();
        }
        acc
    } else {
        // Stirling's approximation with the 1/(12k) correction term.
        let kf = k as f64;
        kf * kf.ln() - kf + 0.5 * (2.0 * std::f64::consts::PI * kf).ln() + 1.0 / (12.0 * kf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = sample_standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_mean_parameterisation() {
        let d = LogNormal::from_mean_sigma(8000.0, 0.4);
        assert!((d.mean() - 8000.0).abs() < 1e-6);
        let mut rng = rng_from_seed(2);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += d.sample(&mut rng);
        }
        let emp = sum / n as f64;
        assert!(
            (emp - 8000.0).abs() / 8000.0 < 0.02,
            "empirical mean {emp} vs 8000"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lognormal_rejects_nonpositive_mean() {
        let _ = LogNormal::from_mean_sigma(0.0, 0.3);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = rng_from_seed(3);
        let lambda = 4.2;
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += sample_poisson(&mut rng, lambda);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = rng_from_seed(4);
        let lambda = 250.0;
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += sample_poisson(&mut rng, lambda);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() / lambda < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = rng_from_seed(5);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let lambda = 9.0;
        let total: f64 = (0..200).map(|k| poisson_pmf(lambda, k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn ln_factorial_consistency_at_boundary() {
        // Exact summation and Stirling must agree where they meet.
        let exact: f64 = (2..=32u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(32) - exact).abs() < 1e-4);
    }
}
