//! Synthetic genomics substrate for the `gnb` workspace.
//!
//! The ICPP 2021 paper evaluates many-to-many long-read alignment on three
//! real PacBio datasets (*E. coli* 30×, *E. coli* 100×, *Human* CCS). Those
//! raw datasets are not redistributable here, so this crate provides the
//! closest synthetic equivalent: a deterministic genome generator with
//! controllable repeat structure, a long-read sampler with configurable
//! coverage and read-length distribution, and a sequencer error model
//! (substitutions, insertions, deletions, and low-confidence `N` calls over
//! the 5-letter alphabet `{A,C,G,T,N}`).
//!
//! The performance-relevant properties of the real workloads — read-length
//! variance (communication imbalance), coverage (k-mer multiplicity and task
//! counts), and error rate (false-positive seeds and compute-cost variance)
//! — are each directly controlled by a preset parameter, so the downstream
//! scaling study exercises the same code paths as the paper's runs.
//!
//! # Quick example
//!
//! ```
//! use gnb_genome::{presets, ReadSet};
//!
//! // A tiny deterministic workload (scaled-down E. coli 30x profile).
//! let preset = presets::ecoli_30x().scaled(512);
//! let reads = preset.generate(42);
//! assert!(reads.len() > 0);
//! let total: usize = (0..reads.len()).map(|i| reads.read(i).len()).sum();
//! assert!(total as f64 >= 0.5 * preset.genome_len as f64 * preset.coverage);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod fasta;
pub mod genome;
pub mod packed;
pub mod presets;
pub mod reads;
pub mod rng;
pub mod seq;
pub mod stats;

pub use error::ErrorModel;
pub use genome::{Genome, GenomeParams};
pub use packed::{PackedSeq, PackedSlice};
pub use presets::WorkloadPreset;
pub use reads::{ReadOrigin, ReadSet, Strand};
pub use seq::{complement, is_valid_dna, revcomp, revcomp_in_place};
