//! Long-read sampling and the [`ReadSet`] container.
//!
//! Reads are stored in a single concatenated byte buffer with an offset
//! table ("flat" layout). For millions of reads this avoids per-read heap
//! allocations and keeps iteration cache-friendly — the same locality
//! argument the paper makes for the BSP code's flat arrays (§4.6).

use crate::error::ErrorModel;
use crate::packed::{pack_append, PackedSlice};
use crate::rng::{rng_from_seed, LogNormal};
use crate::seq::revcomp_in_place;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which genome strand a read was sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strand {
    /// The reference orientation.
    Forward,
    /// Reverse complement of the reference.
    Reverse,
}

/// Ground-truth provenance of a sampled read (used by validation tests; a
/// real pipeline would not have this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOrigin {
    /// Start position of the sampled fragment on the reference.
    pub start: usize,
    /// Length of the fragment *on the reference* (before sequencing errors).
    pub ref_len: usize,
    /// Strand the read was taken from.
    pub strand: Strand,
}

impl ReadOrigin {
    /// Half-open reference interval `[start, start + ref_len)`.
    pub fn interval(&self) -> (usize, usize) {
        (self.start, self.start + self.ref_len)
    }

    /// Number of reference bases shared with `other`'s fragment. Two reads
    /// that truly overlap on the genome should align well.
    pub fn overlap_len(&self, other: &ReadOrigin) -> usize {
        let (a0, a1) = self.interval();
        let (b0, b1) = other.interval();
        a1.min(b1).saturating_sub(a0.max(b0))
    }
}

/// A set of long reads in flat (structure-of-arrays) storage.
///
/// Alongside the byte buffer, every read is 2-bit packed **once at push
/// time** (codes + N mask, word-aligned per read; see [`crate::packed`]),
/// so the packed alignment kernel can take [`PackedSlice`] views with zero
/// per-alignment re-encoding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadSet {
    data: Vec<u8>,
    /// `offsets.len() == len() + 1`; read `i` is `data[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
    origins: Vec<ReadOrigin>,
    /// Packed 2-bit codes, word-aligned per read.
    pwords: Vec<u64>,
    /// Packed N mask, parallel to `pwords`.
    pnmask: Vec<u64>,
    /// `pstarts.len() == len() + 1`; read `i`'s packed words are
    /// `pwords[pstarts[i]..pstarts[i+1]]`.
    pstarts: Vec<usize>,
}

impl Default for ReadSet {
    fn default() -> Self {
        ReadSet::new()
    }
}

impl ReadSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ReadSet {
            data: Vec::new(),
            offsets: vec![0],
            origins: Vec::new(),
            pwords: Vec::new(),
            pnmask: Vec::new(),
            pstarts: vec![0],
        }
    }

    /// Appends a read with its provenance; returns its id (dense index).
    pub fn push(&mut self, seq: &[u8], origin: ReadOrigin) -> u32 {
        let id = self.origins.len() as u32;
        self.data.extend_from_slice(seq);
        self.offsets.push(self.data.len());
        self.origins.push(origin);
        pack_append(seq, &mut self.pwords, &mut self.pnmask);
        self.pstarts.push(self.pwords.len());
        id
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// Returns `true` if the set holds no reads.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// The sequence of read `i`.
    pub fn read(&self, i: usize) -> &[u8] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Length in bytes of read `i` (cheaper than `read(i).len()` only in
    /// intent; provided for call-site clarity).
    pub fn read_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Packed (2-bit + N mask) view of read `i`, encoded once at push time.
    pub fn packed_read(&self, i: usize) -> PackedSlice<'_> {
        PackedSlice {
            words: &self.pwords[self.pstarts[i]..self.pstarts[i + 1]],
            nmask: &self.pnmask[self.pstarts[i]..self.pstarts[i + 1]],
            len: self.read_len(i),
        }
    }

    /// Ground-truth origin of read `i`.
    pub fn origin(&self, i: usize) -> ReadOrigin {
        self.origins[i]
    }

    /// Total bytes of sequence across all reads.
    pub fn total_bases(&self) -> usize {
        self.data.len()
    }

    /// Iterates `(id, sequence)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u8])> {
        (0..self.len()).map(move |i| (i as u32, self.read(i)))
    }

    /// Read lengths as a vector (used by the partitioner and by the
    /// task-graph-level workload synthesiser).
    pub fn lengths(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.read_len(i)).collect()
    }
}

/// Parameters for sampling reads from a genome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSampler {
    /// Target sequencing depth (average number of reads covering a locus).
    pub coverage: f64,
    /// Read length distribution (of the reference fragment).
    pub length_dist: LogNormal,
    /// Minimum fragment length; shorter draws are clamped up.
    pub min_len: usize,
    /// Maximum fragment length; longer draws are clamped down.
    pub max_len: usize,
    /// Sequencer error model applied to each fragment.
    pub errors: ErrorModel,
}

impl ReadSampler {
    /// Samples reads from `genome` until the target coverage is reached.
    ///
    /// Fragments are drawn uniformly over genome positions; each is
    /// reverse-complemented with probability ½ and then corrupted by the
    /// error model — mirroring how a sequencer reads random fragments from
    /// both strands.
    pub fn sample(&self, genome: &[u8], seed: u64) -> ReadSet {
        assert!(self.coverage > 0.0, "coverage must be positive");
        assert!(self.min_len >= 1 && self.min_len <= self.max_len);
        assert!(!genome.is_empty(), "cannot sample reads from empty genome");
        let mut rng = rng_from_seed(seed ^ 0x7265_6164_7361_6d70);
        let target = (genome.len() as f64 * self.coverage) as usize;
        let mut reads = ReadSet::new();
        let mut sampled = 0usize;
        let mut frag_buf: Vec<u8> = Vec::new();
        while sampled < target {
            let raw = self.length_dist.sample(&mut rng);
            let len = (raw as usize)
                .clamp(self.min_len, self.max_len)
                .min(genome.len());
            let start = rng.gen_range(0..=genome.len() - len);
            frag_buf.clear();
            frag_buf.extend_from_slice(&genome[start..start + len]);
            let strand = if rng.gen::<bool>() {
                revcomp_in_place(&mut frag_buf);
                Strand::Reverse
            } else {
                Strand::Forward
            };
            let noisy = self.errors.corrupt(&mut rng, &frag_buf);
            reads.push(
                &noisy,
                ReadOrigin {
                    start,
                    ref_len: len,
                    strand,
                },
            );
            sampled += len;
        }
        reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{Genome, GenomeParams};
    use crate::seq::is_valid_dna;

    fn sampler(cov: f64) -> ReadSampler {
        ReadSampler {
            coverage: cov,
            length_dist: LogNormal::from_mean_sigma(500.0, 0.3),
            min_len: 100,
            max_len: 5000,
            errors: ErrorModel::PERFECT,
        }
    }

    #[test]
    fn readset_round_trip() {
        let mut rs = ReadSet::new();
        let o = ReadOrigin {
            start: 5,
            ref_len: 4,
            strand: Strand::Forward,
        };
        let id0 = rs.push(b"ACGT", o);
        let id1 = rs.push(b"GGNNA", o);
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.read(0), b"ACGT");
        assert_eq!(rs.read(1), b"GGNNA");
        assert_eq!(rs.read_len(1), 5);
        assert_eq!(rs.total_bases(), 9);
        assert_eq!(rs.lengths(), vec![4, 5]);
    }

    #[test]
    fn packed_reads_agree_with_bytes() {
        let mut rs = ReadSet::new();
        let o = ReadOrigin {
            start: 0,
            ref_len: 0,
            strand: Strand::Forward,
        };
        let long: Vec<u8> = (0..133).map(|i| b"ACGTN"[(i * 3 + 1) % 5]).collect();
        rs.push(b"ACGT", o);
        rs.push(&long, o);
        rs.push(b"", o);
        rs.push(b"GGNNA", o);
        for i in 0..rs.len() {
            let bytes = rs.read(i);
            let p = rs.packed_read(i);
            assert_eq!(p.len(), bytes.len(), "read {i}");
            for (j, &b) in bytes.iter().enumerate() {
                assert_eq!(p.byte(j), b, "read {i} base {j}");
            }
        }
    }

    #[test]
    fn coverage_target_met() {
        let g = Genome::generate(GenomeParams::uniform(50_000), 11);
        let rs = sampler(10.0).sample(&g.seq, 1);
        let total = rs.total_bases();
        // With perfect errors, sampled bases == reference bases covered.
        assert!(total >= 10 * g.len(), "total {total}");
        // Should not wildly overshoot (by more than one max-length read).
        assert!(total <= 10 * g.len() + 5000);
    }

    #[test]
    fn reads_are_substrings_or_revcomp() {
        let g = Genome::generate(GenomeParams::uniform(20_000), 12);
        let rs = sampler(2.0).sample(&g.seq, 2);
        for i in 0..rs.len() {
            let o = rs.origin(i);
            let frag = &g.seq[o.start..o.start + o.ref_len];
            let expect = match o.strand {
                Strand::Forward => frag.to_vec(),
                Strand::Reverse => crate::seq::revcomp(frag),
            };
            assert_eq!(rs.read(i), &expect[..], "read {i}");
        }
    }

    #[test]
    fn corrupted_reads_are_valid_dna() {
        let g = Genome::generate(GenomeParams::uniform(20_000), 13);
        let mut s = sampler(2.0);
        s.errors = ErrorModel::clr(0.15);
        let rs = s.sample(&g.seq, 3);
        for (_, r) in rs.iter() {
            assert!(is_valid_dna(r));
        }
    }

    #[test]
    fn deterministic_sampling() {
        let g = Genome::generate(GenomeParams::uniform(10_000), 14);
        let a = sampler(3.0).sample(&g.seq, 4);
        let b = sampler(3.0).sample(&g.seq, 4);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.read(i), b.read(i));
        }
    }

    #[test]
    fn origin_overlap_len() {
        let a = ReadOrigin {
            start: 100,
            ref_len: 50,
            strand: Strand::Forward,
        };
        let b = ReadOrigin {
            start: 120,
            ref_len: 100,
            strand: Strand::Reverse,
        };
        assert_eq!(a.overlap_len(&b), 30);
        assert_eq!(b.overlap_len(&a), 30);
        let far = ReadOrigin {
            start: 1000,
            ref_len: 10,
            strand: Strand::Forward,
        };
        assert_eq!(a.overlap_len(&far), 0);
    }

    #[test]
    fn both_strands_appear() {
        let g = Genome::generate(GenomeParams::uniform(30_000), 15);
        let rs = sampler(5.0).sample(&g.seq, 5);
        let fwd = (0..rs.len())
            .filter(|&i| rs.origin(i).strand == Strand::Forward)
            .count();
        let rev = rs.len() - fwd;
        assert!(fwd > 0 && rev > 0);
        let ratio = fwd as f64 / rs.len() as f64;
        assert!((ratio - 0.5).abs() < 0.1, "forward ratio {ratio}");
    }
}
