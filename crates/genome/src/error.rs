//! Long-read sequencer error model.
//!
//! The paper (§2) describes long-read sequencers emitting errors at
//! historically 5–35% rates, as insertions, deletions, substitutions, and
//! `N` on low-confidence calls. This model applies those edits per base with
//! a configurable mix; PacBio CLR-style chemistry is indel-dominated, while
//! CCS/HiFi reads are ~1% error. The error rate is the lever that controls
//! false-positive seed candidates downstream (erroneous k-mers) and hence
//! the variable alignment costs the paper's load-imbalance analysis hinges
//! on.

use crate::genome::mutate_base;
use crate::seq::BASES;
use rand::Rng;

/// Per-base error process for simulated reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Probability a base is substituted by a different base.
    pub sub_rate: f64,
    /// Probability a spurious base is inserted before a base.
    pub ins_rate: f64,
    /// Probability a base is deleted.
    pub del_rate: f64,
    /// Probability a base is replaced by `N` (low-confidence call).
    pub n_rate: f64,
}

impl ErrorModel {
    /// An error-free model (useful in tests and for idealised workloads).
    pub const PERFECT: ErrorModel = ErrorModel {
        sub_rate: 0.0,
        ins_rate: 0.0,
        del_rate: 0.0,
        n_rate: 0.0,
    };

    /// A model with total error rate `e` split in PacBio CLR proportions
    /// (insertion-heavy: 45% ins / 35% del / 20% sub) plus a small fixed
    /// `N` rate.
    pub fn clr(e: f64) -> Self {
        assert!((0.0..=0.5).contains(&e), "error rate must be in [0, 0.5]");
        ErrorModel {
            sub_rate: 0.20 * e,
            ins_rate: 0.45 * e,
            del_rate: 0.35 * e,
            n_rate: 0.002,
        }
    }

    /// A CCS/HiFi-style model with total error rate `e` split evenly and a
    /// tiny `N` rate.
    pub fn ccs(e: f64) -> Self {
        assert!((0.0..=0.5).contains(&e), "error rate must be in [0, 0.5]");
        ErrorModel {
            sub_rate: e / 3.0,
            ins_rate: e / 3.0,
            del_rate: e / 3.0,
            n_rate: 0.0005,
        }
    }

    /// Total per-base edit probability (excluding `N` calls).
    pub fn total_rate(&self) -> f64 {
        self.sub_rate + self.ins_rate + self.del_rate
    }

    /// Applies the error process to a fragment, returning the noisy read.
    ///
    /// Edits are applied independently per input base: possible insertion
    /// before it, then deletion / substitution / `N` replacement of it. The
    /// output length therefore differs from the input length by the indel
    /// balance.
    pub fn corrupt<R: Rng + ?Sized>(&self, rng: &mut R, fragment: &[u8]) -> Vec<u8> {
        if self.total_rate() == 0.0 && self.n_rate == 0.0 {
            return fragment.to_vec();
        }
        let mut out = Vec::with_capacity(fragment.len() + fragment.len() / 8);
        for &b in fragment {
            if rng.gen::<f64>() < self.ins_rate {
                out.push(BASES[rng.gen_range(0..4usize)]);
            }
            let r: f64 = rng.gen();
            if r < self.del_rate {
                continue; // base dropped
            } else if r < self.del_rate + self.sub_rate {
                out.push(mutate_base(rng, b));
            } else if r < self.del_rate + self.sub_rate + self.n_rate {
                out.push(b'N');
            } else {
                out.push(b);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::seq::is_valid_dna;

    #[test]
    fn perfect_model_is_identity() {
        let mut rng = rng_from_seed(1);
        let frag = b"ACGTACGTACGT";
        assert_eq!(ErrorModel::PERFECT.corrupt(&mut rng, frag), frag.to_vec());
    }

    #[test]
    fn output_is_valid_dna() {
        let mut rng = rng_from_seed(2);
        let frag: Vec<u8> = (0..5000).map(|i| BASES[i % 4]).collect();
        let noisy = ErrorModel::clr(0.15).corrupt(&mut rng, &frag);
        assert!(is_valid_dna(&noisy));
    }

    #[test]
    fn observed_divergence_tracks_rate() {
        // Hamming-style check: count positions kept identical is roughly
        // (1 - sub - del - n) of the input length; indels shift length.
        let mut rng = rng_from_seed(3);
        let frag: Vec<u8> = (0..200_000).map(|i| BASES[(i * 7 + 3) % 4]).collect();
        let m = ErrorModel::clr(0.15);
        let noisy = m.corrupt(&mut rng, &frag);
        let expected_len = frag.len() as f64 * (1.0 + m.ins_rate - m.del_rate);
        let got = noisy.len() as f64;
        assert!(
            (got - expected_len).abs() / expected_len < 0.02,
            "len {} vs expected {}",
            got,
            expected_len
        );
        let n_count = noisy.iter().filter(|&&b| b == b'N').count();
        let n_frac = n_count as f64 / noisy.len() as f64;
        assert!((n_frac - m.n_rate).abs() < 0.001, "N fraction {n_frac}");
    }

    #[test]
    fn ccs_is_much_cleaner_than_clr() {
        let mut rng = rng_from_seed(4);
        let frag: Vec<u8> = (0..50_000).map(|i| BASES[(i * 5 + 1) % 4]).collect();
        let clr = ErrorModel::clr(0.15).corrupt(&mut rng, &frag);
        let ccs = ErrorModel::ccs(0.01).corrupt(&mut rng, &frag);
        // Proxy for error content: longest common prefix with the original.
        fn lcp(a: &[u8], b: &[u8]) -> usize {
            a.iter().zip(b).take_while(|(x, y)| x == y).count()
        }
        assert!(lcp(&ccs, &frag) > lcp(&clr, &frag));
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn rejects_absurd_rate() {
        let _ = ErrorModel::clr(0.9);
    }

    #[test]
    fn empty_fragment() {
        let mut rng = rng_from_seed(5);
        assert!(ErrorModel::clr(0.2).corrupt(&mut rng, b"").is_empty());
    }
}
