//! Workload presets matching the paper's Table 1 datasets.
//!
//! | Short name    | Species     | Reads      | Tasks       |
//! |---------------|-------------|------------|-------------|
//! | E. coli 30×   | E. coli     | 16,890     | 2,270,260   |
//! | E. coli 100×  | E. coli     | 91,394     | 24,869,171  |
//! | Human CCS     | H. sapiens  | 1,148,839  | 87,621,409  |
//!
//! The raw NCBI/CBCB datasets are not available in this environment, so each
//! preset encodes the dataset's *generative* parameters — genome size,
//! coverage, read-length distribution, error chemistry, and repeat content —
//! chosen so that the synthetic equivalent reproduces the paper's read
//! counts at scale 1 and, after k-mer filtering, a comparable
//! tasks-per-read density. `scaled(s)` shrinks the genome by `s` while
//! preserving coverage and length distributions, so every derived
//! *per-rank* quantity keeps its shape at laptop scale.

use crate::error::ErrorModel;
use crate::genome::{Genome, GenomeParams};
use crate::reads::{ReadSampler, ReadSet};
use crate::rng::LogNormal;

/// A named, fully parameterised synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPreset {
    /// Short name as in the paper's Table 1 (lower-snake for file names).
    pub name: &'static str,
    /// Genome length in bp after scaling.
    pub genome_len: usize,
    /// Sequencing depth.
    pub coverage: f64,
    /// Mean read length (arithmetic) in bp.
    pub mean_read_len: f64,
    /// Log-space sigma of the read-length distribution.
    pub read_len_sigma: f64,
    /// Minimum read length (paper: long reads are 1 kbp – 100 kbp).
    pub min_read_len: usize,
    /// Maximum read length.
    pub max_read_len: usize,
    /// Sequencer error model.
    pub errors: ErrorModel,
    /// Fraction of genome covered by repeat elements.
    pub repeat_fraction: f64,
    /// Number of repeat families.
    pub repeat_families: usize,
    /// Repeat element length.
    pub repeat_len: usize,
    /// Scale divisor already applied (1 = paper-size).
    pub scale: usize,
}

/// *E. coli* 30× — the paper's intranode workload (16,890 reads;
/// 2,270,260 tasks). PacBio CLR chemistry (~15% error), 4.64 Mbp genome.
pub fn ecoli_30x() -> WorkloadPreset {
    WorkloadPreset {
        name: "ecoli_30x",
        genome_len: 4_641_652,
        coverage: 30.0,
        // 4.64 Mbp * 30 / 16,890 reads ≈ 8.24 kbp mean read length.
        mean_read_len: 8244.0,
        read_len_sigma: 0.45,
        min_read_len: 1000,
        max_read_len: 100_000,
        errors: ErrorModel::clr(0.15),
        repeat_fraction: 0.05,
        repeat_families: 8,
        repeat_len: 3000,
        scale: 1,
    }
}

/// *E. coli* 100× — the paper's mid-size strong-scaling workload
/// (91,394 reads; 24,869,171 tasks). Same genome, deeper coverage, shorter
/// reads (4.64 Mbp * 100 / 91,394 ≈ 5.08 kbp mean).
pub fn ecoli_100x() -> WorkloadPreset {
    WorkloadPreset {
        name: "ecoli_100x",
        genome_len: 4_641_652,
        coverage: 100.0,
        mean_read_len: 5079.0,
        read_len_sigma: 0.45,
        min_read_len: 1000,
        max_read_len: 100_000,
        errors: ErrorModel::clr(0.15),
        repeat_fraction: 0.05,
        repeat_families: 8,
        repeat_len: 3000,
        scale: 1,
    }
}

/// *Human* CCS — the paper's largest workload (1,148,839 reads;
/// 87,621,409 tasks). CCS/HiFi chemistry (~1% error), ~3.1 Gbp genome with
/// substantial repeat content; coverage ≈ 4.1× with ~11 kbp reads gives the
/// paper's read count.
pub fn human_ccs() -> WorkloadPreset {
    WorkloadPreset {
        name: "human_ccs",
        genome_len: 3_099_750_000,
        coverage: 4.1,
        mean_read_len: 11_060.0,
        read_len_sigma: 0.25,
        min_read_len: 2000,
        max_read_len: 50_000,
        errors: ErrorModel::ccs(0.01),
        // Human genome is ~45-50% repetitive; moderately-repeated k-mers are
        // what pushes tasks-per-read to ~76 despite only ~4x coverage.
        repeat_fraction: 0.45,
        repeat_families: 40,
        repeat_len: 6000,
        scale: 1,
    }
}

/// All three presets, in Table 1 order.
pub fn all_presets() -> Vec<WorkloadPreset> {
    vec![ecoli_30x(), ecoli_100x(), human_ccs()]
}

/// Looks a preset up by its short name.
pub fn by_name(name: &str) -> Option<WorkloadPreset> {
    all_presets().into_iter().find(|p| p.name == name)
}

impl WorkloadPreset {
    /// Returns a copy with the genome shrunk by `divisor` (and repeat
    /// family count reduced proportionally, floored at 2, so repeat
    /// *density* is preserved). Coverage, read lengths, and error model are
    /// untouched, so per-read and per-rank statistics keep their shape.
    pub fn scaled(&self, divisor: usize) -> WorkloadPreset {
        assert!(divisor >= 1, "scale divisor must be >= 1");
        let mut p = self.clone();
        // Floor keeps a degenerate genome from appearing under extreme
        // divisors; the read sampler clamps fragment lengths to the genome
        // length, so small genomes remain valid.
        p.genome_len = (self.genome_len / divisor).max(10_000);
        p.repeat_families = (self.repeat_families / divisor.min(8)).max(2);
        p.scale = self.scale * divisor;
        p
    }

    /// Expected number of reads this preset will generate.
    pub fn expected_reads(&self) -> usize {
        (self.genome_len as f64 * self.coverage / self.mean_read_len) as usize
    }

    /// Generates the synthetic genome for this preset.
    pub fn generate_genome(&self, seed: u64) -> Genome {
        let params = if self.repeat_fraction > 0.0 {
            let mut gp = GenomeParams::with_repeats(
                self.genome_len,
                self.repeat_fraction,
                self.repeat_families,
                self.repeat_len.min(self.genome_len / 2),
            );
            gp.repeat_divergence = 0.02;
            gp
        } else {
            GenomeParams::uniform(self.genome_len)
        };
        Genome::generate(params, seed)
    }

    /// Generates the read set: genome + sampling + errors, deterministically
    /// from `seed`.
    pub fn generate(&self, seed: u64) -> ReadSet {
        let genome = self.generate_genome(seed);
        self.sample_reads(&genome, seed)
    }

    /// Samples reads from an already-generated genome.
    pub fn sample_reads(&self, genome: &Genome, seed: u64) -> ReadSet {
        let sampler = ReadSampler {
            coverage: self.coverage,
            length_dist: LogNormal::from_mean_sigma(self.mean_read_len, self.read_len_sigma),
            min_len: self.min_read_len,
            max_len: self.max_read_len,
            errors: self.errors,
        };
        sampler.sample(&genome.seq, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_read_counts_match_paper_at_scale_1() {
        assert!((ecoli_30x().expected_reads() as f64 - 16_890.0).abs() < 200.0);
        assert!((ecoli_100x().expected_reads() as f64 - 91_394.0).abs() < 1000.0);
        assert!((human_ccs().expected_reads() as f64 - 1_148_839.0).abs() < 15_000.0);
    }

    #[test]
    fn scaling_preserves_read_density() {
        let base = ecoli_100x();
        let s = base.scaled(64);
        assert_eq!(s.scale, 64);
        let expected = base.expected_reads() as f64 / 64.0;
        let got = s.expected_reads() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got} expected {expected}"
        );
    }

    #[test]
    fn generation_hits_expected_read_count() {
        let p = ecoli_30x().scaled(64);
        let reads = p.generate(7);
        let expect = p.expected_reads() as f64;
        let got = reads.len() as f64;
        // Log-normal clamping skews lengths slightly; allow 15%.
        assert!(
            (got - expect).abs() / expect < 0.15,
            "got {got} expected {expect}"
        );
    }

    #[test]
    fn by_name_round_trips() {
        for p in all_presets() {
            assert_eq!(by_name(p.name).unwrap(), p);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scaled_is_composable() {
        let p = ecoli_30x().scaled(4).scaled(4);
        assert_eq!(p.scale, 16);
    }

    #[test]
    #[should_panic(expected = "divisor")]
    fn zero_divisor_rejected() {
        let _ = ecoli_30x().scaled(0);
    }
}
