//! Dataset summary statistics (read counts, length distribution, N
//! content), used by the Table 1 reproduction and by calibration tests.

use crate::reads::ReadSet;

/// Summary statistics of a read set.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSetStats {
    /// Number of reads.
    pub reads: usize,
    /// Total bases across reads.
    pub total_bases: usize,
    /// Minimum read length.
    pub min_len: usize,
    /// Maximum read length.
    pub max_len: usize,
    /// Mean read length.
    pub mean_len: f64,
    /// Median read length.
    pub median_len: usize,
    /// N50: length such that reads of at least this length contain half the
    /// total bases (standard assembly-world summary of a length
    /// distribution's heavy tail).
    pub n50: usize,
    /// Fraction of bases that are `N`.
    pub n_fraction: f64,
}

/// Computes [`ReadSetStats`] for `reads`.
///
/// Returns a zeroed struct for an empty set.
pub fn read_set_stats(reads: &ReadSet) -> ReadSetStats {
    if reads.is_empty() {
        return ReadSetStats {
            reads: 0,
            total_bases: 0,
            min_len: 0,
            max_len: 0,
            mean_len: 0.0,
            median_len: 0,
            n50: 0,
            n_fraction: 0.0,
        };
    }
    let mut lens = reads.lengths();
    lens.sort_unstable();
    let total: usize = lens.iter().sum();
    let n_count: usize = reads
        .iter()
        .map(|(_, s)| s.iter().filter(|&&b| b == b'N').count())
        .sum();
    let mut acc = 0usize;
    let mut n50 = *lens.last().unwrap();
    for &l in lens.iter().rev() {
        acc += l;
        if acc * 2 >= total {
            n50 = l;
            break;
        }
    }
    ReadSetStats {
        reads: lens.len(),
        total_bases: total,
        min_len: lens[0],
        max_len: *lens.last().unwrap(),
        mean_len: total as f64 / lens.len() as f64,
        median_len: lens[lens.len() / 2],
        n50,
        n_fraction: n_count as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reads::{ReadOrigin, Strand};

    fn set_of(lens: &[usize]) -> ReadSet {
        let mut rs = ReadSet::new();
        for &l in lens {
            rs.push(
                &vec![b'A'; l],
                ReadOrigin {
                    start: 0,
                    ref_len: l,
                    strand: Strand::Forward,
                },
            );
        }
        rs
    }

    #[test]
    fn empty_set() {
        let s = read_set_stats(&ReadSet::new());
        assert_eq!(s.reads, 0);
        assert_eq!(s.total_bases, 0);
    }

    #[test]
    fn basic_stats() {
        let s = read_set_stats(&set_of(&[100, 200, 300, 400]));
        assert_eq!(s.reads, 4);
        assert_eq!(s.total_bases, 1000);
        assert_eq!(s.min_len, 100);
        assert_eq!(s.max_len, 400);
        assert!((s.mean_len - 250.0).abs() < 1e-9);
        assert_eq!(s.median_len, 300);
        // Reads >= 300 contain 700 >= 500 bases; reads >= 400 contain only 400.
        assert_eq!(s.n50, 300);
        assert_eq!(s.n_fraction, 0.0);
    }

    #[test]
    fn n_fraction_counted() {
        let mut rs = ReadSet::new();
        rs.push(
            b"ANNA",
            ReadOrigin {
                start: 0,
                ref_len: 4,
                strand: Strand::Forward,
            },
        );
        let s = read_set_stats(&rs);
        assert!((s.n_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn n50_single_read() {
        let s = read_set_stats(&set_of(&[777]));
        assert_eq!(s.n50, 777);
        assert_eq!(s.median_len, 777);
    }
}
