//! Synthetic reference genome generation.
//!
//! Real genomes are not uniformly random: repeat families (transposons,
//! segmental duplications) are what make k-mer-based overlap candidate
//! generation produce false positives, which in turn drive the
//! variable-cost alignment behaviour the paper studies (early termination on
//! false-positive candidates, §2 and §4.2). The generator therefore plants a
//! configurable fraction of repeated sequence drawn from a small library of
//! repeat elements, each copied with point mutations.

use crate::rng::rng_from_seed;
use crate::seq::BASES;
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters for synthetic genome construction.
#[derive(Debug, Clone, PartialEq)]
pub struct GenomeParams {
    /// Total genome length in base pairs.
    pub len: usize,
    /// Fraction of the genome covered by repeat-element copies (0.0–0.95).
    pub repeat_fraction: f64,
    /// Number of distinct repeat families in the library.
    pub repeat_families: usize,
    /// Length of each repeat element, in base pairs.
    pub repeat_len: usize,
    /// Per-base divergence applied to each planted repeat copy, so copies
    /// are near- but not exact duplicates (as in real genomes).
    pub repeat_divergence: f64,
}

impl GenomeParams {
    /// A uniform random genome with no repeat structure.
    pub fn uniform(len: usize) -> Self {
        GenomeParams {
            len,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: 0,
            repeat_divergence: 0.0,
        }
    }

    /// A genome with `frac` of its length covered by mutated copies from
    /// `families` repeat families of length `repeat_len`.
    pub fn with_repeats(len: usize, frac: f64, families: usize, repeat_len: usize) -> Self {
        GenomeParams {
            len,
            repeat_fraction: frac,
            repeat_families: families,
            repeat_len,
            repeat_divergence: 0.02,
        }
    }

    fn validate(&self) {
        assert!(self.len > 0, "genome length must be positive");
        assert!(
            (0.0..=0.95).contains(&self.repeat_fraction),
            "repeat_fraction must be in [0, 0.95], got {}",
            self.repeat_fraction
        );
        if self.repeat_fraction > 0.0 {
            assert!(self.repeat_families > 0, "need at least one repeat family");
            assert!(
                self.repeat_len > 0 && self.repeat_len <= self.len,
                "repeat_len must be in (0, genome len]"
            );
        }
    }
}

/// A synthetic reference genome.
#[derive(Debug, Clone)]
pub struct Genome {
    /// The sequence, over `{A,C,G,T}` (references contain no `N`).
    pub seq: Vec<u8>,
    /// Parameters it was generated with.
    pub params: GenomeParams,
    /// Seed it was generated with.
    pub seed: u64,
}

impl Genome {
    /// Generates a genome deterministically from `params` and `seed`.
    pub fn generate(params: GenomeParams, seed: u64) -> Self {
        params.validate();
        let mut rng = rng_from_seed(seed ^ 0x6e6f_6d65_5f67_656e);
        let mut seq = random_bases(&mut rng, params.len);

        if params.repeat_fraction > 0.0 {
            let library: Vec<Vec<u8>> = (0..params.repeat_families)
                .map(|_| random_bases(&mut rng, params.repeat_len))
                .collect();
            let target_bases = (params.len as f64 * params.repeat_fraction) as usize;
            let mut planted = 0usize;
            // Plant mutated copies at random positions until the target
            // repeat content is reached. Overlapping plants are fine; they
            // only increase local self-similarity.
            while planted < target_bases {
                let fam = &library[rng.gen_range(0..library.len())];
                let copy_len = fam.len().min(params.len);
                let pos = rng.gen_range(0..=params.len - copy_len);
                for (i, &b) in fam[..copy_len].iter().enumerate() {
                    seq[pos + i] = if rng.gen::<f64>() < params.repeat_divergence {
                        mutate_base(&mut rng, b)
                    } else {
                        b
                    };
                }
                planted += copy_len;
            }
        }

        Genome { seq, params, seed }
    }

    /// Genome length in base pairs.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Returns `true` if the genome is empty (never the case for generated
    /// genomes; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

fn random_bases(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| BASES[rng.gen_range(0..4usize)]).collect()
}

/// Substitutes `b` with a uniformly random *different* base.
pub(crate) fn mutate_base<R: Rng + ?Sized>(rng: &mut R, b: u8) -> u8 {
    loop {
        let c = BASES[rng.gen_range(0..4usize)];
        if c != b {
            return c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::is_valid_dna;
    use std::collections::HashMap;

    #[test]
    fn generates_requested_length() {
        let g = Genome::generate(GenomeParams::uniform(10_000), 1);
        assert_eq!(g.len(), 10_000);
        assert!(is_valid_dna(&g.seq));
        assert!(!g.seq.contains(&b'N'));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Genome::generate(GenomeParams::uniform(5000), 9);
        let b = Genome::generate(GenomeParams::uniform(5000), 9);
        let c = Genome::generate(GenomeParams::uniform(5000), 10);
        assert_eq!(a.seq, b.seq);
        assert_ne!(a.seq, c.seq);
    }

    #[test]
    fn base_composition_roughly_uniform() {
        let g = Genome::generate(GenomeParams::uniform(100_000), 3);
        let mut counts: HashMap<u8, usize> = HashMap::new();
        for &b in &g.seq {
            *counts.entry(b).or_default() += 1;
        }
        for &b in b"ACGT" {
            let f = counts[&b] as f64 / g.len() as f64;
            assert!((f - 0.25).abs() < 0.01, "base {} freq {}", b as char, f);
        }
    }

    #[test]
    fn repeats_increase_kmer_multiplicity() {
        // Count 21-mer duplication rate with and without repeats; the
        // repeat-rich genome must have markedly more duplicated k-mers.
        fn dup_rate(g: &Genome) -> f64 {
            let k = 21;
            let mut counts: HashMap<&[u8], usize> = HashMap::new();
            for w in g.seq.windows(k) {
                *counts.entry(w).or_default() += 1;
            }
            let dup = counts.values().filter(|&&c| c > 1).count();
            dup as f64 / counts.len() as f64
        }
        let plain = Genome::generate(GenomeParams::uniform(200_000), 4);
        let repeaty = Genome::generate(GenomeParams::with_repeats(200_000, 0.3, 5, 2000), 4);
        assert_eq!(repeaty.len(), 200_000);
        assert!(
            dup_rate(&repeaty) > dup_rate(&plain) * 5.0 + 0.001,
            "repeat genome should have many more duplicated k-mers"
        );
    }

    #[test]
    #[should_panic(expected = "repeat_fraction")]
    fn rejects_excessive_repeat_fraction() {
        let _ = Genome::generate(GenomeParams::with_repeats(1000, 0.99, 1, 100), 0);
    }

    #[test]
    fn mutate_base_changes_base() {
        let mut rng = rng_from_seed(5);
        for &b in &BASES {
            for _ in 0..10 {
                assert_ne!(mutate_base(&mut rng, b), b);
            }
        }
    }
}
