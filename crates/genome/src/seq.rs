//! DNA sequence primitives over the 5-letter alphabet `{A, C, G, T, N}`.
//!
//! Long-read sequencers emit `N` on low-confidence base calls, so every
//! routine in the workspace must tolerate `N` (the k-mer layer skips windows
//! containing it; the alignment layer scores it as a guaranteed mismatch).

/// The four unambiguous DNA bases, in the canonical 2-bit encoding order.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Returns `true` if `b` is one of `A`, `C`, `G`, `T`, `N` (upper case).
#[inline]
pub fn is_valid_base(b: u8) -> bool {
    matches!(b, b'A' | b'C' | b'G' | b'T' | b'N')
}

/// Returns `true` if every byte of `seq` is a valid upper-case DNA base
/// (including `N`).
pub fn is_valid_dna(seq: &[u8]) -> bool {
    seq.iter().copied().all(is_valid_base)
}

/// Watson–Crick complement of a single base. `N` complements to `N`.
///
/// Any byte outside the alphabet is mapped to `N` rather than panicking so
/// that the error paths of file ingestion stay total.
#[inline]
pub fn complement(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'C' => b'G',
        b'G' => b'C',
        b'T' => b'A',
        _ => b'N',
    }
}

/// Reverse complement of `seq` as a new vector.
pub fn revcomp(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// Reverse-complements `seq` in place without allocating.
pub fn revcomp_in_place(seq: &mut [u8]) {
    let n = seq.len();
    for i in 0..n / 2 {
        let (a, b) = (seq[i], seq[n - 1 - i]);
        seq[i] = complement(b);
        seq[n - 1 - i] = complement(a);
    }
    if n % 2 == 1 {
        let mid = n / 2;
        seq[mid] = complement(seq[mid]);
    }
}

/// Maps a base to its 2-bit code (`A=0, C=1, G=2, T=3`).
///
/// Returns `None` for `N` or any non-alphabet byte; callers that slide
/// windows over reads use this to reset on ambiguous bases.
#[inline]
pub fn base_to_2bit(b: u8) -> Option<u8> {
    match b {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

/// Inverse of [`base_to_2bit`]; panics if `code > 3`.
#[inline]
pub fn base_from_2bit(code: u8) -> u8 {
    BASES[code as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_pairs() {
        assert_eq!(complement(b'A'), b'T');
        assert_eq!(complement(b'T'), b'A');
        assert_eq!(complement(b'C'), b'G');
        assert_eq!(complement(b'G'), b'C');
        assert_eq!(complement(b'N'), b'N');
        assert_eq!(complement(b'x'), b'N');
    }

    #[test]
    fn revcomp_simple() {
        assert_eq!(revcomp(b"ACGTN"), b"NACGT".to_vec());
        assert_eq!(revcomp(b""), Vec::<u8>::new());
        assert_eq!(revcomp(b"A"), b"T".to_vec());
    }

    #[test]
    fn revcomp_in_place_matches_allocating() {
        let cases: &[&[u8]] = &[b"", b"A", b"AC", b"ACG", b"ACGT", b"GATTACANNN"];
        for &c in cases {
            let mut buf = c.to_vec();
            revcomp_in_place(&mut buf);
            assert_eq!(buf, revcomp(c), "case {:?}", std::str::from_utf8(c));
        }
    }

    #[test]
    fn revcomp_is_involution() {
        let s = b"ACGTACGTNNGATTACA";
        assert_eq!(revcomp(&revcomp(s)), s.to_vec());
    }

    #[test]
    fn two_bit_round_trip() {
        for &b in &BASES {
            assert_eq!(base_from_2bit(base_to_2bit(b).unwrap()), b);
        }
        assert_eq!(base_to_2bit(b'N'), None);
    }

    #[test]
    fn validity() {
        assert!(is_valid_dna(b"ACGTN"));
        assert!(!is_valid_dna(b"ACGU"));
        assert!(is_valid_dna(b""));
    }
}
