//! 2-bit packed DNA with an N side mask.
//!
//! Each base is stored as a 2-bit code (A=0, C=1, G=2, T=3 — the same
//! mapping as [`crate::seq::base_to_2bit`]), 32 bases per `u64` word,
//! little-endian in lane order (base `i` occupies bits `2*(i%32)..` of word
//! `i/32`). Ambiguous bases (`N`, or any byte outside `ACGT`) are encoded
//! as code 0 with the corresponding 2-bit lane of a parallel *N mask* set
//! to `0b11`; a lane of the mask is therefore either `0b00` (a real base)
//! or `0b11` (never matches anything, mirroring
//! [`crate::ScoringScheme`-style] "N matches nothing" semantics downstream).
//!
//! The packed form is what the alignment kernel consumes: XOR-ing two code
//! words and OR-ing in both N masks yields a word whose 2-bit lanes are
//! zero exactly where the bases match, comparing 32 base pairs in a handful
//! of instructions. Packing happens **once per read at load time** (see
//! [`crate::ReadSet::push`]); downstream consumers only ever take cheap
//! [`PackedSlice`] views.

/// Bases stored per `u64` word.
pub const LANES_PER_WORD: usize = 32;

/// Byte → packed code table: `ACGT` map to 0–3, everything else to
/// [`CODE_AMBIG`] (packed as code 0 + N-mask lane).
pub const fn pack_code(b: u8) -> u8 {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => CODE_AMBIG,
    }
}

/// Sentinel return of [`pack_code`] for ambiguous/invalid bytes.
pub const CODE_AMBIG: u8 = 4;

/// Appends `seq` to a word-aligned packed buffer (`words`/`nmask` must end
/// on a word boundary). Tail lanes of the final word are poisoned as N so
/// out-of-range window reads can never alias a real base.
pub(crate) fn pack_append(seq: &[u8], words: &mut Vec<u64>, nmask: &mut Vec<u64>) {
    let base = words.len();
    let nwords = seq.len().div_ceil(LANES_PER_WORD);
    words.resize(base + nwords, 0);
    nmask.resize(base + nwords, 0);
    for (i, &b) in seq.iter().enumerate() {
        let v = pack_code(b);
        let w = base + i / LANES_PER_WORD;
        let sh = 2 * (i % LANES_PER_WORD);
        words[w] |= ((v & 3) as u64) << sh;
        if v == CODE_AMBIG {
            nmask[w] |= 0b11 << sh;
        }
    }
    let tail = seq.len() % LANES_PER_WORD;
    if tail != 0 {
        nmask[base + nwords - 1] |= u64::MAX << (2 * tail);
    }
}

/// An owned packed sequence (one read's worth of codes + N mask).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    nmask: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Packs a byte sequence. Bytes outside `ACGT` become N.
    pub fn from_bytes(seq: &[u8]) -> PackedSeq {
        let mut words = Vec::new();
        let mut nmask = Vec::new();
        pack_append(seq, &mut words, &mut nmask);
        PackedSeq {
            words,
            nmask,
            len: seq.len(),
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the sequence holds no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrowed view of the whole sequence.
    pub fn as_slice(&self) -> PackedSlice<'_> {
        PackedSlice {
            words: &self.words,
            nmask: &self.nmask,
            len: self.len,
        }
    }
}

/// A borrowed packed sequence: `len` bases starting at lane 0 of
/// `words`/`nmask` (packed storage is word-aligned per read).
#[derive(Debug, Clone, Copy)]
pub struct PackedSlice<'a> {
    /// 2-bit base codes, 32 lanes per word.
    pub words: &'a [u64],
    /// Parallel N mask (`0b11` lanes for ambiguous bases).
    pub nmask: &'a [u64],
    /// Number of bases.
    pub len: usize,
}

impl<'a> PackedSlice<'a> {
    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the slice holds no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 2-bit code of base `i` (the stored code; 0 for an N base — check
    /// [`PackedSlice::is_n`]).
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i / LANES_PER_WORD] >> (2 * (i % LANES_PER_WORD))) & 3) as u8
    }

    /// Whether base `i` is ambiguous.
    pub fn is_n(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.nmask[i / LANES_PER_WORD] >> (2 * (i % LANES_PER_WORD))) & 3 != 0
    }

    /// Decodes base `i` back to its byte (`N` for ambiguous).
    pub fn byte(&self, i: usize) -> u8 {
        if self.is_n(i) {
            b'N'
        } else {
            crate::seq::base_from_2bit(self.code(i))
        }
    }

    /// Extracts 32 lanes of `(codes, nmask)` for bases
    /// `start..start + 32`. Lanes before base 0 or past the end read as N
    /// (`0b11` mask), so window consumers can treat out-of-range bases as
    /// "matches nothing" without branching.
    pub fn window(&self, start: isize) -> (u64, u64) {
        if start >= self.len as isize {
            return (0, u64::MAX);
        }
        if start < 0 {
            let skip = (-start) as usize;
            if skip >= LANES_PER_WORD {
                return (0, u64::MAX);
            }
            let (c, n) = self.window(0);
            let sh = 2 * skip;
            return ((c << sh), (n << sh) | (u64::MAX >> (64 - sh)));
        }
        let start = start as usize;
        let w = start / LANES_PER_WORD;
        let sh = 2 * (start % LANES_PER_WORD);
        let mut c = self.words[w] >> sh;
        let mut n = self.nmask[w] >> sh;
        if sh != 0 {
            let hc = self.words.get(w + 1).copied().unwrap_or(0);
            let hn = self.nmask.get(w + 1).copied().unwrap_or(u64::MAX);
            c |= hc << (64 - sh);
            n |= hn << (64 - sh);
        }
        // Lanes past the end: the pack-time tail poison covers the final
        // word, but a window may also reach entirely absent words.
        let remain = self.len - start;
        if remain < LANES_PER_WORD {
            n |= u64::MAX << (2 * remain);
        }
        (c, n)
    }
}

/// Reverses the 32 2-bit lanes of a word (lane 0 ↔ lane 31). Used to align
/// a descending-index window with an ascending-lane one.
pub fn rev_lanes(mut x: u64) -> u64 {
    x = ((x >> 2) & 0x3333_3333_3333_3333) | ((x & 0x3333_3333_3333_3333) << 2);
    x = ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F) | ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4);
    x = ((x >> 8) & 0x00FF_00FF_00FF_00FF) | ((x & 0x00FF_00FF_00FF_00FF) << 8);
    x = ((x >> 16) & 0x0000_FFFF_0000_FFFF) | ((x & 0x0000_FFFF_0000_FFFF) << 16);
    x.rotate_left(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_n() {
        let seq = b"ACGTNACGTNNTTGCA";
        let p = PackedSeq::from_bytes(seq);
        assert_eq!(p.len(), seq.len());
        let s = p.as_slice();
        for (i, &b) in seq.iter().enumerate() {
            assert_eq!(s.byte(i), b, "base {i}");
            assert_eq!(s.is_n(i), b == b'N');
        }
    }

    #[test]
    fn codes_match_base_to_2bit() {
        let p = PackedSeq::from_bytes(b"ACGT");
        let s = p.as_slice();
        for (i, b) in b"ACGT".iter().enumerate() {
            assert_eq!(s.code(i), crate::seq::base_to_2bit(*b).unwrap());
        }
    }

    #[test]
    fn empty_sequence() {
        let p = PackedSeq::from_bytes(b"");
        assert!(p.is_empty());
        let (c, n) = p.as_slice().window(0);
        assert_eq!((c, n), (0, u64::MAX));
    }

    #[test]
    fn window_in_range() {
        // 80 bases, deterministic pattern; check arbitrary offsets.
        let seq: Vec<u8> = (0..80).map(|i| b"ACGTN"[(i * 7 + 3) % 5]).collect();
        let p = PackedSeq::from_bytes(&seq);
        let s = p.as_slice();
        for start in 0..80isize {
            let (c, n) = s.window(start);
            for t in 0..LANES_PER_WORD {
                let idx = start as usize + t;
                let lane_c = (c >> (2 * t)) & 3;
                let lane_n = (n >> (2 * t)) & 3;
                if idx < seq.len() {
                    if seq[idx] == b'N' {
                        assert_eq!(lane_n, 3, "start {start} lane {t}");
                    } else {
                        assert_eq!(lane_n, 0, "start {start} lane {t}");
                        assert_eq!(lane_c as u8, pack_code(seq[idx]));
                    }
                } else {
                    assert_eq!(lane_n, 3, "tail start {start} lane {t}");
                }
            }
        }
    }

    #[test]
    fn window_negative_start_reads_n() {
        let p = PackedSeq::from_bytes(b"ACGT");
        let s = p.as_slice();
        for start in [-1isize, -5, -31, -32, -100] {
            let (c, n) = s.window(start);
            for t in 0..LANES_PER_WORD {
                let idx = start + t as isize;
                let lane_n = (n >> (2 * t)) & 3;
                if !(0..4).contains(&idx) {
                    assert_eq!(lane_n, 3, "start {start} lane {t}");
                } else {
                    assert_eq!(lane_n, 0);
                    assert_eq!(((c >> (2 * t)) & 3) as u8, pack_code(b"ACGT"[idx as usize]));
                }
            }
        }
    }

    #[test]
    fn rev_lanes_reverses() {
        let seq: Vec<u8> = (0..32).map(|i| b"ACGT"[i % 4]).collect();
        let fwd = PackedSeq::from_bytes(&seq);
        let rev: Vec<u8> = seq.iter().rev().copied().collect();
        let bwd = PackedSeq::from_bytes(&rev);
        let (cf, _) = fwd.as_slice().window(0);
        let (cb, _) = bwd.as_slice().window(0);
        assert_eq!(rev_lanes(cf), cb);
        assert_eq!(rev_lanes(rev_lanes(cf)), cf);
    }

    #[test]
    fn xor_mask_match_semantics() {
        // (a ^ b) | na | nb has zero lanes exactly where bases match and
        // neither is N — the kernel's 32-way comparison.
        let a = b"ACGTNACGA";
        let b = b"ACCTNTCGA";
        let pa = PackedSeq::from_bytes(a);
        let pb = PackedSeq::from_bytes(b);
        let (ca, na) = pa.as_slice().window(0);
        let (cb, nb) = pb.as_slice().window(0);
        let neq = (ca ^ cb) | na | nb;
        for i in 0..a.len() {
            let matches = a[i] == b[i] && a[i] != b'N';
            assert_eq!((neq >> (2 * i)) & 3 == 0, matches, "lane {i}");
        }
    }
}
