//! Minimal FASTA reading and writing.
//!
//! The library operates on in-memory [`ReadSet`]s, but real pipelines start
//! from FASTA files; this module lets the examples and the end-to-end CLI
//! ingest and emit standard files. Sequences are upper-cased on input and
//! any IUPAC ambiguity code other than `ACGT` is normalised to `N`, matching
//! the 5-letter alphabet assumption in the paper (§2).

use crate::reads::{ReadOrigin, ReadSet, Strand};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses FASTA from a reader into a [`ReadSet`].
///
/// Record names are discarded (read ids are dense indices); origins are
/// filled with zeroed placeholders since external data has no ground truth.
pub fn read_fasta<R: Read>(reader: R) -> io::Result<ReadSet> {
    let mut set = ReadSet::new();
    let mut current: Vec<u8> = Vec::new();
    let mut in_record = false;
    let placeholder = ReadOrigin {
        start: 0,
        ref_len: 0,
        strand: Strand::Forward,
    };
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let line = line.trim_end();
        if line.starts_with('>') {
            if in_record && !current.is_empty() {
                set.push(&current, placeholder);
                current.clear();
            }
            in_record = true;
        } else if !line.is_empty() {
            if !in_record {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "FASTA sequence data before first '>' header",
                ));
            }
            current.extend(line.bytes().map(normalise_base));
        }
    }
    if in_record && !current.is_empty() {
        set.push(&current, placeholder);
    }
    Ok(set)
}

/// Reads a FASTA file from disk.
pub fn read_fasta_file<P: AsRef<Path>>(path: P) -> io::Result<ReadSet> {
    read_fasta(std::fs::File::open(path)?)
}

/// Writes `reads` as FASTA with `read_<id>` headers, wrapping at 80 columns.
pub fn write_fasta<W: Write>(writer: W, reads: &ReadSet) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (id, seq) in reads.iter() {
        writeln!(w, ">read_{id}")?;
        for chunk in seq.chunks(80) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    w.flush()
}

/// Writes a FASTA file to disk.
pub fn write_fasta_file<P: AsRef<Path>>(path: P, reads: &ReadSet) -> io::Result<()> {
    write_fasta(std::fs::File::create(path)?, reads)
}

/// Parses FASTQ from a reader into a [`ReadSet`].
///
/// Quality strings are discarded — the pipeline's error handling is
/// k-mer-frequency- and alignment-based, not quality-aware (as in the
/// paper's pipeline). Multi-line FASTQ (wrapped sequence) is not
/// supported; modern long-read FASTQ is 4-lines-per-record.
pub fn read_fastq<R: Read>(reader: R) -> io::Result<ReadSet> {
    let mut set = ReadSet::new();
    let placeholder = ReadOrigin {
        start: 0,
        ref_len: 0,
        strand: Strand::Forward,
    };
    let mut lines = BufReader::new(reader).lines();
    while let Some(header) = lines.next() {
        let header = header?;
        if header.trim_end().is_empty() {
            continue; // tolerate trailing blank lines
        }
        if !header.starts_with('@') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("FASTQ record must start with '@', got {header:?}"),
            ));
        }
        let seq = lines.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "truncated FASTQ: no sequence")
        })??;
        let plus = lines.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "truncated FASTQ: no '+'")
        })??;
        if !plus.starts_with('+') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "FASTQ separator line must start with '+'",
            ));
        }
        let qual = lines.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "truncated FASTQ: no quality")
        })??;
        if qual.trim_end().len() != seq.trim_end().len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "FASTQ quality length differs from sequence length",
            ));
        }
        let normalised: Vec<u8> = seq.trim_end().bytes().map(normalise_base).collect();
        set.push(&normalised, placeholder);
    }
    Ok(set)
}

/// Reads a FASTQ file from disk.
pub fn read_fastq_file<P: AsRef<Path>>(path: P) -> io::Result<ReadSet> {
    read_fastq(std::fs::File::open(path)?)
}

#[inline]
fn normalise_base(b: u8) -> u8 {
    match b.to_ascii_uppercase() {
        c @ (b'A' | b'C' | b'G' | b'T') => c,
        _ => b'N',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut set = ReadSet::new();
        let o = ReadOrigin {
            start: 0,
            ref_len: 0,
            strand: Strand::Forward,
        };
        set.push(b"ACGTACGT", o);
        set.push(&[b'G'; 200], o);
        let mut buf = Vec::new();
        write_fasta(&mut buf, &set).unwrap();
        let back = read_fasta(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.read(0), set.read(0));
        assert_eq!(back.read(1), set.read(1));
    }

    #[test]
    fn multiline_and_case_normalisation() {
        let text = b">r1\nacgt\nACGT\n>r2\nggg\n";
        let set = read_fasta(&text[..]).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.read(0), b"ACGTACGT");
        assert_eq!(set.read(1), b"GGG");
    }

    #[test]
    fn ambiguity_codes_become_n() {
        let text = b">r\nACRYSWGT\n";
        let set = read_fasta(&text[..]).unwrap();
        assert_eq!(set.read(0), b"ACNNNNGT");
    }

    #[test]
    fn data_before_header_is_error() {
        let text = b"ACGT\n>r\nACGT\n";
        assert!(read_fasta(&text[..]).is_err());
    }

    #[test]
    fn empty_input() {
        let set = read_fasta(&b""[..]).unwrap();
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn fastq_basic() {
        let text = b"@r1\nACGT\n+\nIIII\n@r2 with description\nggnn\n+r2\n!!!!\n";
        let set = read_fastq(&text[..]).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.read(0), b"ACGT");
        assert_eq!(set.read(1), b"GGNN");
    }

    #[test]
    fn fastq_errors() {
        assert!(read_fastq(&b"ACGT\n"[..]).is_err(), "missing @");
        assert!(read_fastq(&b"@r\nACGT\n"[..]).is_err(), "truncated");
        assert!(
            read_fastq(&b"@r\nACGT\nIIII\nIIII\n"[..]).is_err(),
            "bad separator"
        );
        assert!(
            read_fastq(&b"@r\nACGT\n+\nIII\n"[..]).is_err(),
            "quality length"
        );
    }

    #[test]
    fn fastq_trailing_blank_lines_ok() {
        let text = b"@r\nACGT\n+\nIIII\n\n\n";
        let set = read_fastq(&text[..]).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn line_wrapping_at_80() {
        let mut set = ReadSet::new();
        set.push(
            &[b'A'; 161],
            ReadOrigin {
                start: 0,
                ref_len: 0,
                strand: Strand::Forward,
            },
        );
        let mut buf = Vec::new();
        write_fasta(&mut buf, &set).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 80 + 80 + 1
        assert_eq!(lines[1].len(), 80);
        assert_eq!(lines[3].len(), 1);
    }
}
