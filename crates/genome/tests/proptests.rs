//! Property-based tests for sequence primitives and samplers.

use gnb_genome::rng::LogNormal;
use gnb_genome::seq::{complement, is_valid_dna, revcomp, revcomp_in_place};
use gnb_genome::{ErrorModel, Genome, GenomeParams};
use proptest::prelude::*;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// revcomp is an involution over the 5-letter alphabet.
    #[test]
    fn revcomp_involution(s in dna(200)) {
        prop_assert_eq!(revcomp(&revcomp(&s)), s);
    }

    /// In-place and allocating reverse complements agree.
    #[test]
    fn revcomp_in_place_agrees(s in dna(200)) {
        let mut buf = s.clone();
        revcomp_in_place(&mut buf);
        prop_assert_eq!(buf, revcomp(&s));
    }

    /// Complement is self-inverse on valid bases.
    #[test]
    fn complement_self_inverse(s in dna(100)) {
        for &b in &s {
            prop_assert_eq!(complement(complement(b)), b);
        }
    }

    /// The error model always emits valid DNA and respects the indel
    /// balance within statistical tolerance on long fragments.
    #[test]
    fn error_model_total(e in 0.0f64..0.3, seed in 0u64..1000) {
        let mut rng = gnb_genome::rng::rng_from_seed(seed);
        let frag: Vec<u8> = (0..2000).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
        let m = ErrorModel::clr(e);
        let noisy = m.corrupt(&mut rng, &frag);
        prop_assert!(is_valid_dna(&noisy));
        // Length within plausible bounds.
        let expect = frag.len() as f64 * (1.0 + m.ins_rate - m.del_rate);
        prop_assert!((noisy.len() as f64 - expect).abs() < 0.25 * frag.len() as f64 + 50.0);
    }

    /// Genome generation is deterministic and always valid.
    #[test]
    fn genome_deterministic(len in 100usize..5000, seed in 0u64..100) {
        let a = Genome::generate(GenomeParams::uniform(len), seed);
        let b = Genome::generate(GenomeParams::uniform(len), seed);
        prop_assert_eq!(&a.seq, &b.seq);
        prop_assert_eq!(a.len(), len);
        prop_assert!(is_valid_dna(&a.seq));
    }

    /// LogNormal sampling stays positive and matches its configured mean
    /// within broad tolerance.
    #[test]
    fn lognormal_positive(mean in 10.0f64..10000.0, sigma in 0.0f64..1.0, seed in 0u64..50) {
        let d = LogNormal::from_mean_sigma(mean, sigma);
        let mut rng = gnb_genome::rng::rng_from_seed(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
        prop_assert!((d.mean() - mean).abs() / mean < 1e-9);
    }
}
