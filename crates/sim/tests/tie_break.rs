//! Tie-break perturbation replay and race-detector regression tests.
//!
//! The engine's determinism contract (DESIGN.md "Determinism contract")
//! says equal-time event ordering is arbitrary: fault-free results may
//! not depend on it. These tests replay a workload under the reversed
//! ([`TieBreak::Lifo`]) ordering and assert the report is bit-identical,
//! and separately prove the race detector flags state that *does* depend
//! on the tie-break.

use gnb_sim::engine::{Ctx, Engine, Program, SimReport, TimeCategory};
use gnb_sim::{NetParams, SimTime, TieBreak};

fn net() -> NetParams {
    NetParams {
        ranks_per_node: 2,
        alpha_ns: 1000,
        intra_alpha_ns: 100,
        node_bw_bytes_per_sec: 1e9,
        per_msg_overhead_ns: 50,
        taper: 1.0,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Msg {
    Work(u64),
    Done,
}

/// An all-to-all scatter followed by per-message compute and a barrier —
/// enough equal-time traffic to make tie-break order matter *if* any
/// handler were order-sensitive.
struct Scatter {
    received: u64,
    done: usize,
    finish: Option<SimTime>,
}

impl Scatter {
    fn new() -> Scatter {
        Scatter {
            received: 0,
            done: 0,
            finish: None,
        }
    }
}

impl Program<Msg> for Scatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for dst in 0..ctx.nranks() {
            if dst != ctx.rank() {
                ctx.send(dst, 256, Msg::Work(ctx.rank() as u64 + 1));
            }
        }
        ctx.barrier_enter(0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, src: usize, msg: Msg) {
        match msg {
            Msg::Work(x) => {
                ctx.classify_idle(TimeCategory::Comm);
                // Order-insensitive accumulation.
                self.received += x * x;
                ctx.advance(SimTime::from_us(5), TimeCategory::Compute);
                ctx.send(src, 32, Msg::Done);
            }
            Msg::Done => {
                self.done += 1;
            }
        }
    }
    fn on_barrier(&mut self, ctx: &mut Ctx<'_, Msg>, _id: u64) {
        ctx.classify_idle(TimeCategory::Sync);
        self.finish = Some(ctx.now());
    }
}

fn run_scatter(nranks: usize, tb: TieBreak) -> (Vec<(u64, usize)>, SimReport) {
    let mut progs: Vec<Scatter> = (0..nranks).map(|_| Scatter::new()).collect();
    let report = Engine::new(nranks, net())
        .with_tie_break(tb)
        .run(&mut progs);
    let state = progs.iter().map(|p| (p.received, p.done)).collect();
    (state, report)
}

#[test]
fn fault_free_results_invariant_under_lifo_replay() {
    // The contract covers *results*: program state, booked work, event
    // counts. Micro-timing of idle tails (who waits longest for its last
    // reply) legitimately permutes with the service order of genuinely
    // concurrent requests, so finish times are not compared.
    for nranks in [2, 4, 8] {
        let (s_fifo, r_fifo) = run_scatter(nranks, TieBreak::Fifo);
        let (s_lifo, r_lifo) = run_scatter(nranks, TieBreak::Lifo);
        assert_eq!(s_fifo, s_lifo, "program state diverged at P={nranks}");
        assert_eq!(r_fifo.events, r_lifo.events, "event count at P={nranks}");
        for (a, b) in r_fifo.ranks.iter().zip(&r_lifo.ranks) {
            assert_eq!(a.ledger, b.ledger, "busy ledger diverged at P={nranks}");
            assert_eq!(a.mem_peak, b.mem_peak, "memory diverged at P={nranks}");
        }
    }
}

/// Two handlers for the same instant, each writing the same key without
/// consuming CPU: the canonical tie-break-dependent conflict. The value
/// of `last` after the run literally depends on the queue's seq order.
struct LastWriterWins {
    last: u64,
}

impl Program<Msg> for LastWriterWins {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.after(SimTime::from_us(10), Msg::Work(1));
        ctx.after(SimTime::from_us(10), Msg::Work(2));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _src: usize, msg: Msg) {
        if let Msg::Work(x) = msg {
            ctx.race_write(99);
            self.last = x;
        }
    }
    fn on_barrier(&mut self, _ctx: &mut Ctx<'_, Msg>, _id: u64) {}
}

#[test]
fn injected_same_time_write_write_conflict_is_flagged() {
    let mut progs = vec![LastWriterWins { last: 0 }];
    let report = Engine::new(1, net())
        .with_race_detection(16)
        .run(&mut progs);
    let races = report.races.expect("detection enabled");
    assert_eq!(races.records.len(), 1, "{:?}", races.records);
    let r = races.records[0];
    assert_eq!(r.key, 99);
    assert!(r.first_write && r.second_write);

    // And the perturbation replay confirms the hazard is real: the final
    // state flips with the tie-break.
    let run = |tb: TieBreak| {
        let mut progs = vec![LastWriterWins { last: 0 }];
        Engine::new(1, net()).with_tie_break(tb).run(&mut progs);
        progs[0].last
    };
    assert_eq!(run(TieBreak::Fifo), 2, "last insertion wins under fifo");
    assert_eq!(run(TieBreak::Lifo), 1, "reversed under lifo");
}

#[test]
fn clean_program_reports_no_races_with_detection_on() {
    let mut progs: Vec<Scatter> = (0..4).map(|_| Scatter::new()).collect();
    let report = Engine::new(4, net())
        .with_race_detection(64)
        .run(&mut progs);
    let races = report.races.expect("detection enabled");
    assert!(races.is_clean(), "{:?}", races.records);
}
