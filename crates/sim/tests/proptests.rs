//! Property-based tests of the DES engine: message conservation, barrier
//! correctness, virtual-time monotonicity, and determinism under random
//! SPMD programs.

use gnb_sim::engine::{Ctx, Program, TimeCategory};
use gnb_sim::{Engine, NetParams, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    Token { hops_left: u32 },
}

/// Forwards a token around the ring a random number of hops, then
/// barriers.
struct RingProg {
    sends: Vec<(usize, u32)>, // (initial target, hops) for this rank
    received: u64,
    forwarded: u64,
    last_event: SimTime,
    monotone: bool,
    compute_ns: u64,
}

impl RingProg {
    fn check_time(&mut self, now: SimTime) {
        if now < self.last_event {
            self.monotone = false;
        }
        self.last_event = now;
    }
}

impl Program<Msg> for RingProg {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.check_time(ctx.now());
        if self.compute_ns > 0 {
            ctx.advance(SimTime::from_ns(self.compute_ns), TimeCategory::Compute);
        }
        for &(dst, hops) in &self.sends.clone() {
            ctx.send(dst, 64, Msg::Token { hops_left: hops });
        }
        ctx.barrier_enter(0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _src: usize, msg: Msg) {
        self.check_time(ctx.now());
        let Msg::Token { hops_left } = msg;
        self.received += 1;
        if hops_left > 0 {
            let next = (ctx.rank() + 1) % ctx.nranks();
            ctx.send(
                next,
                64,
                Msg::Token {
                    hops_left: hops_left - 1,
                },
            );
            self.forwarded += 1;
        }
    }

    fn on_barrier(&mut self, ctx: &mut Ctx<'_, Msg>, _id: u64) {
        self.check_time(ctx.now());
        ctx.classify_idle(TimeCategory::Sync);
    }
}

fn net() -> NetParams {
    NetParams {
        ranks_per_node: 4,
        alpha_ns: 900,
        intra_alpha_ns: 120,
        node_bw_bytes_per_sec: 2e9,
        per_msg_overhead_ns: 80,
        taper: 0.9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Every injected token is received exactly (hops + 1) times across
    /// the machine; per-rank handler times are monotone; the run is
    /// deterministic.
    #[test]
    fn tokens_conserved_and_deterministic(
        nranks in 1usize..12,
        seeds in proptest::collection::vec((0usize..12, 0u32..6, 0u64..5000), 0..10)
    ) {
        let build = || -> Vec<RingProg> {
            (0..nranks)
                .map(|r| RingProg {
                    sends: seeds
                        .iter()
                        .filter(|(dst, _, _)| dst % nranks == r % nranks)
                        .map(|&(dst, hops, _)| ((dst * 7 + 3) % nranks, hops))
                        .collect(),
                    received: 0,
                    forwarded: 0,
                    last_event: SimTime::ZERO,
                    monotone: true,
                    compute_ns: seeds.iter().map(|&(_, _, c)| c).sum::<u64>() % 3000,
                })
                .collect()
        };
        let mut progs = build();
        let report = Engine::new(nranks, net()).run(&mut progs);

        let injected: u64 = progs.iter().map(|p| p.sends.len() as u64).sum();
        let expected_receives: u64 = progs
            .iter()
            .flat_map(|p| p.sends.iter().map(|&(_, hops)| hops as u64 + 1))
            .sum();
        let received: u64 = progs.iter().map(|p| p.received).sum();
        let forwarded: u64 = progs.iter().map(|p| p.forwarded).sum();
        prop_assert_eq!(received, expected_receives);
        prop_assert_eq!(forwarded, received - injected);
        prop_assert!(progs.iter().all(|p| p.monotone), "per-rank time must be monotone");

        // Determinism: a second run is bit-identical.
        let mut progs2 = build();
        let report2 = Engine::new(nranks, net()).run(&mut progs2);
        prop_assert_eq!(report, report2);
    }

    /// Barrier release time is never before any rank's entry, and all
    /// ranks see the same release time.
    #[test]
    fn barrier_release_consistent(nranks in 1usize..16, computes in proptest::collection::vec(0u64..100_000, 16)) {
        struct BarProg {
            compute_ns: u64,
            entered: SimTime,
            released: SimTime,
        }
        impl Program<Msg> for BarProg {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.advance(SimTime::from_ns(self.compute_ns), TimeCategory::Compute);
                self.entered = ctx.now();
                ctx.barrier_enter(7);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: usize, _: Msg) {}
            fn on_barrier(&mut self, ctx: &mut Ctx<'_, Msg>, id: u64) {
                assert_eq!(id, 7);
                self.released = ctx.now();
            }
        }
        let mut progs: Vec<BarProg> = (0..nranks)
            .map(|r| BarProg {
                compute_ns: computes[r % computes.len()],
                entered: SimTime::ZERO,
                released: SimTime::ZERO,
            })
            .collect();
        let _ = Engine::new(nranks, net()).run(&mut progs);
        let release = progs[0].released;
        let max_entry = progs.iter().map(|p| p.entered).max().unwrap();
        for p in &progs {
            prop_assert_eq!(p.released, release);
            prop_assert!(p.released >= max_entry);
        }
    }

    /// Network delivery: inter-node messages always arrive at least
    /// alpha + overhead later; NIC reservations never go backwards.
    #[test]
    fn network_monotone(sends in proptest::collection::vec((0usize..16, 0usize..16, 1u64..100_000), 1..50)) {
        let mut network = gnb_sim::Network::new(net(), 16);
        let mut now = SimTime::ZERO;
        for (src, dst, bytes) in sends {
            now += SimTime::from_ns(10);
            let arrival = network.delivery_time(now, src, dst, bytes);
            prop_assert!(arrival > now);
            let p = net();
            if p.node_of(src) != p.node_of(dst) {
                prop_assert!(arrival.as_ns() >= now.as_ns() + p.alpha_ns + 2 * p.per_msg_overhead_ns);
            } else {
                prop_assert_eq!(arrival.as_ns(), now.as_ns() + p.intra_alpha_ns);
            }
        }
    }
}
