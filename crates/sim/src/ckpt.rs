//! Deterministic checkpoint/restore for crash-stop recovery.
//!
//! Ranks periodically serialise their recovery-relevant state into a
//! [`CkptStore`] keyed by rank and epoch, on the *virtual* clock. When a
//! peer's crash is detected (see `gnb-core`'s runtime layer), a survivor
//! restores the dead rank's last checkpoint and replays the tail — the
//! whole protocol stays on virtual time and seeded hashing, so recovery
//! is bit-reproducible.
//!
//! Serialisation is a hand-rolled little-endian byte codec
//! ([`CkptWriter`] / [`CkptReader`]) rather than a serde format: the
//! vendored serde is an API stub, and a fixed byte layout is exactly what
//! the byte-identity acceptance tests pin. The [`Checkpointable`] trait
//! is implemented by the coordination strategies and the overlap stores;
//! primitive and container impls live here so those impls stay short.
//!
//! Checkpoint *cost* is part of the performance model: [`CkptParams`]
//! prices a write as `base + per_kib × ⌈size/1 KiB⌉`, which the driver
//! books as overhead (writes) or recovery (restores).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Little-endian byte sink for checkpoint serialisation.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// An empty writer.
    pub fn new() -> CkptWriter {
        CkptWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a little-endian u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed raw byte run.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Finishes, yielding the serialised bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian byte source for checkpoint restore.
///
/// Truncated or trailing input panics: checkpoint bytes never leave the
/// process, so a layout mismatch is a bug, not an input error.
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// Reads from `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> CkptReader<'a> {
        CkptReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let end = self.pos + n;
        assert!(
            end <= self.buf.len(),
            "checkpoint truncated: need {n} bytes at offset {}, have {}",
            self.pos,
            self.buf.len() - self.pos
        );
        let s = &self.buf[self.pos..end];
        self.pos = end;
        s
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> u8 {
        // gnb-lint: allow(panic-path, reason = "take() just asserted end <= buf.len() with a truncation diagnostic, so the one-byte slice is non-empty")
        self.take(1)[0]
    }

    /// Reads a bool (one byte).
    pub fn bool(&mut self) -> bool {
        self.u8() != 0
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> u32 {
        // gnb-lint: allow(panic-path, reason = "take(4) either asserts with a truncation diagnostic or returns exactly 4 bytes, so the array conversion cannot fail")
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> u64 {
        // gnb-lint: allow(panic-path, reason = "take(8) either asserts with a truncation diagnostic or returns exactly 8 bytes, so the array conversion cannot fail")
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Reads a usize (stored as u64).
    pub fn usize(&mut self) -> usize {
        self.u64() as usize
    }

    /// Reads a length-prefixed raw byte run.
    pub fn bytes(&mut self) -> &'a [u8] {
        let n = self.usize();
        self.take(n)
    }

    /// Asserts every byte was consumed (layout check on restore).
    pub fn finish(self) {
        assert_eq!(
            self.pos,
            self.buf.len(),
            "checkpoint has {} trailing bytes",
            self.buf.len() - self.pos
        );
    }
}

/// State that can round-trip through the checkpoint byte codec.
pub trait Checkpointable: Sized {
    /// Serialises `self` into `w`.
    fn checkpoint(&self, w: &mut CkptWriter);
    /// Rebuilds from `r`. Must consume exactly what [`Self::checkpoint`]
    /// wrote.
    fn restore(r: &mut CkptReader<'_>) -> Self;

    /// Convenience: serialise to an owned byte vector.
    fn to_ckpt_bytes(&self) -> Vec<u8> {
        let mut w = CkptWriter::new();
        self.checkpoint(&mut w);
        w.finish()
    }

    /// Convenience: rebuild from bytes, asserting full consumption.
    fn from_ckpt_bytes(bytes: &[u8]) -> Self {
        let mut r = CkptReader::new(bytes);
        let v = Self::restore(&mut r);
        r.finish();
        v
    }
}

impl Checkpointable for u32 {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.u32(*self);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        r.u32()
    }
}

impl Checkpointable for u64 {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.u64(*self);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        r.u64()
    }
}

impl Checkpointable for usize {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.usize(*self);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        r.usize()
    }
}

impl Checkpointable for bool {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.bool(*self);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        r.bool()
    }
}

impl<T: Checkpointable> Checkpointable for Vec<T> {
    fn checkpoint(&self, w: &mut CkptWriter) {
        w.usize(self.len());
        for v in self {
            v.checkpoint(w);
        }
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        let n = r.usize();
        (0..n).map(|_| T::restore(r)).collect()
    }
}

impl<T: Checkpointable> Checkpointable for Option<T> {
    fn checkpoint(&self, w: &mut CkptWriter) {
        match self {
            Some(v) => {
                w.bool(true);
                v.checkpoint(w);
            }
            None => w.bool(false),
        }
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        if r.bool() {
            Some(T::restore(r))
        } else {
            None
        }
    }
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for (A, B) {
    fn checkpoint(&self, w: &mut CkptWriter) {
        self.0.checkpoint(w);
        self.1.checkpoint(w);
    }
    fn restore(r: &mut CkptReader<'_>) -> Self {
        (A::restore(r), B::restore(r))
    }
}

/// One rank's checkpoint at one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptRecord {
    /// The checkpointing rank.
    pub rank: usize,
    /// Monotone per-rank epoch counter (0 = first checkpoint).
    pub epoch: u64,
    /// Virtual time the checkpoint was taken.
    pub at: SimTime,
    /// Serialised state.
    pub bytes: Vec<u8>,
}

/// Latest-checkpoint-per-rank store, modelling globally visible stable
/// storage (a burst buffer / parallel FS). Only the most recent epoch per
/// rank is retained — takeover restores from the last checkpoint, never
/// an older one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CkptStore {
    latest: Vec<Option<CkptRecord>>,
    /// Total checkpoint writes accepted.
    pub writes: u64,
    /// Total serialised bytes across all writes (including superseded
    /// epochs).
    pub bytes_written: u64,
}

impl CkptStore {
    /// An empty store for `nranks` ranks.
    pub fn new(nranks: usize) -> CkptStore {
        CkptStore {
            latest: vec![None; nranks],
            writes: 0,
            bytes_written: 0,
        }
    }

    /// Accepts a checkpoint, superseding any earlier epoch from `rank`.
    ///
    /// # Panics
    /// Panics if the epoch does not increase (checkpoints are monotone).
    pub fn record(&mut self, rank: usize, epoch: u64, at: SimTime, bytes: Vec<u8>) {
        // gnb-lint: allow(panic-path, reason = "rank ids come from the engine; latest has one slot per rank by construction")
        if let Some(prev) = &self.latest[rank] {
            assert!(
                epoch > prev.epoch,
                "rank {rank} checkpoint epoch went backwards ({} -> {epoch})",
                prev.epoch
            );
        }
        self.writes += 1;
        self.bytes_written += bytes.len() as u64;
        // gnb-lint: allow(panic-path, reason = "rank ids come from the engine; latest has one slot per rank by construction")
        self.latest[rank] = Some(CkptRecord {
            rank,
            epoch,
            at,
            bytes,
        });
    }

    /// The most recent checkpoint from `rank`, if it ever took one.
    pub fn latest(&self, rank: usize) -> Option<&CkptRecord> {
        // gnb-lint: allow(panic-path, reason = "rank ids come from the engine; latest has one slot per rank by construction")
        self.latest[rank].as_ref()
    }
}

/// Checkpoint cost/cadence parameters (virtual-time nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CkptParams {
    /// Interval between checkpoint epochs on each rank.
    pub interval_ns: u64,
    /// Fixed cost per checkpoint write or restore.
    pub base_ns: u64,
    /// Marginal cost per KiB serialised (rounded up).
    pub per_kib_ns: u64,
}

impl Default for CkptParams {
    fn default() -> CkptParams {
        CkptParams {
            interval_ns: 250_000_000,
            base_ns: 200_000,
            per_kib_ns: 2_000,
        }
    }
}

impl CkptParams {
    /// Virtual time to write or restore a `bytes`-sized checkpoint.
    pub fn io_cost(&self, bytes: usize) -> SimTime {
        let kib = (bytes as u64).div_ceil(1024);
        SimTime::from_ns(self.base_ns + self.per_kib_ns * kib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = CkptWriter::new();
        7u32.checkpoint(&mut w);
        u64::MAX.checkpoint(&mut w);
        true.checkpoint(&mut w);
        vec![1u32, 2, 3].checkpoint(&mut w);
        Some(9usize).checkpoint(&mut w);
        Option::<u64>::None.checkpoint(&mut w);
        (4u32, vec![5u64]).checkpoint(&mut w);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes);
        assert_eq!(u32::restore(&mut r), 7);
        assert_eq!(u64::restore(&mut r), u64::MAX);
        assert!(bool::restore(&mut r));
        assert_eq!(Vec::<u32>::restore(&mut r), vec![1, 2, 3]);
        assert_eq!(Option::<usize>::restore(&mut r), Some(9));
        assert_eq!(Option::<u64>::restore(&mut r), None);
        assert_eq!(<(u32, Vec<u64>)>::restore(&mut r), (4, vec![5]));
        r.finish();
    }

    #[test]
    fn serialisation_is_deterministic() {
        let v = vec![(1u32, 2u64), (3, 4)];
        assert_eq!(v.to_ckpt_bytes(), v.to_ckpt_bytes());
        assert_eq!(Vec::<(u32, u64)>::from_ckpt_bytes(&v.to_ckpt_bytes()), v);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_restore_panics() {
        let bytes = 1234u64.to_ckpt_bytes();
        let _ = u64::from_ckpt_bytes(&bytes[..4]);
    }

    #[test]
    #[should_panic(expected = "trailing")]
    fn trailing_bytes_panic() {
        let mut bytes = 1234u64.to_ckpt_bytes();
        bytes.push(0);
        let _ = u64::from_ckpt_bytes(&bytes);
    }

    #[test]
    fn store_keeps_latest_epoch_only() {
        let mut s = CkptStore::new(2);
        assert!(s.latest(1).is_none());
        s.record(1, 0, SimTime::from_ms(1), vec![1, 2]);
        s.record(1, 1, SimTime::from_ms(2), vec![3]);
        let rec = s.latest(1).unwrap();
        assert_eq!((rec.epoch, rec.bytes.as_slice()), (1, &[3u8][..]));
        assert_eq!(rec.at, SimTime::from_ms(2));
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_written, 3);
    }

    #[test]
    #[should_panic(expected = "epoch went backwards")]
    fn store_rejects_stale_epoch() {
        let mut s = CkptStore::new(1);
        s.record(0, 3, SimTime::from_ms(1), vec![]);
        s.record(0, 3, SimTime::from_ms(2), vec![]);
    }

    #[test]
    fn io_cost_scales_with_size() {
        let p = CkptParams::default();
        assert_eq!(p.io_cost(0).as_ns(), p.base_ns);
        assert_eq!(p.io_cost(1).as_ns(), p.base_ns + p.per_kib_ns);
        assert_eq!(p.io_cost(1024).as_ns(), p.base_ns + p.per_kib_ns);
        assert_eq!(p.io_cost(1025).as_ns(), p.base_ns + 2 * p.per_kib_ns);
    }
}
