//! Sharded conservative-parallel execution of the DES engine.
//!
//! The serial engine pops one `(time, seq)`-ordered event at a time. This
//! module runs the same simulation as a sequence of *windows*: at each
//! outer step the coordinator pops every event below a lookahead horizon
//! `H = W + L` (`W` = earliest pending event, `L` = the `intra_alpha_ns`
//! latency floor from [`crate::net::NetParams`]), routes them to per-rank
//! *chains* that execute handlers in parallel on worker shards, then
//! merge-replays the chains' effect logs against the engine core in exact
//! serial order. The result — report, observability trace, race records,
//! queue sequence numbers — is **byte-identical** to the serial engine.
//!
//! # Why the lookahead is sound
//!
//! Every cross-rank effect a handler can cause lands at or beyond the
//! horizon, so windows never need to exchange events mid-flight:
//!
//! * **Sends** (including self-sends) go through
//!   [`Network::delivery_time`], which adds at least `intra_alpha_ns`
//!   (intra-node) or `alpha_ns ≥ intra_alpha_ns` (inter-node, a mode
//!   precondition) to the send time, and the send time is at least `W`.
//! * **Barrier releases** happen at `max(entry times) + α·⌈log₂ P⌉ ≥ now
//!   + alpha_ns ≥ H` when completed by an entry inside the window (the
//!   mode requires `nranks ≥ 2`, so the log factor is ≥ 1).
//! * **Self-timers** ([`Ctx::after`]) may fire below the horizon — they
//!   stay on the *same* rank, so the rank's chain executes them locally,
//!   in exactly the order the serial queue would have popped them (see
//!   "provisional sequence numbers" below).
//!
//! The one event kind that can travel back in time is a *crash sweep*: a
//! death mark releasing a long-pending barrier schedules the release from
//! the barrier's old `max_entry`, potentially before `W`. Whenever a
//! death mark sits inside the lookahead, the coordinator therefore
//! degrades to a single-event window (`H = W`, one pop, no local
//! execution) — which is exactly the serial semantics, expressed through
//! the same chain/replay machinery. Rebirth marks touch only rank-local
//! state and flow through normal windows.
//!
//! # Provisional sequence numbers
//!
//! Chains run before the coordinator knows the serial sequence numbers of
//! in-window pushes. Rank-local events created during a window (sub-
//! horizon self-timers, busy-deferrals, stall retries) get *provisional*
//! keys that reproduce the serial tie-break order on both policies:
//! committed seqs are all smaller than any window-allocated seq, and a
//! rank's in-window allocations happen in its own execution order — so
//! `PROV_BASE + idx` (FIFO) / its mirror (LIFO) slot local events exactly
//! where the serial heap would. At replay, the record that *created* a
//! local event always precedes the event's own record in the same rank's
//! log, so by the time a provisional entry reaches the cross-rank merge
//! its true sequence number is known and the merge key `(time,
//! tie_break.order(seq))` is exact.
//!
//! # What runs where
//!
//! * **Chains (worker shards)**: handler code, rank-local state (busy
//!   horizon, ledger, liveness, memory gauge), pure fault predicates
//!   (straggler factor, stall schedule, crash dooming). Output: one
//!   [`Record`] per serial pop, with the handler's global effects logged
//!   as [`Action`]s.
//! * **Merge-replay (coordinator)**: everything order-sensitive — queue
//!   pushes and sequence allocation, NIC reservations, message-fate
//!   decisions (they consume global send counters), barrier map, crash
//!   sweeps, fault counters, observability, race detection. Replay calls
//!   the *same* `EngineCore` methods as the serial loop (`exec_send`,
//!   `exec_barrier_enter`, `exec_death`, …), so semantics cannot drift.
//!
//! This module is the only place in the determinism core allowed to use
//! `std::thread` / channels (enforced by `gnb-lint`'s `thread-primitives`
//! rule): worker shards communicate exclusively by value over channels,
//! and every shared effect is funneled through the deterministic replay.

use crate::engine::{Ctx, EngineCore, Program, TimeCategory, CATEGORIES};
use crate::event::{EventPayload, TieBreak};
use crate::fault::FaultPlan;
use crate::membership;
use crate::obs::{EdgeKind, InstantKind, MetricId};
use crate::time::SimTime;
use std::collections::BinaryHeap;
use std::sync::mpsc;

/// Fault counters a chain can settle locally (pure per-rank decisions).
/// Summed into the engine's [`crate::fault::FaultStats`] at copyback —
/// they are order-independent totals, so lane-local accumulation is safe.
#[derive(Debug, Default, Clone)]
pub(crate) struct LaneStats {
    pub(crate) straggler_excess: SimTime,
    pub(crate) stall_events: u64,
    pub(crate) stall_time: SimTime,
    pub(crate) crash_events_dropped: u64,
}

/// Rank-local engine state, owned by a worker shard for the whole
/// parallel run (copied out of the core at entry, copied back at exit).
/// Everything here is touched only by the owning rank's chain, never by
/// the replay — the split is what makes the chains embarrassingly
/// parallel.
#[derive(Debug, Clone)]
pub(crate) struct RankLane {
    pub(crate) busy: SimTime,
    pub(crate) finish: SimTime,
    pub(crate) dead: bool,
    pub(crate) ledger: [SimTime; CATEGORIES],
    pub(crate) unclassified_idle: SimTime,
    pub(crate) mem_cur: u64,
    pub(crate) mem_peak: u64,
    pub(crate) stats: LaneStats,
}

impl RankLane {
    fn from_core<M>(core: &EngineCore<M>, r: usize) -> RankLane {
        RankLane {
            // gnb-lint: allow(panic-path, reason = "per-rank vectors have nranks entries and r iterates 0..nranks")
            busy: core.busy_until[r],
            // gnb-lint: allow(panic-path, reason = "per-rank vectors have nranks entries and r iterates 0..nranks")
            finish: core.finish[r],
            // gnb-lint: allow(panic-path, reason = "per-rank vectors have nranks entries and r iterates 0..nranks")
            dead: core.membership.dead[r],
            // gnb-lint: allow(panic-path, reason = "per-rank vectors have nranks entries and r iterates 0..nranks")
            ledger: core.ledger[r],
            // gnb-lint: allow(panic-path, reason = "per-rank vectors have nranks entries and r iterates 0..nranks")
            unclassified_idle: core.unclassified_idle[r],
            mem_cur: core.mem.current(r),
            mem_peak: core.mem.peak(r),
            stats: LaneStats::default(),
        }
    }

    /// Mirror of [`crate::mem::MemTracker::alloc`] on the lane's copy.
    pub(crate) fn mem_alloc(&mut self, bytes: u64) {
        self.mem_cur += bytes;
        if self.mem_cur > self.mem_peak {
            self.mem_peak = self.mem_cur;
        }
    }

    /// Mirror of [`crate::mem::MemTracker::free`], including its
    /// fail-loudly contract (same message, so tests can't tell the modes
    /// apart even by panic).
    pub(crate) fn mem_free(&mut self, rank: usize, bytes: u64) {
        assert!(
            self.mem_cur >= bytes,
            "rank {rank} freeing {bytes} with only {} allocated",
            self.mem_cur
        );
        self.mem_cur -= bytes;
    }
}

/// A global effect logged by a handler running in a lane, replayed by the
/// coordinator in serial order.
#[derive(Debug)]
pub(crate) enum Action<M> {
    /// Busy-time span: replays the trace record and observability span.
    /// (Ledger booking already happened lane-side.)
    Advance {
        start: SimTime,
        end: SimTime,
        cat: TimeCategory,
    },
    /// A full [`Ctx::send`]: everything it touches is order-sensitive
    /// global state, so the payload rides along and the replay runs
    /// [`EngineCore::exec_send`] verbatim.
    Send {
        now: SimTime,
        dst: usize,
        bytes: u64,
        msg: M,
    },
    /// An (un-doomed) [`Ctx::after`]. `local_idx` set: the timer fires
    /// inside this window and was consumed by the rank's own chain — the
    /// replay only allocates its serial seq (filling the remap slot) and
    /// records the push edge. `local_idx` unset: the timer leaves the
    /// window; the payload rides along and the replay pushes it.
    After {
        now: SimTime,
        sched: SimTime,
        local_idx: Option<u32>,
        msg: Option<M>,
    },
    /// An (un-guarded) [`Ctx::barrier_enter`], replayed through
    /// [`EngineCore::exec_barrier_enter`].
    Barrier { now: SimTime, id: u64 },
    /// Memory gauge sample after a lane-side alloc/free.
    MemGauge { now: SimTime, cur: u64 },
    /// Race-detector access (only logged when detection is enabled).
    Race { key: u64, write: bool },
    /// Program-level observability instant.
    ObsInstant {
        now: SimTime,
        kind: InstantKind,
        key: u64,
    },
}

/// Identity of an event inside a window: either a sequence number the
/// queue committed before the window, or the index of an in-window
/// allocation whose serial seq the replay resolves via the remap table.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeqRef {
    Committed(u64),
    Local(u32),
}

/// What one serial queue-pop did, as observed by the owning rank's chain.
#[derive(Debug)]
pub(crate) enum RecordKind<M> {
    /// Rebirth mark: rank-local only; replay just balances the pop.
    Rebirth,
    /// Death mark: replay counts the crash and runs the barrier sweep.
    Death,
    /// Event addressed to a dead rank, discarded.
    Discard,
    /// Busy-deferral that would cross the rank's own crash: dropped.
    DoomedDefer,
    /// Busy-deferral to `to`. Sub-horizon deferrals stay in the chain
    /// (`new_idx`); others carry the payload back to the real queue.
    Requeue {
        to: SimTime,
        new_idx: Option<u32>,
        out: Option<EventPayload<M>>,
    },
    /// Transient stall freeze: recovery span plus a retry at `thaw`.
    Stall {
        at: SimTime,
        thaw: SimTime,
        new_idx: Option<u32>,
        out: Option<EventPayload<M>>,
    },
    /// A handler dispatch: `actions` replay in program order.
    Dispatch {
        end: SimTime,
        actions: Vec<Action<M>>,
    },
}

/// One serial queue-pop equivalent in a rank's window log.
#[derive(Debug)]
pub(crate) struct Record<M> {
    pub(crate) time: SimTime,
    pub(crate) seq: SeqRef,
    pub(crate) kind: RecordKind<M>,
}

/// Provisional orders start above every seq the queue can have committed
/// before the window (the global counter is nowhere near 2^63).
const PROV_BASE: u64 = 1 << 63;

/// Tie-break order key for the `idx`-th in-window allocation of a rank.
/// Committed seqs are smaller than any window-allocated seq, and a rank's
/// allocations are ordered by `idx`, so this reproduces
/// [`TieBreak::order`] on the eventual serial seqs for both policies.
fn prov_order(tb: TieBreak, idx: u32) -> u64 {
    match tb {
        TieBreak::Fifo => PROV_BASE + idx as u64,
        TieBreak::Lifo => u64::MAX - (PROV_BASE + idx as u64),
    }
}

/// A rank-local event scheduled inside the current window.
#[derive(Debug)]
struct LocalEntry<M> {
    key: (SimTime, u64),
    idx: u32,
    payload: EventPayload<M>,
}

impl<M> PartialEq for LocalEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for LocalEntry<M> {}
impl<M> PartialOrd for LocalEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for LocalEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, the chain wants the earliest.
        other.key.cmp(&self.key)
    }
}

/// Mini event queue for one rank's in-window events, with provisional
/// tie-break keys (see [`prov_order`]). `next_idx` doubles as the remap
/// table size: each allocation owns one slot the replay fills with the
/// true serial seq.
#[derive(Debug)]
pub(crate) struct LocalQueue<M> {
    heap: BinaryHeap<LocalEntry<M>>,
    next_idx: u32,
}

impl<M> LocalQueue<M> {
    fn new() -> LocalQueue<M> {
        LocalQueue {
            heap: BinaryHeap::new(),
            next_idx: 0,
        }
    }

    /// Allocates a provisional identity for an in-window push *without*
    /// queueing anything locally (the event leaves the window).
    fn alloc(&mut self) -> u32 {
        let idx = self.next_idx;
        self.next_idx += 1;
        idx
    }

    fn push(&mut self, tb: TieBreak, time: SimTime, payload: EventPayload<M>) -> u32 {
        let idx = self.alloc();
        self.heap.push(LocalEntry {
            key: (time, prov_order(tb, idx)),
            idx,
            payload,
        });
        idx
    }

    fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| e.key)
    }

    fn pop(&mut self) -> Option<LocalEntry<M>> {
        self.heap.pop()
    }
}

/// The lane-side backend behind [`Ctx`] for one handler dispatch (see
/// [`crate::engine::CtxCore`]). Everything mutable is rank-local; global
/// effects append to `actions`.
pub(crate) struct LaneCtx<'a, M> {
    pub(crate) lane: &'a mut RankLane,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) local: &'a mut LocalQueue<M>,
    pub(crate) fault: Option<&'a FaultPlan>,
    /// Window horizon `H`: self-timers below it are consumed in-chain.
    pub(crate) horizon: SimTime,
    pub(crate) tb: TieBreak,
    pub(crate) nranks: usize,
    pub(crate) trace_on: bool,
    pub(crate) obs_on: bool,
    pub(crate) races_on: bool,
}

impl<M> LaneCtx<'_, M> {
    pub(crate) fn log_advance(&mut self, start: SimTime, end: SimTime, cat: TimeCategory) {
        // The replayed effects are the trace span and the observability
        // span; with both recorders off the action would replay to
        // nothing, so don't pay for logging it.
        if self.trace_on || self.obs_on {
            self.actions.push(Action::Advance { start, end, cat });
        }
    }

    pub(crate) fn log_send(&mut self, now: SimTime, dst: usize, bytes: u64, msg: M) {
        self.actions.push(Action::Send {
            now,
            dst,
            bytes,
            msg,
        });
    }

    pub(crate) fn log_after(&mut self, rank: usize, now: SimTime, sched: SimTime, msg: M) {
        if sched < self.horizon {
            let idx = self
                .local
                .push(self.tb, sched, EventPayload::Message { src: rank, msg });
            self.actions.push(Action::After {
                now,
                sched,
                local_idx: Some(idx),
                msg: None,
            });
        } else {
            self.actions.push(Action::After {
                now,
                sched,
                local_idx: None,
                msg: Some(msg),
            });
        }
    }

    pub(crate) fn log_barrier(&mut self, now: SimTime, id: u64) {
        self.actions.push(Action::Barrier { now, id });
    }

    pub(crate) fn log_mem_gauge(&mut self, now: SimTime, cur: u64) {
        if self.obs_on {
            self.actions.push(Action::MemGauge { now, cur });
        }
    }

    pub(crate) fn log_race(&mut self, key: u64, write: bool) {
        if self.races_on {
            self.actions.push(Action::Race { key, write });
        }
    }

    pub(crate) fn log_instant(&mut self, now: SimTime, kind: InstantKind, key: u64) {
        if self.obs_on {
            self.actions.push(Action::ObsInstant { now, kind, key });
        }
    }
}

/// An event the coordinator routed to a rank's chain for this window.
#[derive(Debug)]
pub(crate) struct Item<M> {
    time: SimTime,
    seq: u64,
    kind: ItemKind<M>,
}

#[derive(Debug)]
enum ItemKind<M> {
    Mark { rebirth: bool },
    Ev(EventPayload<M>),
}

/// Per-window unit of work for one shard: the items of each of its active
/// ranks, in serial pop order.
enum Job<M> {
    Window {
        h: SimTime,
        items: Vec<(usize, Vec<Item<M>>)>,
    },
    Finish,
}

enum Reply<M> {
    Logs(Vec<(usize, Vec<Record<M>>)>),
    Lanes { lo: usize, lanes: Vec<RankLane> },
}

/// Splits `0..nranks` into at most `threads` contiguous shards. Shard
/// boundaries align to node boundaries when there are enough nodes to go
/// around (keeping `intra_alpha_ns` traffic shard-local); with fewer
/// nodes than shards the split falls back to rank granularity — node
/// alignment is a locality heuristic, never a correctness requirement.
fn partition(nranks: usize, threads: usize, ranks_per_node: usize) -> Vec<(usize, usize)> {
    let rpn = ranks_per_node.clamp(1, nranks.max(1));
    let nodes = nranks.div_ceil(rpn);
    let (units, unit) = if nodes >= threads {
        (nodes, rpn)
    } else {
        (nranks, 1)
    };
    let shards = threads.min(units).max(1);
    let mut out = Vec::with_capacity(shards);
    for s in 0..shards {
        let lo = (s * units / shards) * unit;
        let hi = (((s + 1) * units / shards) * unit).min(nranks);
        if lo < hi {
            out.push((lo, hi));
        }
    }
    out
}

/// Executes one rank's window: its routed items merged with the local
/// mini-queue in `(time, order)` sequence, each step mirroring one
/// iteration of the serial loop (`engine::serial_step`). Returns the
/// record log the coordinator replays.
#[allow(clippy::too_many_arguments)]
fn run_chain<M: Clone, P: Program<M>>(
    prog: &mut P,
    lane: &mut RankLane,
    rank: usize,
    items: Vec<Item<M>>,
    h: SimTime,
    tb: TieBreak,
    fault: Option<&FaultPlan>,
    nranks: usize,
    flags: (bool, bool, bool),
) -> Vec<Record<M>> {
    let (trace_on, obs_on, races_on) = flags;
    let mut records: Vec<Record<M>> = Vec::with_capacity(items.len());
    let mut local: LocalQueue<M> = LocalQueue::new();
    let mut items = items.into_iter().peekable();
    loop {
        let take_local = match (items.peek(), local.peek_key()) {
            (Some(it), Some(lk)) => lk < (it.time, tb.order(it.seq)),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => break,
        };
        let (time, seq, kind) = if take_local {
            // gnb-lint: allow(panic-path, reason = "peek_key() just returned Some for this heap")
            let e = local.pop().expect("peeked local event");
            (e.key.0, SeqRef::Local(e.idx), ItemKind::Ev(e.payload))
        } else {
            // gnb-lint: allow(panic-path, reason = "items.peek() just returned Some for this iterator")
            let it = items.next().expect("peeked item");
            (it.time, SeqRef::Committed(it.seq), it.kind)
        };
        let payload = match kind {
            ItemKind::Mark { rebirth } => {
                if rebirth {
                    // The reborn incarnation starts idle (serial_step).
                    lane.dead = false;
                    lane.busy = lane.busy.max(time);
                    records.push(Record {
                        time,
                        seq,
                        kind: RecordKind::Rebirth,
                    });
                } else {
                    lane.dead = true;
                    records.push(Record {
                        time,
                        seq,
                        kind: RecordKind::Death,
                    });
                }
                continue;
            }
            ItemKind::Ev(p) => p,
        };
        if lane.dead {
            records.push(Record {
                time,
                seq,
                kind: RecordKind::Discard,
            });
            continue;
        }
        let busy = lane.busy;
        if busy > time {
            if membership::crash_dooms(fault, rank, rank, time, busy) {
                records.push(Record {
                    time,
                    seq,
                    kind: RecordKind::DoomedDefer,
                });
                continue;
            }
            let (new_idx, out) = if busy < h {
                (Some(local.push(tb, busy, payload)), None)
            } else {
                (None, Some(payload))
            };
            records.push(Record {
                time,
                seq,
                kind: RecordKind::Requeue {
                    to: busy,
                    new_idx,
                    out,
                },
            });
            continue;
        }
        if let Some(f) = fault {
            let at = time.max(busy);
            if let Some(thaw) = f.stall_until(rank, at) {
                if thaw > at {
                    let frozen = thaw - at;
                    // gnb-lint: allow(panic-path, reason = "ledger is a fixed CATEGORIES-sized array indexed by the TimeCategory discriminant")
                    lane.ledger[TimeCategory::Recovery as usize] += frozen;
                    lane.stats.stall_events += 1;
                    lane.stats.stall_time += frozen;
                    lane.busy = thaw;
                    lane.finish = lane.finish.max(thaw);
                    let (new_idx, out) = if thaw < h {
                        (Some(local.push(tb, thaw, payload)), None)
                    } else {
                        (None, Some(payload))
                    };
                    records.push(Record {
                        time,
                        seq,
                        kind: RecordKind::Stall {
                            at,
                            thaw,
                            new_idx,
                            out,
                        },
                    });
                    continue;
                }
            }
        }
        let idle = time.saturating_sub(busy);
        let mut actions: Vec<Action<M>> = Vec::new();
        let mut ctx = Ctx::for_lane(
            LaneCtx {
                lane: &mut *lane,
                actions: &mut actions,
                local: &mut local,
                fault,
                horizon: h,
                tb,
                nranks,
                trace_on,
                obs_on,
                races_on,
            },
            rank,
            time,
            idle,
        );
        match payload {
            EventPayload::Start => prog.on_start(&mut ctx),
            EventPayload::Message { src, msg } => prog.on_message(&mut ctx, src, msg),
            EventPayload::BarrierDone { id } => prog.on_barrier(&mut ctx, id),
        }
        let (end, leftover_idle) = ctx.into_end();
        lane.unclassified_idle += leftover_idle;
        lane.busy = end;
        lane.finish = lane.finish.max(end);
        records.push(Record {
            time,
            seq,
            kind: RecordKind::Dispatch { end, actions },
        });
    }
    records
}

/// Resolves a window-local seq reference to its serial sequence number.
/// Local entries are guaranteed resolved before they reach the merge (the
/// creating record replays earlier in the same rank's log).
fn resolved(seq: SeqRef, remap: &[u64]) -> u64 {
    match seq {
        SeqRef::Committed(s) => s,
        SeqRef::Local(i) => {
            // gnb-lint: allow(panic-path, reason = "the creating record replays earlier in the same rank's log, filling this remap slot before the merge reads it")
            let s = remap[i as usize];
            debug_assert_ne!(s, u64::MAX, "provisional seq read before resolution");
            s
        }
    }
}

fn set_remap(remap: &mut Vec<u64>, idx: u32, seq: u64) {
    let i = idx as usize;
    if remap.len() <= i {
        remap.resize(i + 1, u64::MAX);
    }
    // gnb-lint: allow(panic-path, reason = "the vector was just resized to cover index i")
    remap[i] = seq;
}

/// Replays one action of a dispatched handler against the engine core in
/// serial order. Returns the number of real-or-virtual queue pushes.
fn replay_action<M: Clone>(
    core: &mut EngineCore<M>,
    rank: usize,
    action: Action<M>,
    remap: &mut Vec<u64>,
) -> usize {
    match action {
        Action::Advance { start, end, cat } => {
            if let Some(trace) = &mut core.trace {
                trace.record(rank, start, end, cat);
            }
            if let Some(obs) = &mut core.obs {
                obs.on_advance(rank, start, end, cat);
            }
            0
        }
        Action::Send {
            now,
            dst,
            bytes,
            msg,
        } => core.exec_send(rank, now, dst, bytes, msg),
        Action::After {
            now,
            sched,
            local_idx,
            msg,
        } => {
            match local_idx {
                Some(idx) => {
                    // The timer was consumed inside the window by the
                    // owning chain: allocate its serial seq (keeping the
                    // global counter bit-identical) and record the push
                    // edge, but the real heap never sees it.
                    let seq = core.queue.alloc_seq();
                    set_remap(remap, idx, seq);
                    if let Some(obs) = &mut core.obs {
                        obs.on_push(seq, EdgeKind::Timer, now, sched);
                    }
                }
                None => {
                    // gnb-lint: allow(panic-path, reason = "log_after always pairs local_idx: None with Some payload; the two sides are built in the same match")
                    let msg = msg.expect("non-local after carries its payload");
                    core.exec_after_push(rank, now, sched, msg);
                }
            }
            1
        }
        Action::Barrier { now, id } => core.exec_barrier_enter(now, id),
        Action::MemGauge { now, cur } => {
            if let Some(obs) = &mut core.obs {
                obs.gauge_set(MetricId::MemCurrent, rank as u32, now, cur);
            }
            0
        }
        Action::Race { key, write } => {
            if let Some(rd) = &mut core.races {
                rd.access(key, write);
            }
            0
        }
        Action::ObsInstant { now, kind, key } => {
            if let Some(obs) = &mut core.obs {
                obs.instant(rank, now, kind, key);
            }
            0
        }
    }
}

/// One rank's record log being merged, with its remap table.
struct Stream<M> {
    rank: usize,
    records: std::vec::IntoIter<Record<M>>,
    head: Option<Record<M>>,
    remap: Vec<u64>,
}

/// Merge-replays all rank logs of one window against the engine core in
/// global `(time, tie_break.order(seq))` order — the serial pop order.
/// `virt_start` is the queue length at window start; the running
/// `virtual_len` reconstructs the serial queue length at every dispatch
/// (observability records it) and is asserted against the real queue at
/// window end.
fn replay_window<M: Clone>(
    core: &mut EngineCore<M>,
    logs: Vec<(usize, Vec<Record<M>>)>,
    virt_start: usize,
    tb: TieBreak,
) {
    let mut virtual_len = virt_start;
    let mut streams: Vec<Stream<M>> = logs
        .into_iter()
        .map(|(rank, recs)| {
            let mut records = recs.into_iter();
            let head = records.next();
            Stream {
                rank,
                records,
                head,
                remap: Vec::new(),
            }
        })
        .collect();
    loop {
        // Linear scan for the earliest head: window logs are short, and a
        // heap would have to cope with keys that resolve lazily.
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (i, st) in streams.iter().enumerate() {
            if let Some(rec) = &st.head {
                let key = (rec.time, tb.order(resolved(rec.seq, &st.remap)));
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((i, key));
                }
            }
        }
        let Some((i, _)) = best else { break };
        // gnb-lint: allow(panic-path, reason = "best was computed from a stream whose head is Some")
        let st = &mut streams[i];
        // gnb-lint: allow(panic-path, reason = "best was computed from a stream whose head is Some")
        let rec = st.head.take().expect("stream head checked above");
        st.head = st.records.next();
        let rank = st.rank;
        let seq = resolved(rec.seq, &st.remap);
        // Every record corresponds to exactly one serial pop.
        virtual_len -= 1;
        match rec.kind {
            RecordKind::Rebirth => {}
            RecordKind::Death => {
                virtual_len += core.exec_death(rank, rec.time);
            }
            RecordKind::Discard | RecordKind::DoomedDefer => {
                core.fault_stats.crash_events_dropped += 1;
            }
            RecordKind::Requeue { to, new_idx, out } => {
                let new_seq = match out {
                    Some(payload) => core.queue.push(to, rank, payload),
                    None => core.queue.alloc_seq(),
                };
                if let Some(idx) = new_idx {
                    // gnb-lint: allow(panic-path, reason = "set_remap resizes before writing")
                    set_remap(&mut streams[i].remap, idx, new_seq);
                }
                virtual_len += 1;
                if let Some(obs) = &mut core.obs {
                    obs.on_requeue(seq, new_seq);
                }
            }
            RecordKind::Stall {
                at,
                thaw,
                new_idx,
                out,
            } => {
                if let Some(trace) = &mut core.trace {
                    trace.record(rank, at, thaw, TimeCategory::Recovery);
                }
                let new_seq = match out {
                    Some(payload) => core.queue.push(thaw, rank, payload),
                    None => core.queue.alloc_seq(),
                };
                if let Some(idx) = new_idx {
                    // gnb-lint: allow(panic-path, reason = "i was selected from streams by the merge scan above")
                    set_remap(&mut streams[i].remap, idx, new_seq);
                }
                virtual_len += 1;
                if let Some(obs) = &mut core.obs {
                    obs.on_advance(rank, at, thaw, TimeCategory::Recovery);
                    obs.on_stall(rank, at, thaw);
                    obs.on_requeue(seq, new_seq);
                }
            }
            RecordKind::Dispatch { end, actions } => {
                if let Some(rd) = &mut core.races {
                    rd.begin_event(rank, rec.time, seq);
                }
                if let Some(obs) = &mut core.obs {
                    obs.begin_dispatch(rank, rec.time, seq, virtual_len);
                }
                for action in actions {
                    // gnb-lint: allow(panic-path, reason = "i was selected from streams by the merge scan above")
                    virtual_len += replay_action(core, rank, action, &mut streams[i].remap);
                }
                if let Some(obs) = &mut core.obs {
                    obs.end_dispatch(end);
                }
                core.events_processed += 1;
            }
        }
    }
    debug_assert_eq!(
        virtual_len,
        core.queue.len(),
        "windowed replay lost track of the serial queue length"
    );
}

/// Copies a shard's lanes back into the engine core at end of run.
fn copyback<M>(core: &mut EngineCore<M>, lo: usize, lanes: Vec<RankLane>) {
    for (off, lane) in lanes.into_iter().enumerate() {
        let r = lo + off;
        // gnb-lint: allow(panic-path, reason = "lanes were created from ranks lo..hi of these same nranks-sized vectors")
        core.busy_until[r] = lane.busy;
        // gnb-lint: allow(panic-path, reason = "lanes were created from ranks lo..hi of these same nranks-sized vectors")
        core.finish[r] = lane.finish;
        // gnb-lint: allow(panic-path, reason = "lanes were created from ranks lo..hi of these same nranks-sized vectors")
        core.membership.dead[r] = lane.dead;
        // gnb-lint: allow(panic-path, reason = "lanes were created from ranks lo..hi of these same nranks-sized vectors")
        core.ledger[r] = lane.ledger;
        // gnb-lint: allow(panic-path, reason = "lanes were created from ranks lo..hi of these same nranks-sized vectors")
        core.unclassified_idle[r] = lane.unclassified_idle;
        core.mem.store(r, lane.mem_cur, lane.mem_peak);
        core.fault_stats.straggler_excess += lane.stats.straggler_excess;
        core.fault_stats.stall_events += lane.stats.stall_events;
        core.fault_stats.stall_time += lane.stats.stall_time;
        core.fault_stats.crash_events_dropped += lane.stats.crash_events_dropped;
    }
}

/// Runs the windowed conservative-parallel loop to quiescence. Entered
/// from [`crate::engine::Engine::run`] once the mode's preconditions hold
/// (`threads > 1`, `nranks ≥ 2`, `intra_alpha_ns > 0`, `alpha_ns ≥
/// intra_alpha_ns`); the caller owns setup (start events, crash marks)
/// and teardown (deadlock check, report assembly), which are shared with
/// the serial path.
pub(crate) fn run_windows<M, P>(core: &mut EngineCore<M>, programs: &mut [P], threads: usize)
where
    M: Clone + Send,
    P: Program<M> + Send,
{
    let nranks = core.nranks;
    let tb = core.queue.tie_break();
    let lookahead = SimTime::from_ns(core.net.params.intra_alpha_ns);
    let flags = (
        core.trace.is_some(),
        core.obs.is_some(),
        core.races.is_some(),
    );
    let bounds = partition(nranks, threads, core.net.params.ranks_per_node);
    let nshards = bounds.len();
    let mut shard_of = vec![0usize; nranks];
    for (s, &(lo, hi)) in bounds.iter().enumerate() {
        for slot in shard_of.iter_mut().take(hi).skip(lo) {
            *slot = s;
        }
    }
    // This is the approved parallel-engine module (`thread-primitives` is
    // scoped out here, and only here, by gnb-lint): worker shards
    // communicate by value over channels and every global effect is
    // merge-replayed deterministically.
    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply<M>>();
        let mut job_txs: Vec<mpsc::Sender<Job<M>>> = Vec::with_capacity(nshards);
        let mut rest = &mut *programs;
        let mut consumed = 0;
        for &(lo, hi) in &bounds {
            // Contiguous split of the program slice: shard threads own
            // their ranks' programs for the whole run.
            let (skip, tail) = rest.split_at_mut(lo - consumed);
            debug_assert!(skip.is_empty());
            let (chunk, tail) = tail.split_at_mut(hi - lo);
            rest = tail;
            consumed = hi;
            let mut lanes: Vec<RankLane> = (lo..hi).map(|r| RankLane::from_core(core, r)).collect();
            let fault = core.fault.clone();
            let (job_tx, job_rx) = mpsc::channel::<Job<M>>();
            job_txs.push(job_tx);
            let reply_tx = reply_tx.clone();
            scope.spawn(move || {
                let progs = chunk;
                while let Ok(job) = job_rx.recv() {
                    match job {
                        Job::Window { h, items } => {
                            let mut logs = Vec::with_capacity(items.len());
                            for (rank, evs) in items {
                                // gnb-lint: allow(panic-path, reason = "the coordinator routes rank r to the shard owning lo..hi, so rank - lo indexes this shard's chunk")
                                let lane = &mut lanes[rank - lo];
                                let recs = run_chain(
                                    // gnb-lint: allow(panic-path, reason = "the coordinator routes rank r to the shard owning lo..hi, so rank - lo indexes this shard's chunk")
                                    &mut progs[rank - lo],
                                    lane,
                                    rank,
                                    evs,
                                    h,
                                    tb,
                                    fault.as_ref(),
                                    nranks,
                                    flags,
                                );
                                logs.push((rank, recs));
                            }
                            if reply_tx.send(Reply::Logs(logs)).is_err() {
                                return;
                            }
                        }
                        Job::Finish => {
                            let _ = reply_tx.send(Reply::Lanes {
                                lo,
                                lanes: std::mem::take(&mut lanes),
                            });
                            return;
                        }
                    }
                }
            });
        }
        drop(reply_tx);

        // Per-window routing scratch: rank → slot in the shard's batch,
        // invalidated by a generation stamp instead of an O(nranks) clear.
        let mut slot_of: Vec<(u64, usize)> = vec![(0, 0); nranks];
        let mut generation: u64 = 0;
        while let Some(w) = core.queue.peek_time() {
            // A death mark inside the lookahead can release a barrier at a
            // time before this window (the release derives from old entry
            // times): degrade to a single-event window, which is exactly
            // the serial semantics through the same machinery.
            let single = core
                .membership
                .min_pending_death()
                .is_some_and(|d| d < w + lookahead);
            let h = if single { w } else { w + lookahead };
            let virt_start = core.queue.len();
            generation += 1;
            let mut batches: Vec<Vec<(usize, Vec<Item<M>>)>> =
                (0..nshards).map(|_| Vec::new()).collect();
            loop {
                match core.queue.peek_time() {
                    Some(t) if single || t < h => {}
                    _ => break,
                }
                // gnb-lint: allow(panic-path, reason = "peek_time() just returned Some, so the heap is non-empty")
                let ev = core.queue.pop_entry().expect("peeked event");
                let mark = core.membership.take_mark(ev.seq);
                let payload = core.queue.resolve(ev);
                let (rank, kind) = match mark {
                    Some(m) => (m.rank, ItemKind::Mark { rebirth: m.rebirth }),
                    None => (ev.dst, ItemKind::Ev(payload)),
                };
                let item = Item {
                    time: ev.time,
                    seq: ev.seq,
                    kind,
                };
                // gnb-lint: allow(panic-path, reason = "rank is an event dst or mark rank, both bounds-checked against nranks at scheduling time")
                let shard = shard_of[rank];
                // gnb-lint: allow(panic-path, reason = "slot_of has nranks entries; same bounds argument as shard_of")
                let (stamp, slot) = slot_of[rank];
                if stamp == generation {
                    // gnb-lint: allow(panic-path, reason = "a current-generation stamp means slot indexes this window's batch for the shard; shard < nshards by construction of shard_of")
                    batches[shard][slot].1.push(item);
                } else {
                    // gnb-lint: allow(panic-path, reason = "shard_of maps every rank to a shard index < nshards = batches.len()")
                    slot_of[rank] = (generation, batches[shard].len());
                    // gnb-lint: allow(panic-path, reason = "shard_of maps every rank to a shard index < nshards = batches.len()")
                    batches[shard].push((rank, vec![item]));
                }
                if single {
                    break;
                }
            }
            let mut expected = 0;
            for (s, batch) in batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    // gnb-lint: allow(panic-path, reason = "one job sender per shard; s indexes the same nshards range")
                    job_txs[s]
                        .send(Job::Window { h, items: batch })
                        // gnb-lint: allow(panic-path, reason = "a worker only disconnects by panicking, which already aborts the run; surfacing the send error here would only mask the original panic")
                        .expect("worker shard hung up mid-run");
                    expected += 1;
                }
            }
            let mut logs: Vec<(usize, Vec<Record<M>>)> = Vec::new();
            for _ in 0..expected {
                // gnb-lint: allow(panic-path, reason = "a worker only disconnects by panicking, which already aborts the run")
                match reply_rx.recv().expect("worker shard hung up mid-run") {
                    Reply::Logs(l) => logs.extend(l),
                    // gnb-lint: allow(panic-path, reason = "workers reply Lanes only to a Finish job, which is sent after the window loop ends")
                    Reply::Lanes { .. } => unreachable!("lanes arrive only after Finish"),
                }
            }
            replay_window(core, logs, virt_start, tb);
        }

        for tx in &job_txs {
            let _ = tx.send(Job::Finish);
        }
        for _ in 0..nshards {
            // gnb-lint: allow(panic-path, reason = "a worker only disconnects by panicking, which already aborts the run")
            match reply_rx.recv().expect("worker shard hung up at finish") {
                Reply::Lanes { lo, lanes } => copyback(core, lo, lanes),
                // gnb-lint: allow(panic-path, reason = "every window's logs were drained before Finish was sent")
                Reply::Logs(_) => unreachable!("no window is in flight at finish"),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prov_order_sorts_after_committed_fifo() {
        // Committed seqs sort first under FIFO, in seq order.
        let committed = TieBreak::Fifo.order(12345);
        assert!(committed < prov_order(TieBreak::Fifo, 0));
        assert!(prov_order(TieBreak::Fifo, 0) < prov_order(TieBreak::Fifo, 1));
    }

    #[test]
    fn prov_order_sorts_before_committed_lifo() {
        // Under LIFO the newest allocation pops first: provisional keys
        // sort before committed ones, and higher idx before lower.
        let committed = TieBreak::Lifo.order(12345);
        assert!(prov_order(TieBreak::Lifo, 0) < committed);
        assert!(prov_order(TieBreak::Lifo, 1) < prov_order(TieBreak::Lifo, 0));
    }

    #[test]
    fn partition_node_aligned_when_possible() {
        // 8 ranks, 2 per node = 4 nodes; 2 shards → 2 nodes each.
        assert_eq!(partition(8, 2, 2), vec![(0, 4), (4, 8)]);
        // 4 shards → 1 node each.
        assert_eq!(partition(8, 4, 2), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn partition_falls_back_to_rank_granularity() {
        // One node (64 ranks/node) but 4 requested shards: split ranks.
        assert_eq!(partition(8, 4, 64), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn partition_covers_all_ranks_exactly_once() {
        for nranks in [1, 2, 3, 7, 8, 64, 65, 130] {
            for threads in [1, 2, 3, 4, 8] {
                for rpn in [1, 2, 64] {
                    let parts = partition(nranks, threads, rpn);
                    let mut covered = 0;
                    let mut prev = 0;
                    for &(lo, hi) in &parts {
                        assert_eq!(lo, prev, "contiguous from rank 0");
                        assert!(hi > lo, "no empty shard");
                        covered += hi - lo;
                        prev = hi;
                    }
                    assert_eq!(covered, nranks, "{nranks}/{threads}/{rpn}");
                }
            }
        }
    }

    #[test]
    fn set_remap_grows_and_resolves() {
        let mut remap = Vec::new();
        set_remap(&mut remap, 3, 77);
        assert_eq!(resolved(SeqRef::Local(3), &remap), 77);
        assert_eq!(resolved(SeqRef::Committed(5), &remap), 5);
    }
}
