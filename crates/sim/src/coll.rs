//! Aggregate cost model for irregular all-to-all collectives.
//!
//! The BSP code exchanges reads with `MPI_Alltoall`/`MPI_Alltoallv`
//! (paper §3.1). Simulating 32 768² point-to-point messages per superstep
//! is wasteful and adds nothing — what matters for the paper's results is
//! the aggregate cost law, which for a pairwise-scheduled personalised
//! exchange on a dragonfly is
//!
//! ```text
//! T = α · ⌈log₂ P⌉            (setup / synchronisation of the schedule)
//!   + (P − 1) · o             (per-peer message handling, pipelined)
//!   + max(S_max, R_max) / β    (bandwidth term, bounded by the most
//!                              loaded rank's bytes through its NIC share)
//! ```
//!
//! The bandwidth term uses each rank's *share* of its node NIC
//! ([`crate::net::NetParams::per_rank_bw`]) — the KNL-specific throttle the
//! paper's memory/bandwidth discussion revolves around — and the maximum
//! per-rank load, which is where the Fig. 6 communication imbalance enters
//! the Fig. 7 latency curve.

use crate::net::NetParams;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Parameters of the collective cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollParams {
    /// Wire latency per schedule stage, ns.
    pub alpha_ns: u64,
    /// Per-active-peer software overhead (post/pack/progress one
    /// irecv/isend pair) on a 1.4 GHz KNL core, ns.
    pub per_peer_ns: u64,
    /// Raw per-rank bandwidth share (node NIC / ranks-per-node, tapered),
    /// bytes/sec.
    pub per_rank_bw: f64,
    /// Asymptotic protocol efficiency for large per-peer messages (0–1].
    pub eff_max: f64,
    /// Per-peer message size at which efficiency reaches half of
    /// `eff_max`, bytes. Small per-peer slices (an irregular exchange
    /// spread over thousands of peers) ride the eager/small-message path
    /// and amortise nothing; large slices stream at near wire rate. This
    /// single mechanism is what lets the same model show the paper's high
    /// BSP communication share on E. coli 100× at 8K cores (≈5 kb/peer)
    /// and the far better exchanges of Human CCS at small node counts
    /// (≈100 kb–3 MB/peer).
    pub eff_halfsize_bytes: f64,
    /// Per-rank effective bandwidth of a *single-node* exchange
    /// (shared-memory MPI: pack + copy through DDR shared by all ranks),
    /// bytes/sec.
    pub shm_per_rank_bw: f64,
    /// Intra-node latency per schedule stage, ns.
    pub intra_alpha_ns: u64,
}

impl CollParams {
    /// Derives collective parameters from the network model.
    pub fn from_net(net: &NetParams) -> CollParams {
        CollParams {
            alpha_ns: net.alpha_ns,
            per_peer_ns: 2_000,
            per_rank_bw: net.per_rank_bw(),
            eff_max: 0.9,
            eff_halfsize_bytes: 30_000.0,
            shm_per_rank_bw: 4.0e8,
            intra_alpha_ns: net.intra_alpha_ns,
        }
    }

    /// Protocol efficiency for a given *full-scale-equivalent* per-peer
    /// message size.
    pub fn efficiency(&self, per_peer_bytes: f64) -> f64 {
        self.eff_max * per_peer_bytes / (per_peer_bytes + self.eff_halfsize_bytes)
    }
}

/// The load description of one `alltoallv` superstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeLoad {
    /// Participating ranks.
    pub nranks: usize,
    /// Nodes they span (1 selects the shared-memory path).
    pub nnodes: usize,
    /// Bytes sent by the most loaded rank.
    pub max_send: u64,
    /// Bytes received by the most loaded rank.
    pub max_recv: u64,
    /// Distinct peers the most loaded rank exchanges with (≤ nranks-1;
    /// sparse exchanges skip empty pairs).
    pub active_peers: usize,
    /// Workload scale divisor of a scaled-down run (1.0 = full scale).
    /// Efficiency is computed from full-scale-equivalent per-peer sizes so
    /// communication *fractions* are scale-invariant.
    pub volume_scale: f64,
}

/// Time for one `alltoallv` superstep.
///
/// A single-node exchange goes through shared memory; a multi-node
/// exchange pays per-peer software costs plus a bandwidth term whose
/// efficiency depends on the per-peer message size (see
/// [`CollParams::eff_halfsize_bytes`]).
pub fn alltoallv_time(p: &CollParams, load: &ExchangeLoad) -> SimTime {
    assert!(load.nranks >= 1 && load.nnodes >= 1);
    assert!(load.volume_scale >= 1.0);
    if load.nranks == 1 {
        return SimTime::ZERO;
    }
    let bytes = load.max_send.max(load.max_recv);
    let peers = load.active_peers.clamp(1, load.nranks - 1);
    let (bw, alpha) = if load.nnodes <= 1 {
        (p.shm_per_rank_bw, p.intra_alpha_ns)
    } else {
        // Full-scale equivalents: both volume and peer count grow with the
        // workload; the peer count saturates at nranks-1.
        let full_bytes = bytes as f64 * load.volume_scale;
        let full_peers =
            ((peers as f64 * load.volume_scale) as usize).clamp(1, load.nranks - 1) as f64;
        let eff = if bytes == 0 {
            1.0 // zero-byte exchange: only latency terms apply
        } else {
            p.efficiency(full_bytes / full_peers).max(1e-6)
        };
        (p.per_rank_bw * eff, p.alpha_ns)
    };
    let stages = usize::BITS - (load.nranks - 1).leading_zeros(); // ceil(log2 P)
    let setup = SimTime::from_ns(alpha * stages as u64);
    let peer_sw = SimTime::from_ns(p.per_peer_ns * peers as u64);
    let transfer = if bytes == 0 {
        SimTime::ZERO
    } else {
        SimTime::from_secs_f64(bytes as f64 / bw)
    };
    setup + peer_sw + transfer
}

/// Time for a barrier (dissemination-style): `α · ⌈log₂ P⌉`.
pub fn barrier_time(alpha_ns: u64, nranks: usize) -> SimTime {
    if nranks <= 1 {
        return SimTime::ZERO;
    }
    let stages = usize::BITS - (nranks - 1).leading_zeros();
    SimTime::from_ns(alpha_ns * stages as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CollParams {
        CollParams {
            alpha_ns: 1000,
            per_peer_ns: 100,
            per_rank_bw: 1e9, // 1 byte/ns
            eff_max: 1.0,
            eff_halfsize_bytes: 0.0, // tests reason about raw terms
            shm_per_rank_bw: 2e9,
            intra_alpha_ns: 100,
        }
    }

    fn load(nranks: usize, nnodes: usize, bytes: u64) -> ExchangeLoad {
        ExchangeLoad {
            nranks,
            nnodes,
            max_send: bytes,
            max_recv: bytes,
            active_peers: nranks.saturating_sub(1).max(1),
            volume_scale: 1.0,
        }
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(
            alltoallv_time(&params(), &load(1, 1, 1_000_000)),
            SimTime::ZERO
        );
        assert_eq!(barrier_time(1000, 1), SimTime::ZERO);
    }

    #[test]
    fn two_ranks() {
        // log2(2)=1 stage, 1 peer, 1000 bytes at 1 byte/ns.
        let t = alltoallv_time(&params(), &load(2, 2, 1000));
        assert_eq!(t.as_ns(), 1000 + 100 + 1000);
    }

    #[test]
    fn bandwidth_term_uses_max_load() {
        let p = params();
        let mut small = load(4, 2, 1000);
        small.max_recv = 1000;
        let mut skewed = load(4, 2, 1000);
        skewed.max_recv = 50_000;
        let a = alltoallv_time(&p, &small);
        let b = alltoallv_time(&p, &skewed);
        assert_eq!((b - a).as_ns(), 49_000);
    }

    #[test]
    fn peer_term_uses_active_peers() {
        let p = params();
        let mut dense = load(4096, 64, 0);
        dense.active_peers = 4095;
        let mut sparse = load(4096, 64, 0);
        sparse.active_peers = 100;
        let d = alltoallv_time(&p, &dense);
        let s = alltoallv_time(&p, &sparse);
        assert_eq!((d - s).as_ns(), (4095 - 100) * 100);
    }

    #[test]
    fn efficiency_depends_on_per_peer_size() {
        let p = CollParams {
            eff_halfsize_bytes: 30_000.0,
            eff_max: 0.9,
            ..params()
        };
        // 1 kb per peer: poor; 3 MB per peer: near eff_max.
        assert!(p.efficiency(1_000.0) < 0.05);
        assert!(p.efficiency(3_000_000.0) > 0.88);
        // Monotone.
        assert!(p.efficiency(10_000.0) < p.efficiency(100_000.0));
        // Transfer time reflects it: same bytes, more peers -> slower.
        let few_peers = ExchangeLoad {
            active_peers: 10,
            ..load(4096, 64, 10_000_000)
        };
        let many_peers = ExchangeLoad {
            active_peers: 4000,
            ..load(4096, 64, 10_000_000)
        };
        let fast = alltoallv_time(&p, &few_peers);
        let slow = alltoallv_time(&p, &many_peers);
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn volume_scale_preserves_full_scale_efficiency() {
        // A 1/16-scale run must see the efficiency of the full-scale
        // per-peer size, so comm fractions are scale-invariant.
        let p = CollParams {
            eff_halfsize_bytes: 30_000.0,
            eff_max: 0.9,
            ..params()
        };
        let full = ExchangeLoad {
            active_peers: 1000,
            ..load(4096, 64, 16_000_000)
        };
        let scaled = ExchangeLoad {
            active_peers: 1000 / 16,
            volume_scale: 16.0,
            ..load(4096, 64, 1_000_000)
        };
        let t_full = alltoallv_time(&p, &full).as_secs_f64();
        let t_scaled = alltoallv_time(&p, &scaled).as_secs_f64();
        // Transfer terms dominate here; the scaled run should take ~1/16
        // of the full-scale time (same efficiency, 1/16 the bytes).
        let transfer_ratio = t_full / t_scaled;
        assert!(
            (transfer_ratio - 16.0).abs() < 3.0,
            "ratio {transfer_ratio}"
        );
    }

    #[test]
    fn shm_path_for_single_node() {
        let p = params();
        let multi = alltoallv_time(&p, &load(64, 4, 1_000_000));
        let single = alltoallv_time(&p, &load(64, 1, 1_000_000));
        // 2 GB/s shm vs 1 GB/s wire at eff 1: shm is faster here, and no
        // wire alpha.
        assert!(single < multi);
    }

    #[test]
    fn barrier_log_scaling() {
        assert_eq!(barrier_time(1000, 2).as_ns(), 1000);
        assert_eq!(barrier_time(1000, 1024).as_ns(), 10_000);
        assert_eq!(barrier_time(1000, 1025).as_ns(), 11_000);
    }

    #[test]
    fn strong_scaling_shape() {
        // Halving per-rank load while doubling ranks: transfer halves but
        // latency terms grow - total decreases sublinearly, as in Fig. 7.
        let p = params();
        let mut last = f64::INFINITY;
        let mut ratios = Vec::new();
        let mut bytes = 1 << 24; // 16 MB
        for ranks in [512usize, 1024, 2048, 4096, 8192] {
            let t = alltoallv_time(&p, &load(ranks, ranks / 64, bytes)).as_secs_f64();
            assert!(t < last);
            ratios.push(last / t);
            last = t;
            bytes /= 2;
        }
        // Speedup per doubling must be below 2 (sublinear).
        for r in &ratios[1..] {
            assert!(*r < 2.0, "ratio {r}");
        }
    }
}
