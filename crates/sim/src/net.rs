//! Network model: α–β costs with per-node NIC serialisation and a global
//! bandwidth taper.
//!
//! Cori's Aries dragonfly gives low latency (~1–2 µs) and high per-node
//! injection bandwidth (~8–10 GB/s), but a KNL node runs 64 application
//! ranks over **one** NIC — per-rank effective bandwidth is the node's
//! divided by however many ranks are injecting. The model captures this by
//! serialising message bodies through per-node TX/RX channels. Global
//! (inter-group) traffic additionally pays a dragonfly bisection taper.
//!
//! Every quantity is a parameter; the defaults are Aries-class and are the
//! ones used for all experiments (documented in EXPERIMENTS.md).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Network and machine-topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    /// Ranks (application cores) per node sharing a NIC.
    pub ranks_per_node: usize,
    /// One-way inter-node wire latency.
    pub alpha_ns: u64,
    /// Intra-node (shared-memory) message latency.
    pub intra_alpha_ns: u64,
    /// Per-node NIC injection/ejection bandwidth, bytes per second.
    pub node_bw_bytes_per_sec: f64,
    /// Fixed per-message NIC occupancy (header/DMA setup), ns.
    pub per_msg_overhead_ns: u64,
    /// Global-traffic bandwidth taper (0–1]; dragonfly bisection factor.
    pub taper: f64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            ranks_per_node: 64,
            alpha_ns: 1_500,
            intra_alpha_ns: 400,
            node_bw_bytes_per_sec: 8.0e9,
            per_msg_overhead_ns: 500,
            taper: 0.7,
        }
    }
}

impl NetParams {
    /// Node index of a rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Serialisation time of `bytes` through a node NIC (tapered).
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        let secs = bytes as f64 / (self.node_bw_bytes_per_sec * self.taper);
        SimTime::from_secs_f64(secs) + SimTime::from_ns(self.per_msg_overhead_ns)
    }

    /// Effective per-rank bandwidth when all ranks of a node inject at
    /// once (bytes/sec) — the quantity that throttles bulk exchanges.
    pub fn per_rank_bw(&self) -> f64 {
        self.node_bw_bytes_per_sec * self.taper / self.ranks_per_node as f64
    }
}

/// Mutable network state: per-node NIC channel availability.
#[derive(Debug, Clone)]
pub struct Network {
    /// Parameters.
    pub params: NetParams,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
}

impl Network {
    /// Creates the network for `nranks` ranks.
    pub fn new(params: NetParams, nranks: usize) -> Network {
        assert!(params.ranks_per_node >= 1);
        assert!(params.taper > 0.0 && params.taper <= 1.0);
        let nodes = nranks.div_ceil(params.ranks_per_node);
        Network {
            params,
            tx_free: vec![SimTime::ZERO; nodes.max(1)],
            rx_free: vec![SimTime::ZERO; nodes.max(1)],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.tx_free.len()
    }

    /// Reserves only source-side NIC time for a message that will never
    /// arrive (a wire loss injected by a fault plan): the sender pays
    /// injection as usual, the destination NIC is untouched. Returns when
    /// the doomed message left the source NIC. Intra-node messages occupy
    /// no NIC and return immediately.
    pub fn tx_time(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        let p = self.params;
        let (sn, dn) = (p.node_of(src), p.node_of(dst));
        if sn == dn {
            return now + SimTime::from_ns(p.intra_alpha_ns);
        }
        // gnb-lint: allow(panic-path, reason = "node_of yields indices below the node count the NIC vectors were sized to")
        let tx_start = self.tx_free[sn].max(now);
        let tx_end = tx_start + p.wire_time(bytes);
        // gnb-lint: allow(panic-path, reason = "node_of yields indices below the node count the NIC vectors were sized to")
        self.tx_free[sn] = tx_end;
        tx_end
    }

    /// Computes the arrival time of a message sent at `now` from `src` to
    /// `dst` with `bytes` of payload, reserving NIC channel time.
    ///
    /// Must be called with non-decreasing `now` across calls (the engine
    /// guarantees this by executing handlers in virtual-time order).
    pub fn delivery_time(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        let p = self.params;
        let (sn, dn) = (p.node_of(src), p.node_of(dst));
        if sn == dn {
            // Shared memory / on-node loopback: no NIC involvement.
            return now + SimTime::from_ns(p.intra_alpha_ns);
        }
        let occupancy = p.wire_time(bytes);
        // TX: wait for the source NIC, occupy it for the body.
        // gnb-lint: allow(panic-path, reason = "node_of yields indices below the node count the NIC vectors were sized to")
        let tx_start = self.tx_free[sn].max(now);
        let tx_end = tx_start + occupancy;
        // gnb-lint: allow(panic-path, reason = "node_of yields indices below the node count the NIC vectors were sized to")
        self.tx_free[sn] = tx_end;
        // Wire latency.
        let at_dst = tx_end + SimTime::from_ns(p.alpha_ns);
        // RX: wait for the destination NIC, occupy it for the body.
        // gnb-lint: allow(panic-path, reason = "node_of yields indices below the node count the NIC vectors were sized to")
        let rx_start = self.rx_free[dn].max(at_dst);
        let rx_end = rx_start + occupancy;
        // gnb-lint: allow(panic-path, reason = "node_of yields indices below the node count the NIC vectors were sized to")
        self.rx_free[dn] = rx_end;
        rx_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(ranks_per_node: usize) -> Network {
        let params = NetParams {
            ranks_per_node,
            alpha_ns: 1000,
            intra_alpha_ns: 100,
            node_bw_bytes_per_sec: 1e9, // 1 GB/s -> 1 byte/ns
            per_msg_overhead_ns: 50,
            taper: 1.0,
        };
        Network::new(params, ranks_per_node * 4)
    }

    #[test]
    fn intra_node_is_cheap() {
        let mut n = net(4);
        let t = n.delivery_time(SimTime::ZERO, 0, 3, 1_000_000);
        assert_eq!(t.as_ns(), 100, "same node: only intra alpha");
    }

    #[test]
    fn inter_node_pays_alpha_and_bandwidth() {
        let mut n = net(4);
        // 1000 bytes at 1 byte/ns + 50ns overhead, twice (tx + rx) + alpha.
        let t = n.delivery_time(SimTime::ZERO, 0, 4, 1000);
        assert_eq!(t.as_ns(), 1050 + 1000 + 1050);
    }

    #[test]
    fn nic_serialises_concurrent_senders() {
        let mut n = net(4);
        // Two ranks on node 0 send big messages at t=0: second waits.
        let t1 = n.delivery_time(SimTime::ZERO, 0, 4, 10_000);
        let t2 = n.delivery_time(SimTime::ZERO, 1, 8, 10_000);
        assert!(t2 > t1, "second message serialised behind the first");
        // TX occupancy of msg1 = 10050ns, so msg2 tx starts there.
        assert_eq!(t2.as_ns(), 10_050 + 10_050 + 1000 + 10_050);
    }

    #[test]
    fn rx_contention_at_target() {
        let mut n = net(4);
        // Different source nodes, same destination node: RX serialises.
        let t1 = n.delivery_time(SimTime::ZERO, 4, 0, 10_000);
        let t2 = n.delivery_time(SimTime::ZERO, 8, 1, 10_000);
        assert_eq!(t1.as_ns(), 10_050 + 1000 + 10_050);
        assert_eq!(t2.as_ns(), 10_050 + 1000 + 10_050 + 10_050);
    }

    #[test]
    fn tx_time_occupies_only_source_nic() {
        let mut n = net(4);
        // A doomed message reserves the source NIC…
        let left = n.tx_time(SimTime::ZERO, 0, 4, 10_000);
        assert_eq!(left.as_ns(), 10_050);
        // …so a later real send from the same node queues behind it…
        let t = n.delivery_time(SimTime::ZERO, 1, 8, 10_000);
        assert_eq!(t.as_ns(), 10_050 + 10_050 + 1000 + 10_050);
        // …but the destination NIC of the doomed message was untouched.
        let rx = n.delivery_time(SimTime::ZERO, 8, 4, 100);
        assert_eq!(rx.as_ns(), 150 + 1000 + 150);
    }

    #[test]
    fn tx_time_intra_node_is_free() {
        let mut n = net(4);
        let left = n.tx_time(SimTime::from_ns(5), 0, 1, 1_000_000);
        assert_eq!(left.as_ns(), 5 + 100);
        // NIC untouched.
        let t = n.delivery_time(SimTime::ZERO, 0, 4, 1000);
        assert_eq!(t.as_ns(), 1050 + 1000 + 1050);
    }

    #[test]
    fn taper_reduces_bandwidth() {
        let mut full = net(4);
        let mut tapered = {
            let mut p = full.params;
            p.taper = 0.5;
            Network::new(p, 16)
        };
        let a = full.delivery_time(SimTime::ZERO, 0, 4, 100_000);
        let b = tapered.delivery_time(SimTime::ZERO, 0, 4, 100_000);
        assert!(b > a);
    }

    #[test]
    fn per_rank_bw_division() {
        let p = NetParams {
            ranks_per_node: 64,
            taper: 1.0,
            node_bw_bytes_per_sec: 6.4e9,
            ..NetParams::default()
        };
        assert!((p.per_rank_bw() - 1e8).abs() < 1.0);
    }

    #[test]
    fn node_mapping() {
        let p = NetParams {
            ranks_per_node: 64,
            ..NetParams::default()
        };
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(63), 0);
        assert_eq!(p.node_of(64), 1);
    }
}
